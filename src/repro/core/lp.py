"""The LP form of TE-CCL (§4.1): optimal and scalable for copy-free demands.

When no chunk is wanted by two destinations (ALLTOALL-like demands), copy
buys nothing, flows may be fractional, and the whole problem is a linear
program. Flow conservation reverts to the traditional *equality* form — a
node buffers, forwards, or consumes what it receives — and chunks of one
source collapse into a single fungible commodity, shrinking the model by a
factor of |C|.

The same machinery doubles as the paper's "no copy" ablation (Figure 7): a
multicast demand is modelled by giving the commodity a *supply multiplicity*
(the source injects one physical copy per destination). Conservation then
guarantees no in-network duplication, which is exactly what "without copy"
means; per-chunk commodities keep content distinct so Figure 3's
half-chunk confusion cannot arise (see DESIGN.md).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import (EpochPlan, build_epoch_plan,
                               earliest_arrival_epochs, next_horizon,
                               path_based_epoch_bound, plan_with_tau)
from repro.core.postprocess import prune_fractional
from repro.core.schedule import FlowSchedule
from repro.errors import InfeasibleError, ModelError
from repro.obs.trace import event as _obs_event
from repro.obs.trace import rspan as _obs_rspan
from repro.obs.trace import span as _obs_span
from repro.solver import (Model, Sense, SolveResult, SolveStatus,
                          SolverOptions, quicksum)
from repro.topology.topology import Topology

_EPS = 1e-9

#: sentinel "unreachable" epoch, far beyond any horizon
_FAR = 1 << 30


@dataclass(frozen=True)
class LpCommodity:
    """One commodity of the LP: fungible mass originating at one node.

    ``key`` is either a bare source id (chunks aggregated, the fast path for
    ALLTOALL) or a ``(source, chunk)`` pair (needed when a chunk has several
    destinations, i.e. the no-copy multicast mode).
    """

    key: object
    origin: int
    supply: float
    sinks: dict[int, float]


def build_commodities(demand: Demand, aggregate: bool = True,
                      ) -> list[LpCommodity]:
    """Group the demand into LP commodities.

    Aggregation by source applies only when every chunk has exactly one
    destination (then bytes of one source are mutually fungible — flow
    decomposition assigns distinct content per path).
    """
    single_dest = not demand.benefits_from_copy()
    if aggregate and single_dest:
        commodities = []
        for s in demand.sources:
            sinks: dict[int, float] = {}
            supply = 0.0
            for c in demand.chunks_of(s):
                for d in demand.destinations(s, c):
                    sinks[d] = sinks.get(d, 0.0) + 1.0
                    supply += 1.0
            commodities.append(LpCommodity(key=s, origin=s, supply=supply,
                                           sinks=sinks))
        return commodities
    commodities = []
    for s, c in demand.commodities():
        dests = demand.destinations(s, c)
        commodities.append(LpCommodity(
            key=(s, c), origin=s, supply=float(len(dests)),
            sinks={d: 1.0 for d in dests}))
    return commodities


@dataclass
class LpProblem:
    """A built LP instance.

    The ``*_vars`` dicts map formulation keys to solver columns: values are
    :class:`repro.solver.Variable` handles on the expression path and raw
    ``int`` column indices on the bulk (COO) path; both are accepted by
    :meth:`repro.solver.SolveResult.value`.
    """

    model: Model
    plan: EpochPlan
    topology: Topology
    commodities: list[LpCommodity]
    f_vars: dict[tuple, object] = field(default_factory=dict)
    b_vars: dict[tuple, object] = field(default_factory=dict)
    r_vars: dict[tuple, object] = field(default_factory=dict)
    #: which construction path built this model ("expr", "coo" or
    #: "incremental")
    construction: str = "expr"
    #: row-placement records emitted by the bulk path under
    #: ``track_rows=True`` — what :class:`IncrementalLp` needs to patch
    #: existing constraint rows when the horizon grows. ``None`` otherwise.
    row_layout: list[tuple] | None = None


@dataclass
class LpOutcome:
    """A solved LP instance with the pruned fractional schedule."""

    schedule: FlowSchedule
    raw_schedule: FlowSchedule
    result: SolveResult
    plan: EpochPlan
    finish_time: float

    @property
    def solve_time(self) -> float:
        return self.result.solve_time

    def to_dict(self) -> dict:
        """JSON-ready form for crossing a process boundary (POP fan-out).

        The schedules are already extracted, so the solver's primal vector
        does not travel: :meth:`from_dict` rebuilds the
        :class:`~repro.solver.result.SolveResult` with ``values=None``
        (status, objective, timings, and JSON-safe stats survive).
        """
        return {
            "schedule": self.schedule.to_dict(),
            "raw_schedule": self.raw_schedule.to_dict(),
            "plan": self.plan.to_dict(),
            "finish_time": self.finish_time,
            "result": {
                "status": self.result.status.value,
                "objective": self.result.objective,
                "solve_time": self.result.solve_time,
                "mip_gap": self.result.mip_gap,
                "message": self.result.message,
                "stats": {k: v for k, v in self.result.stats.items()
                          if v is None
                          or isinstance(v, (bool, int, float, str))},
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "LpOutcome":
        """Parse the :meth:`to_dict` representation (no primal point)."""
        res = data["result"]
        result = SolveResult(
            status=SolveStatus(res["status"]),
            objective=res["objective"],
            values=None,
            solve_time=float(res["solve_time"]),
            mip_gap=res.get("mip_gap"),
            message=res.get("message", ""),
            stats=dict(res.get("stats", {})))
        return LpOutcome(
            schedule=FlowSchedule.from_dict(data["schedule"]),
            raw_schedule=FlowSchedule.from_dict(data["raw_schedule"]),
            result=result,
            plan=EpochPlan.from_dict(data["plan"]),
            finish_time=float(data["finish_time"]))


class LpBuilder:
    """Builds the §4.1 linear program over one horizon.

    Two construction paths produce bit-identical compiled models (enforced
    by ``tests/test_model_equivalence.py``): the legacy gurobipy-style
    expression path, and a vectorized bulk path that computes variable
    existence masks with NumPy index arithmetic and appends COO blocks
    straight into the compiled-matrix buffers. ``construction`` overrides
    ``config.solver.construction`` ("auto" → bulk; the LP has no
    expression-only features).
    """

    def __init__(self, topology: Topology, demand: Demand,
                 config: TecclConfig, plan: EpochPlan, *,
                 aggregate: bool = True, construction: str | None = None,
                 track_rows: bool = False):
        demand.validate(topology)
        topology.validate()
        if config.priorities is not None:
            aggregate = False  # per-chunk weights need per-chunk commodities
        self.topology = topology
        self.demand = demand
        self.config = config
        self.plan = plan
        self.commodities = build_commodities(demand, aggregate=aggregate)
        self._earliest = earliest_arrival_epochs(topology, plan)
        requested = construction or config.solver.construction
        if requested not in ("auto", "coo", "expr"):
            raise ModelError(f"unknown construction {requested!r}")
        self.construction = "expr" if requested == "expr" else "coo"
        if track_rows and self.construction != "coo":
            raise ModelError(
                "row tracking is a bulk-path feature (construction='coo')")
        self._track_rows = track_rows

    # ------------------------------------------------------------------
    def build(self) -> LpProblem:
        with _obs_span("lp.build", construction=self.construction,
                       epochs=self.plan.num_epochs,
                       commodities=len(self.commodities)):
            model = Model("teccl-lp", sense=Sense.MAXIMIZE)
            problem = LpProblem(model=model, plan=self.plan,
                                topology=self.topology,
                                commodities=self.commodities,
                                construction=self.construction)
            self._check_horizon()
            if self.construction == "coo":
                self._build_coo(problem)
                return problem
            for fam, step in (
                    ("vars", self._make_vars),
                    ("initialization", self._initialization),
                    ("conservation", self._conservation),
                    ("switch_conservation", self._switch_conservation),
                    ("capacity", self._capacity),
                    ("demand_met", self._demand_met),
                    ("buffer_limit", self._buffer_limit),
                    ("objective", self._objective)):
                with _obs_span(f"lp.family.{fam}"):
                    step(problem)
            return problem

    def _check_horizon(self) -> None:
        K = self.plan.num_epochs
        for q in self.commodities:
            for d in q.sinks:
                earliest = self._earliest[q.origin].get(d)
                if earliest is None:
                    raise ModelError(
                        f"sink {d} unreachable from origin {q.origin}")
                if earliest > K:
                    raise InfeasibleError(
                        f"horizon K={K} below earliest arrival ({earliest}) "
                        f"for commodity {q.key}->{d}", status="horizon")

    def _reachable(self, q: LpCommodity, node: int, k: int) -> bool:
        earliest = self._earliest[q.origin].get(node)
        return earliest is not None and k >= earliest

    def _make_vars(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        sf = self.config.store_and_forward
        for q in self.commodities:
            for (i, j) in self.topology.links:
                offset = self.plan.arrival_offset(i, j)
                for k in range(K):
                    if not self._reachable(q, i, k):
                        continue
                    arrival_pool = k + offset + 1
                    if arrival_pool > K:
                        continue  # cannot contribute within the horizon
                    problem.f_vars[(q.key, i, j, k)] = model.add_var(
                        name=f"F[{q.key},{i},{j},{k}]")
            for n in self.topology.gpus:
                if not sf and n != q.origin:
                    continue  # Figure 9 ablation: no intermediate buffering
                for k in range(K + 1):
                    if n != q.origin and not self._reachable(q, n, k):
                        continue
                    problem.b_vars[(q.key, n, k)] = model.add_var(
                        name=f"B[{q.key},{n},{k}]")
            for d in q.sinks:
                for k in range(K):
                    if not self._reachable(q, d, k + 1):
                        continue
                    problem.r_vars[(q.key, d, k)] = model.add_var(
                        name=f"R[{q.key},{d},{k}]")

    # ------------------------------------------------------------------
    def _out_flow(self, problem: LpProblem, q: LpCommodity, n: int, k: int):
        return quicksum(
            problem.f_vars[(q.key, n, l.dst, k)]
            for l in self.topology.out_edges(n)
            if (q.key, n, l.dst, k) in problem.f_vars)

    def _arrivals(self, problem: LpProblem, q: LpCommodity, n: int, k: int):
        """Flow arriving at n during epoch k (sent Δ epochs earlier)."""
        terms = []
        for link in self.topology.in_edges(n):
            send_epoch = k - self.plan.arrival_offset(link.src, link.dst)
            var = problem.f_vars.get((q.key, link.src, link.dst, send_epoch))
            if var is not None:
                terms.append(var)
        return quicksum(terms)

    def _initialization(self, problem: LpProblem) -> None:
        """Appendix A first-epoch constraints (with the n = s typo fixed)."""
        model = problem.model
        for q in self.commodities:
            b0 = problem.b_vars.get((q.key, q.origin, 0), 0.0)
            out0 = self._out_flow(problem, q, q.origin, 0)
            model.add_constr(b0 + out0 == q.supply,
                             name=f"init[{q.key}]")

    def _conservation(self, problem: LpProblem) -> None:
        """arrivals(k) + B[k] = B[k+1] + R[k] + sends(k+1), per GPU."""
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for n in self.topology.gpus:
                for k in range(K):
                    if n == q.origin and k == 0:
                        continue  # epoch 0 at the origin is _initialization
                    b_k = problem.b_vars.get((q.key, n, k))
                    b_next = problem.b_vars.get((q.key, n, k + 1))
                    read = problem.r_vars.get((q.key, n, k))
                    lhs = self._arrivals(problem, q, n, k)
                    if b_k is not None:
                        lhs = lhs + b_k
                    rhs = (self._out_flow(problem, q, n, k + 1)
                           if k + 1 < K else quicksum([]))
                    if b_next is not None:
                        rhs = rhs + b_next
                    if read is not None:
                        rhs = rhs + read
                    # Skip trivial 0 == 0 rows for unreachable node-epochs.
                    if lhs.is_constant() and rhs.is_constant():
                        continue
                    model.add_constr(lhs == rhs, name=f"cons[{q.key},{n},{k}]")

    def _switch_conservation(self, problem: LpProblem) -> None:
        """Switches neither buffer nor consume: in(k) == out(k+1)."""
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for sw in self.topology.switches:
                for k in range(K):
                    arrivals = self._arrivals(problem, q, sw, k)
                    sends_next = (self._out_flow(problem, q, sw, k + 1)
                                  if k + 1 < K else quicksum([]))
                    if arrivals.is_constant() and sends_next.is_constant():
                        continue
                    model.add_constr(arrivals == sends_next,
                                     name=f"swc[{q.key},{sw},{k}]")

    def _capacity(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        tau = self.plan.tau
        by_link_epoch: dict[tuple[int, int, int], list] = {}
        for (key, i, j, k), var in problem.f_vars.items():
            by_link_epoch.setdefault((i, j, k), []).append(var)
        for (i, j) in self.topology.links:
            for k in range(K):
                vars_k = by_link_epoch.get((i, j, k))
                if not vars_k:
                    continue
                if self.config.capacity_fn is not None:
                    cap = (self.config.capacity_fn(i, j, k) * tau
                           / self.config.chunk_bytes)
                else:
                    cap = self.plan.cap_chunks[(i, j)]
                model.add_constr(quicksum(vars_k) <= cap,
                                 name=f"cap[{i},{j},{k}]")

    def _demand_met(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for d, amount in q.sinks.items():
                reads = [problem.r_vars[(q.key, d, k)] for k in range(K)
                         if (q.key, d, k) in problem.r_vars]
                if not reads:
                    raise InfeasibleError(
                        f"sink {d} cannot be reached within the horizon",
                        status="horizon")
                model.add_constr(quicksum(reads) == amount,
                                 name=f"met[{q.key},{d}]")

    def _buffer_limit(self, problem: LpProblem) -> None:
        limit = self.config.buffer_limit_chunks
        if limit is None:
            return
        model = problem.model
        K = self.plan.num_epochs
        for n in self.topology.gpus:
            for k in range(K + 1):
                bufs = [problem.b_vars[(q.key, n, k)]
                        for q in self.commodities
                        if (q.key, n, k) in problem.b_vars
                        and n != q.origin]
                if bufs:
                    model.add_constr(quicksum(bufs) <= limit,
                                     name=f"buflim[{n},{k}]")

    def _objective(self, problem: LpProblem) -> None:
        terms = []
        for (key, d, k), r in problem.r_vars.items():
            weight = 1.0
            if self.config.priorities is not None and isinstance(key, tuple):
                weight = self.config.weight(key[0], key[1], d)
            terms.append(r * (weight / (k + 1)))
        problem.model.set_objective(quicksum(terms))

    # ------------------------------------------------------------------
    # vectorized (COO) construction — same model, no per-term Python objects
    # ------------------------------------------------------------------
    def _capacity_value(self, i: int, j: int, k: int) -> float:
        if self.config.capacity_fn is not None:
            return (self.config.capacity_fn(i, j, k) * self.plan.tau
                    / self.config.chunk_bytes)
        return self.plan.cap_chunks[(i, j)]

    def _build_coo(self, problem: LpProblem) -> None:
        """Emit the whole LP as COO blocks via NumPy index arithmetic.

        Variable existence masks replicate the expression path's gating
        exactly (same reachability and horizon tests, same iteration
        order), so both paths compile to identical matrices.
        """
        model = problem.model
        plan, topo, K = self.plan, self.topology, self.plan.num_epochs
        links = list(topo.links)
        E = len(links)
        src = np.fromiter((i for i, _ in links), dtype=np.int64, count=E)
        dst = np.fromiter((j for _, j in links), dtype=np.int64, count=E)
        offs = np.fromiter((plan.arrival_offset(i, j) for i, j in links),
                           dtype=np.int64, count=E)
        gpus = list(topo.gpus)
        G = len(gpus)
        gpu_ids = np.asarray(gpus, dtype=np.int64)
        switches = list(topo.switches)
        SW = len(switches)
        num_nodes = len(topo.nodes)
        node_pos = np.full(num_nodes, -1, dtype=np.int64)
        node_pos[gpu_ids] = np.arange(G)
        sw_pos = np.full(num_nodes, -1, dtype=np.int64)
        if SW:
            sw_pos[np.asarray(switches, dtype=np.int64)] = np.arange(SW)
        sf = self.config.store_and_forward
        k_send = np.arange(K, dtype=np.int64)

        # -- variable index grids, in the expression path's creation order
        with _obs_span("lp.family.vars"):
            per_q = []
            base = 0
            for q in self.commodities:
                earliest = np.full(num_nodes, _FAR, dtype=np.int64)
                for node, epoch in self._earliest[q.origin].items():
                    earliest[node] = epoch
                f_mask = ((earliest[src][:, None] <= k_send[None, :])
                          & (k_send[None, :] + offs[:, None] + 1 <= K))
                f_idx = np.full((E, K), -1, dtype=np.int64)
                nf = int(np.count_nonzero(f_mask))
                f_idx[f_mask] = base + np.arange(nf)
                base += nf

                origin_row = int(node_pos[q.origin])
                b_mask = earliest[gpu_ids][:, None] \
                    <= np.arange(K + 1)[None, :]
                b_mask[origin_row, :] = True
                if not sf:
                    only_origin = np.zeros(G, dtype=bool)
                    only_origin[origin_row] = True
                    b_mask &= only_origin[:, None]
                b_idx = np.full((G, K + 1), -1, dtype=np.int64)
                nb = int(np.count_nonzero(b_mask))
                b_idx[b_mask] = base + np.arange(nb)
                base += nb

                sinks = list(q.sinks)
                S = len(sinks)
                sink_ids = np.asarray(sinks, dtype=np.int64)
                r_mask = (earliest[sink_ids][:, None] <= k_send[None, :] + 1) \
                    if S else np.zeros((0, K), dtype=bool)
                r_idx = np.full((S, K), -1, dtype=np.int64)
                nr = int(np.count_nonzero(r_mask))
                r_idx[r_mask] = base + np.arange(nr)
                base += nr
                per_q.append((q, f_mask, f_idx, b_mask, b_idx, sinks, r_mask,
                              r_idx))
            model.add_var_array(base, name="lpvar")

            # -- handle dicts for extraction (raw column indices as values)
            for q, f_mask, f_idx, b_mask, b_idx, sinks, r_mask, r_idx in per_q:
                key = q.key
                ls, ks = np.nonzero(f_mask)
                problem.f_vars.update(
                    ((key, links[l][0], links[l][1], k), v)
                    for l, k, v in zip(ls.tolist(), ks.tolist(),
                                       f_idx[f_mask].tolist()))
                ns, ks = np.nonzero(b_mask)
                problem.b_vars.update(
                    ((key, gpus[n], k), v)
                    for n, k, v in zip(ns.tolist(), ks.tolist(),
                                       b_idx[b_mask].tolist()))
                ss, ks = np.nonzero(r_mask)
                problem.r_vars.update(
                    ((key, sinks[s], k), v)
                    for s, k, v in zip(ss.tolist(), ks.tolist(),
                                       r_idx[r_mask].tolist()))

        self._layout: list[tuple] | None = [] if self._track_rows else None
        with _obs_span("lp.family.initialization"):
            self._coo_initialization(model, per_q, src, node_pos)
        with _obs_span("lp.family.conservation"):
            self._coo_conservation(model, per_q, src, dst, offs, node_pos,
                                   G, K)
        if SW:
            with _obs_span("lp.family.switch_conservation"):
                self._coo_switch_conservation(model, per_q, src, dst, offs,
                                              sw_pos, SW, K)
        with _obs_span("lp.family.capacity"):
            self._coo_capacity(model, per_q, links, E, K)
        with _obs_span("lp.family.demand_met"):
            self._coo_demand_met(model, per_q, K)
        with _obs_span("lp.family.buffer_limit"):
            self._coo_buffer_limit(model, per_q, gpus, G, K)
        with _obs_span("lp.family.objective"):
            self._coo_objective(model, per_q)
        problem.row_layout = self._layout

    def _coo_initialization(self, model: Model, per_q, src, node_pos) -> None:
        """``B[origin,0] + out(origin,0) == supply``, one row per commodity."""
        rows, cols = [], []
        lower = []
        for r, (q, _f_mask, f_idx, _b_mask, b_idx, *_rest) in enumerate(per_q):
            cols.append(int(b_idx[int(node_pos[q.origin]), 0]))
            rows.append(r)
            out0 = f_idx[(src == q.origin), 0]
            out0 = out0[out0 >= 0]
            cols.extend(out0.tolist())
            rows.extend([r] * len(out0))
            lower.append(q.supply)
        bounds = np.asarray(lower, dtype=float)
        first = model.add_constr_coo(rows, cols, np.ones(len(cols)), bounds,
                                     bounds, num_rows=len(per_q))
        if self._layout is not None:
            self._layout.append(("init", first))

    def _coo_conservation(self, model: Model, per_q, src, dst, offs,
                          node_pos, G: int, K: int) -> None:
        """arrivals(k) + B[k] − B[k+1] − R[k] − sends(k+1) == 0 per GPU."""
        for qi, (q, f_mask, f_idx, b_mask, b_idx, sinks, r_mask, r_idx) \
                in enumerate(per_q):
            origin_flat = int(node_pos[q.origin]) * K  # (origin, k=0)
            row_parts, col_parts, dat_parts = [], [], []

            ls, ks = np.nonzero(f_mask)
            vs = f_idx[f_mask]
            # arrivals: a send on (i, j) at k' lands in row (j, k' + Δ)
            at_gpu = node_pos[dst[ls]] >= 0
            row_parts.append(node_pos[dst[ls[at_gpu]]] * K
                             + ks[at_gpu] + offs[ls[at_gpu]])
            col_parts.append(vs[at_gpu])
            dat_parts.append(np.ones(int(at_gpu.sum())))
            # sends(k+1): a send at k' ≥ 1 leaves through row (i, k' − 1)
            out = (ks >= 1) & (node_pos[src[ls]] >= 0)
            row_parts.append(node_pos[src[ls[out]]] * K + ks[out] - 1)
            col_parts.append(vs[out])
            dat_parts.append(-np.ones(int(out.sum())))

            ns, ks = np.nonzero(b_mask)
            vs = b_idx[b_mask]
            held = ks <= K - 1  # B[k] on the left of row (n, k)
            row_parts.append(ns[held] * K + ks[held])
            col_parts.append(vs[held])
            dat_parts.append(np.ones(int(held.sum())))
            nxt = ks >= 1  # B[k+1] on the right of row (n, k)
            row_parts.append(ns[nxt] * K + ks[nxt] - 1)
            col_parts.append(vs[nxt])
            dat_parts.append(-np.ones(int(nxt.sum())))

            ss, ks = np.nonzero(r_mask)
            sink_rows = np.fromiter((int(node_pos[d]) for d in sinks),
                                    dtype=np.int64, count=len(sinks))
            row_parts.append(sink_rows[ss] * K + ks)
            col_parts.append(r_idx[r_mask])
            dat_parts.append(-np.ones(int(r_mask.sum())))

            flat = np.concatenate(row_parts)
            cols = np.concatenate(col_parts)
            data = np.concatenate(dat_parts)
            # epoch 0 at the origin is the initialization row, not this one
            keep = flat != origin_flat
            flat, cols, data = flat[keep], cols[keep], data[keep]
            present = np.zeros(G * K, dtype=bool)
            present[flat] = True  # trivial 0 == 0 rows never materialise
            row_of = np.cumsum(present) - 1
            first = model.add_constr_coo(row_of[flat], cols, data, 0.0, 0.0,
                                         num_rows=int(present.sum()))
            if self._layout is not None:
                self._layout.append(("cons", qi, first,
                                     np.nonzero(present)[0]))

    def _coo_switch_conservation(self, model: Model, per_q, src, dst, offs,
                                 sw_pos, SW: int, K: int) -> None:
        """Switches neither buffer nor consume: in(k) == out(k+1)."""
        for qi, (q, f_mask, f_idx, *_rest) in enumerate(per_q):
            ls, ks = np.nonzero(f_mask)
            vs = f_idx[f_mask]
            into = sw_pos[dst[ls]] >= 0
            rows_in = sw_pos[dst[ls[into]]] * K + ks[into] + offs[ls[into]]
            out = (ks >= 1) & (sw_pos[src[ls]] >= 0)
            rows_out = sw_pos[src[ls[out]]] * K + ks[out] - 1
            flat = np.concatenate([rows_in, rows_out])
            cols = np.concatenate([vs[into], vs[out]])
            data = np.concatenate([np.ones(len(rows_in)),
                                   -np.ones(len(rows_out))])
            present = np.zeros(SW * K, dtype=bool)
            present[flat] = True
            row_of = np.cumsum(present) - 1
            first = model.add_constr_coo(row_of[flat], cols, data, 0.0, 0.0,
                                         num_rows=int(present.sum()))
            if self._layout is not None:
                self._layout.append(("swc", qi, first,
                                     np.nonzero(present)[0]))

    def _coo_capacity(self, model: Model, per_q, links, E: int, K: int,
                      ) -> None:
        """Per (link, epoch): total flow across commodities ≤ capacity."""
        present = np.zeros((E, K), dtype=bool)
        for _q, f_mask, *_rest in per_q:
            present |= f_mask
        flat_present = present.ravel()
        row_of = np.cumsum(flat_present) - 1
        row_parts, col_parts = [], []
        for _q, f_mask, f_idx, *_rest in per_q:
            ls, ks = np.nonzero(f_mask)
            row_parts.append(row_of[ls * K + ks])
            col_parts.append(f_idx[f_mask])
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        caps = np.empty(int(flat_present.sum()))
        if self.config.capacity_fn is None:
            per_link = np.fromiter((self.plan.cap_chunks[link]
                                    for link in links),
                                   dtype=float, count=E)
            caps[:] = np.repeat(per_link, K)[flat_present]
        else:
            ls, ks = np.nonzero(present)
            for out, (l, k) in enumerate(zip(ls.tolist(), ks.tolist())):
                i, j = links[l]
                caps[out] = self._capacity_value(i, j, k)
        first = model.add_constr_coo(rows, cols, np.ones(len(rows)),
                                     -np.inf, caps, num_rows=len(caps))
        if self._layout is not None:
            self._layout.append(("cap", first, np.nonzero(flat_present)[0]))

    def _coo_demand_met(self, model: Model, per_q, K: int) -> None:
        """Each sink reads exactly its demanded amount over the horizon."""
        rows, cols, amounts = [], [], []
        pairs: list[tuple[int, int]] = []
        r = 0
        for qi, (q, _f_mask, _f_idx, _b_mask, _b_idx, sinks, r_mask, r_idx) \
                in enumerate(per_q):
            for s, d in enumerate(sinks):
                reads = r_idx[s][r_mask[s]]
                if not len(reads):
                    raise InfeasibleError(
                        f"sink {d} cannot be reached within the horizon",
                        status="horizon")
                cols.extend(reads.tolist())
                rows.extend([r] * len(reads))
                amounts.append(q.sinks[d])
                pairs.append((qi, d))
                r += 1
        bounds = np.asarray(amounts, dtype=float)
        first = model.add_constr_coo(rows, cols, np.ones(len(cols)), bounds,
                                     bounds, num_rows=r)
        if self._layout is not None:
            self._layout.append(("met", first, pairs))

    def _coo_buffer_limit(self, model: Model, per_q, gpus, G: int, K: int,
                          ) -> None:
        limit = self.config.buffer_limit_chunks
        if limit is None:
            return
        row_parts, col_parts = [], []
        present = np.zeros(G * (K + 1), dtype=bool)
        for q, _f_mask, _f_idx, b_mask, b_idx, *_rest in per_q:
            relay = b_mask.copy()
            relay[gpus.index(q.origin), :] = False  # sources are exempt
            ns, ks = np.nonzero(relay)
            flat = ns * (K + 1) + ks
            present[flat] = True
            row_parts.append(flat)
            col_parts.append(b_idx[relay])
        row_of = np.cumsum(present) - 1
        rows = np.concatenate([row_of[flat] for flat in row_parts])
        cols = np.concatenate(col_parts)
        first = model.add_constr_coo(rows, cols, np.ones(len(rows)),
                                     -np.inf, float(limit),
                                     num_rows=int(present.sum()))
        if self._layout is not None:
            self._layout.append(("buflim", first, np.nonzero(present)[0]))

    def _coo_objective(self, model: Model, per_q) -> None:
        """Maximise weighted reads, earlier epochs worth more (1/(k+1))."""
        idx_parts, coef_parts = [], []
        priorities = self.config.priorities is not None
        for q, _f_mask, _f_idx, _b_mask, _b_idx, sinks, r_mask, r_idx \
                in per_q:
            ss, ks = np.nonzero(r_mask)
            if priorities and isinstance(q.key, tuple):
                s_id, chunk = q.key
                weights = np.fromiter(
                    (self.config.weight(s_id, chunk, d) for d in sinks),
                    dtype=float, count=len(sinks))
                coef_parts.append(weights[ss] / (ks + 1))
            else:
                coef_parts.append(1.0 / (ks + 1))
            idx_parts.append(r_idx[r_mask])
        model.set_objective_array(np.concatenate(idx_parts),
                                  np.concatenate(coef_parts))


# ----------------------------------------------------------------------
# incremental re-solving
# ----------------------------------------------------------------------
class IncrementalLp:
    """One growing LP instance: shared-horizon model reuse for re-solves.

    The §6 horizon procedures (the ``minimize_epochs`` binary search, POP's
    infeasible-horizon doubling, replanning after a perturbation) are
    sequences of near-identical instances that differ only in the horizon K.
    This class keeps **one** compiled model alive across the sequence:

    * the initial build is the vectorized bulk path (``track_rows=True``
      records where every constraint family landed);
    * :meth:`grow` appends the epoch-delta — new columns for the epochs
      ``K..K'``, new rows for the new epochs, and
      :meth:`~repro.solver.Model.add_coo_terms` patches into the rows that
      span the horizon (demand-met, initialization, capacity rows gaining
      newly eligible late-landing flow variables) — on top of a
      :meth:`~repro.solver.Model.extend` compile prefix, so nothing built
      before is re-stacked;
    * :meth:`restrict` answers "is horizon K'' < K feasible?" on the *same*
      model by zero-bounding every variable that cannot act before K''
      (reads at or past K'', flows landing past it, buffers beyond it). The
      supply/demand-met equalities make this exactly equivalent to the cold
      horizon-K'' model: every unit of supply must be read, so a feasible
      point can put no mass on the clamped variables.

    Solutions captured as :class:`~repro.solver.WarmStart` pad onto the
    grown model (new columns start idle), so each attempt can seed the next.
    """

    def __init__(self, topology: Topology, demand: Demand,
                 config: TecclConfig, num_epochs: int, *,
                 aggregate: bool = True):
        plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
        self.builder = LpBuilder(topology, demand, config, plan,
                                 aggregate=aggregate, construction="coo",
                                 track_rows=True)
        start = time.perf_counter()
        self.problem = self.builder.build()
        self.build_time = time.perf_counter() - start
        self.model = self.problem.model
        self.topology = topology
        self.demand = demand
        self.config = config
        self.plan = plan
        self.num_epochs = num_epochs
        self._initial_epochs = num_epochs
        self.commodities = self.builder.commodities
        self.f_vars = self.problem.f_vars
        self.b_vars = self.problem.b_vars
        self.r_vars = self.problem.r_vars
        self._rows: dict[tuple, int] | None = None  # materialised on demand
        self._restricted: np.ndarray | None = None
        idx, coef, _ = self.model._objective_arrays()
        self._obj_idx: list[int] = idx.tolist()
        self._obj_coef: list[float] = coef.tolist()

    # ------------------------------------------------------------------
    # row registry (only needed once the model starts growing)
    # ------------------------------------------------------------------
    def _materialize_rows(self) -> None:
        """Decode the builder's layout records into a row-key registry."""
        layout = self.problem.row_layout or []
        K0 = self._initial_epochs
        gpus = list(self.topology.gpus)
        switches = list(self.topology.switches)
        links = list(self.topology.links)
        rows: dict[tuple, int] = {}
        for rec in layout:
            kind = rec[0]
            if kind == "init":
                for qi in range(len(self.commodities)):
                    rows[("init", qi)] = rec[1] + qi
            elif kind == "cons":
                _, qi, first, flat = rec
                for li, f in enumerate(flat.tolist()):
                    rows[("cons", qi, gpus[f // K0], f % K0)] = first + li
            elif kind == "swc":
                _, qi, first, flat = rec
                for li, f in enumerate(flat.tolist()):
                    rows[("swc", qi, switches[f // K0], f % K0)] = first + li
            elif kind == "cap":
                _, first, flat = rec
                for li, f in enumerate(flat.tolist()):
                    i, j = links[f // K0]
                    rows[("cap", i, j, f % K0)] = first + li
            elif kind == "met":
                _, first, pairs = rec
                for li, (qi, d) in enumerate(pairs):
                    rows[("met", qi, d)] = first + li
            elif kind == "buflim":
                _, first, flat = rec
                for li, f in enumerate(flat.tolist()):
                    rows[("buflim", gpus[f // (K0 + 1)],
                          f % (K0 + 1))] = first + li
        self._rows = rows

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def grow(self, num_epochs: int) -> None:
        """Extend the horizon in place: append the K→K' epoch delta.

        Emits exactly the variables and constraint entries by which the
        cold horizon-K' model exceeds the horizon-K one (the formulation's
        eligibility masks are monotone in K), so the grown model matches a
        fresh build in variable/row/nonzero counts and in every solve.
        """
        with _obs_span("lp.incremental.grow", old=self.num_epochs,
                       new=num_epochs):
            self._grow(num_epochs)

    def _grow(self, num_epochs: int) -> None:
        old_K, K = self.num_epochs, num_epochs
        if K <= old_K:
            raise ModelError(
                f"cannot grow from K={old_K} to K={K}; horizons only grow")
        if self._rows is None:
            self._materialize_rows()
        self.release()
        self.model.extend()
        topo, config = self.topology, self.config
        sf = config.store_and_forward
        limit = config.buffer_limit_chunks
        links = list(topo.links)
        offsets = {link: self.plan.arrival_offset(*link) for link in links}
        switches = set(topo.switches)

        new_f: list[tuple] = []
        new_b: list[tuple] = []
        new_r: list[tuple] = []
        for qi, q in enumerate(self.commodities):
            earliest = self.builder._earliest[q.origin]
            for (i, j) in links:
                e_i = earliest.get(i)
                if e_i is None:
                    continue
                off = offsets[(i, j)]
                for k in range(max(e_i, old_K - off), K - off):
                    new_f.append((qi, q.key, i, j, k))
            for n in topo.gpus:
                if not sf and n != q.origin:
                    continue
                for k in range(old_K + 1, K + 1):
                    if n != q.origin:
                        e_n = earliest.get(n)
                        if e_n is None or e_n > k:
                            continue
                    new_b.append((qi, q.key, n, k))
            for d in q.sinks:
                e_d = earliest.get(d)
                if e_d is None:
                    continue
                for k in range(max(old_K, e_d - 1), K):
                    new_r.append((qi, q.key, d, k))

        total = len(new_f) + len(new_b) + len(new_r)
        col = self.model.num_vars
        if total:
            self.model.add_var_array(total, name="lpgrow")

        entries: list[tuple[tuple, int, float]] = []
        new_rows: dict[tuple, tuple[float, float]] = {}
        rows = self._rows
        assert rows is not None

        def add(row_key: tuple, column: int, coef: float,
                lb: float = 0.0, ub: float = 0.0) -> None:
            if row_key not in rows and row_key not in new_rows:
                new_rows[row_key] = (lb, ub)
            entries.append((row_key, column, coef))

        for (qi, key, i, j, k) in new_f:
            q = self.commodities[qi]
            self.f_vars[(key, i, j, k)] = col
            off = offsets[(i, j)]
            add(("cap", i, j, k), col, 1.0, -np.inf,
                self.builder._capacity_value(i, j, k))
            if k == 0:
                # only the origin holds mass at epoch 0: the init row
                entries.append((("init", qi), col, 1.0))
            elif i in switches:
                add(("swc", qi, i, k - 1), col, -1.0)
            elif not (i == q.origin and k - 1 == 0):
                add(("cons", qi, i, k - 1), col, -1.0)
            land = k + off
            if j in switches:
                add(("swc", qi, j, land), col, 1.0)
            elif not (j == q.origin and land == 0):
                add(("cons", qi, j, land), col, 1.0)
            col += 1

        for (qi, key, n, k) in new_b:
            q = self.commodities[qi]
            self.b_vars[(key, n, k)] = col
            if k <= K - 1 and not (n == q.origin and k == 0):
                add(("cons", qi, n, k), col, 1.0)
            if k >= 1 and not (n == q.origin and k - 1 == 0):
                add(("cons", qi, n, k - 1), col, -1.0)
            if limit is not None and n != q.origin:
                add(("buflim", n, k), col, 1.0, -np.inf, float(limit))
            col += 1
        # Boundary fix-up: at horizon K the last buffer epoch old_K had no
        # "held" entry (its row did not exist); the grown horizon
        # materialises row (n, old_K), which must see B[old_K] on its left.
        for qi, q in enumerate(self.commodities):
            for n in topo.gpus:
                held = self.b_vars.get((q.key, n, old_K))
                if held is None or (n == q.origin and old_K == 0):
                    continue
                add(("cons", qi, n, old_K), int(held), 1.0)

        for (qi, key, d, k) in new_r:
            q = self.commodities[qi]
            self.r_vars[(key, d, k)] = col
            add(("cons", qi, d, k), col, -1.0)
            entries.append((("met", qi, d), col, 1.0))
            weight = 1.0
            if config.priorities is not None and isinstance(key, tuple):
                weight = config.weight(key[0], key[1], d)
            self._obj_idx.append(col)
            self._obj_coef.append(weight / (k + 1))
            col += 1

        local_index = {rk: i for i, rk in enumerate(new_rows)}
        blk_rows: list[int] = []
        blk_cols: list[int] = []
        blk_data: list[float] = []
        patch_rows: list[int] = []
        patch_cols: list[int] = []
        patch_data: list[float] = []
        for rk, column, coef in entries:
            li = local_index.get(rk)
            if li is not None:
                blk_rows.append(li)
                blk_cols.append(column)
                blk_data.append(coef)
            else:
                patch_rows.append(rows[rk])
                patch_cols.append(column)
                patch_data.append(coef)
        if new_rows:
            bounds = list(new_rows.values())
            first = self.model.add_constr_coo(
                blk_rows, blk_cols, blk_data,
                np.asarray([b[0] for b in bounds]),
                np.asarray([b[1] for b in bounds]),
                num_rows=len(new_rows))
            for rk, li in local_index.items():
                rows[rk] = first + li
        if patch_rows:
            self.model.add_coo_terms(patch_rows, patch_cols, patch_data)
        self.model.set_objective_array(
            np.asarray(self._obj_idx, dtype=np.int64),
            np.asarray(self._obj_coef))
        self.plan = self.plan.with_num_epochs(K)
        self.problem.plan = self.plan
        self.num_epochs = K

    # ------------------------------------------------------------------
    # bound-restricted probing
    # ------------------------------------------------------------------
    def horizon_lower_bound(self) -> int:
        """No horizon below this can be feasible (earliest arrivals)."""
        lo = 1
        for q in self.commodities:
            earliest = self.builder._earliest[q.origin]
            for d in q.sinks:
                e = earliest.get(d)
                if e is not None:
                    lo = max(lo, e)
        return lo

    def restrict(self, num_epochs: int) -> None:
        """Clamp the model to the horizon-``num_epochs`` subspace."""
        if not 1 <= num_epochs <= self.num_epochs:
            raise ModelError(
                f"restriction K={num_epochs} outside [1, {self.num_epochs}]")
        self.release()
        plan = self.plan
        cols: list[int] = []
        for (key, i, j, k), v in self.f_vars.items():
            if k + plan.arrival_offset(i, j) + 1 > num_epochs:
                cols.append(int(v))
        for (key, n, k), v in self.b_vars.items():
            if k > num_epochs:
                cols.append(int(v))
        for (key, d, k), v in self.r_vars.items():
            if k >= num_epochs:
                cols.append(int(v))
        clamped = np.asarray(cols, dtype=np.int64)
        self.model.set_var_bounds(clamped, ub=0.0)
        self._restricted = clamped

    def release(self) -> None:
        """Lift any active horizon restriction (bounds back to +inf)."""
        if self._restricted is not None and len(self._restricted):
            self.model.set_var_bounds(self._restricted, ub=np.inf)
        self._restricted = None

    def solve_at(self, num_epochs: int, *,
                 warm_start=None, options=None) -> SolveResult:
        """Solve the instance at one horizon (restricted or full)."""
        with _obs_span("lp.incremental.solve_at", epochs=num_epochs,
                       warm=warm_start is not None):
            if num_epochs == self.num_epochs:
                self.release()
            else:
                self.restrict(num_epochs)
            return self.model.solve(options if options is not None
                                    else self.config.solver,
                                    warm_start=warm_start)

    def extract(self, result: SolveResult, num_epochs: int) -> LpOutcome:
        """An :class:`LpOutcome` over the horizon-``num_epochs`` view."""
        plan_k = self.plan.with_num_epochs(num_epochs)
        view = LpProblem(model=self.model, plan=plan_k,
                         topology=self.topology,
                         commodities=self.commodities,
                         construction="incremental")
        view.f_vars = {
            key: v for key, v in self.f_vars.items()
            if key[3] + plan_k.arrival_offset(key[1], key[2]) + 1
            <= num_epochs}
        view.b_vars = {key: v for key, v in self.b_vars.items()
                       if key[2] <= num_epochs}
        view.r_vars = {key: v for key, v in self.r_vars.items()
                       if key[2] < num_epochs}
        return extract_lp_outcome(view, result)


# ----------------------------------------------------------------------
# facades
# ----------------------------------------------------------------------
def solve_lp(topology: Topology, demand: Demand, config: TecclConfig,
             *, aggregate: bool = True,
             initial_epochs: int | None = None) -> LpOutcome:
    """Build and solve the LP; returns a pruned fractional schedule.

    Like :func:`repro.core.milp.solve_milp`, an automatically estimated
    horizon is retried with an escalated K if it proves infeasible (the
    bound is a heuristic). ``initial_epochs`` is the warm-start hint a
    :func:`repro.failures.repair.replan` derives from a prior solution's
    achieved extent — clamped to the path bound (a hint may only shrink
    the model), and stepped back up to the bound, then doubled, if it
    undershoots.
    """
    auto = config.num_epochs is None
    bound = None
    if auto:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        bound = path_based_epoch_bound(topology, demand, probe)
        num_epochs = bound
        if initial_epochs is not None:
            # A warm hint may only *shrink* the model: its estimates can
            # overshoot the grid, and the path bound is a sound ceiling.
            num_epochs = max(2, min(initial_epochs, bound))
    else:
        num_epochs = config.num_epochs
    attempts = 3 if auto else 1
    last_error: InfeasibleError | None = None
    for attempt in range(1, attempts + 1):
        plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
        try:
            builder = LpBuilder(topology, demand, config, plan,
                                aggregate=aggregate)
            start = time.perf_counter()
            problem = builder.build()
        except InfeasibleError as err:
            # A horizon below the earliest arrival (possible when a warm
            # hint undershoots) is just an infeasible attempt: escalate.
            last_error = err
            num_epochs = next_horizon(num_epochs, bound)
            continue
        build_time = time.perf_counter() - start
        result, reduced = _solve_maybe_reduced(problem, topology, demand,
                                               config)
        result.stats["build_time"] = build_time
        result.stats["construction"] = problem.construction
        result.stats["horizon_attempts"] = attempt
        result.stats["horizon_epochs"] = num_epochs
        if result.status.has_solution:
            outcome = extract_lp_outcome(problem, result)
            if reduced:
                outcome = _vet_reduced_outcome(outcome, problem, topology,
                                               demand, config)
            return outcome
        from repro.solver import SolveStatus

        if result.status is not SolveStatus.INFEASIBLE:
            result.require_solution()
        last_error = InfeasibleError(
            f"infeasible at horizon K={num_epochs}", status="horizon")
        num_epochs = next_horizon(num_epochs, bound)
    raise last_error


def _solve_maybe_reduced(problem: LpProblem, topology: Topology,
                         demand: Demand,
                         config: TecclConfig) -> tuple[SolveResult, bool]:
    """Solve the LP, through the symmetry quotient when one applies.

    Returns ``(result, reduced)``; ``reduced`` flags a lifted quotient
    solution that still needs the conformance vetting in
    :func:`_vet_reduced_outcome`. Any failure to find or verify symmetry
    falls through to the ordinary full-model solve.
    """
    from repro.core import symmetry as _symmetry

    if _symmetry.symmetry_enabled(config.solver, problem.model.num_vars):
        generators = _symmetry.find_generators(topology, demand)
        if generators:
            orbit_map = _symmetry.reduce_lp(
                problem.model, generators, problem.model.num_vars,
                problem.f_vars, problem.b_vars, problem.r_vars)
            if orbit_map is not None:
                result = _symmetry.solve_reduced(orbit_map, config.solver)
                return result, True
    return problem.model.solve(config.solver), False


def _vet_reduced_outcome(outcome: LpOutcome, problem: LpProblem,
                         topology: Topology, demand: Demand,
                         config: TecclConfig) -> LpOutcome:
    """Replay-vet a lifted quotient solution; cold fallback on violation.

    The quotient is exact for a symmetric LP, so a violation here means a
    verification layer was fooled (or the instance was not actually
    symmetric) — the full model is re-solved from scratch and *that*
    result returned, so symmetry can degrade performance but never
    correctness.
    """
    from repro.core import symmetry as _symmetry
    from repro.simulate import check_flow

    report = check_flow(outcome.schedule, topology, demand, outcome.plan,
                        config=config)
    if report.ok:
        outcome.result.stats["symmetry_conformant"] = True
        return outcome
    _symmetry.note_fallback()
    _obs_event("symmetry.fallback", reason="conformance",
               violations=len(report.violations))
    result = problem.model.solve(config.solver)
    result.stats["symmetry_fallback"] = "conformance"
    result.stats["construction"] = problem.construction
    result.require_solution()
    return extract_lp_outcome(problem, result)


def extract_lp_outcome(problem: LpProblem, result: SolveResult) -> LpOutcome:
    with _obs_rspan("lp.extract", construction=problem.construction):
        flows = {key: result.value(var)
                 for key, var in problem.f_vars.items()}
        reads = {key: result.value(var)
                 for key, var in problem.r_vars.items()}
        raw = FlowSchedule(flows=flows, reads=reads, tau=problem.plan.tau,
                           chunk_bytes=problem.plan.chunk_bytes,
                           num_epochs=problem.plan.num_epochs)
        buffers = {key: result.value(var)
                   for key, var in problem.b_vars.items()}
        pruned = prune_fractional(raw, problem.topology, problem.plan,
                                  buffers=buffers)
        return LpOutcome(schedule=pruned, raw_schedule=raw, result=result,
                         plan=problem.plan,
                         finish_time=pruned.finish_time(problem.topology))


def lp_feasible_horizon(topology: Topology, demand: Demand,
                        config: TecclConfig, *, tau: float,
                        num_epochs: int) -> bool:
    """Feasibility probe used by Algorithm 1 (coarse grid, custom τ)."""
    plan = plan_with_tau(topology, config.chunk_bytes, tau, num_epochs)
    try:
        builder = LpBuilder(topology, demand, config, plan)
        problem = builder.build()
    except InfeasibleError:
        return False
    result = problem.model.solve(SolverOptions(time_limit=60))
    return result.status.has_solution


def minimize_epochs_lp(topology: Topology, demand: Demand,
                       config: TecclConfig, *, max_epochs: int | None = None,
                       incremental: bool = True) -> LpOutcome:
    """Binary search for the smallest feasible horizon (§6 "TE-CCL variants").

    The paper runs the ALLTOALL solver in a loop, binary-searching the number
    of epochs; the returned schedule is the optimum for the minimal K.

    By default the search runs on the incremental engine: **one** model is
    built at the horizon bound, its full-horizon optimum brackets the search
    (the last read epoch is a feasibility witness; the earliest-arrival
    bound a floor), and the remaining probes are bound restrictions on the
    same model, each warm-started from the last feasible solution — no
    rebuilds, and usually only one or two extra solves. Every incremental
    result is replayed through the conformance oracle before it is returned;
    a violation falls back to the cold per-horizon search
    (``incremental=False``), which builds and solves a fresh model per probe.
    """
    estimate = None
    if max_epochs is None:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        estimate = path_based_epoch_bound(topology, demand, probe)
        max_epochs = estimate
    if incremental:
        return _minimize_epochs_incremental(topology, demand, config,
                                            max_epochs, estimate=estimate)
    return _minimize_epochs_cold(topology, demand, config, max_epochs)


def _minimize_epochs_cold(topology: Topology, demand: Demand,
                          config: TecclConfig, max_epochs: int) -> LpOutcome:
    """The pre-incremental search: fresh build + cold solve per probe."""
    lo, hi = 1, max_epochs
    best: LpOutcome | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        try:
            outcome = _try_horizon(topology, demand, config, mid)
        except InfeasibleError:
            outcome = None
        if outcome is not None:
            best = outcome
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise InfeasibleError(
            f"no feasible horizon up to K={max_epochs}", status="horizon")
    return best


def _minimize_epochs_incremental(topology: Topology, demand: Demand,
                                 config: TecclConfig, max_epochs: int,
                                 estimate: int | None = None) -> LpOutcome:
    """One shared growing model: anchor cheap, gallop down, refine.

    The anchor solve starts at the path-bound *estimate*, not the caller's
    ``max_epochs``: a generous search bound should cost the search nothing
    (the cold bisection pays an expensive feasible solve per halving of
    it). An infeasible estimate grows the same model geometrically — the
    infeasible-horizon attempts are exactly the cheap solves — until the
    first feasible anchor, whose last read epoch then brackets the descent.
    """
    from repro.solver import SolveStatus

    if estimate is None:
        try:
            probe_plan = build_epoch_plan(topology, config, num_epochs=1)
            estimate = path_based_epoch_bound(topology, demand, probe_plan)
        except ModelError:
            estimate = max_epochs
    k = min(max_epochs, max(2, estimate))
    inc: IncrementalLp | None = None
    anchor: SolveResult | None = None
    anchor_solves = 0
    while True:
        attempt = None
        try:
            if inc is None:
                inc = IncrementalLp(topology, demand, config, k)
            elif inc.num_epochs < k:
                inc.grow(k)
            attempt = inc.solve_at(k)
            anchor_solves += 1
        except InfeasibleError:
            pass  # horizon below earliest arrival: grow on
        if attempt is not None and attempt.status.has_solution:
            anchor = attempt
            break
        if attempt is not None \
                and attempt.status is not SolveStatus.INFEASIBLE:
            attempt.require_solution()
        if k >= max_epochs:
            raise InfeasibleError(
                f"no feasible horizon up to K={max_epochs}",
                status="horizon")
        k = min(max_epochs, k * 2)
    anchor.stats["build_time"] = inc.build_time
    anchor.stats["construction"] = "incremental"

    # Bracket the search from the anchor optimum: all reads land by the
    # last read epoch, so last_read + 1 is a *witnessed* feasible horizon
    # (total supply must be read, hence nothing can sit on later epochs);
    # no horizon can beat the earliest-arrival floor.
    values = anchor.values
    last_read = -1
    for (_key, _d, read_k), v in inc.r_vars.items():
        if read_k > last_read and values[int(v)] > 1e-9:
            last_read = read_k
    best_k = min(inc.num_epochs, max(1, last_read + 1))
    best_result = anchor
    lo = inc.horizon_lower_bound()
    warm = anchor.warm_start()
    solves = anchor_solves

    def probe(k: int):
        nonlocal solves
        result = inc.solve_at(k, warm_start=warm)
        solves += 1
        if result.status.has_solution:
            return result
        if result.status is not SolveStatus.INFEASIBLE:
            result.require_solution()
        return None

    # Galloping descent: the anchor's 1/(k+1) objective pushes reads early,
    # so its witnessed horizon is usually already minimal — one adjacent
    # probe proves it. When it is not, back off exponentially, then binary
    # search the last bracket; same minimal K, O(log) probes worst case.
    step = 1
    while lo < best_k:
        probe_k = max(lo, best_k - step)
        result = probe(probe_k)
        if result is not None:
            best_k, best_result = probe_k, result
            warm = result.warm_start()
            step *= 2
        else:
            lo = probe_k + 1
            break
    while lo < best_k:
        mid = (lo + best_k) // 2
        result = probe(mid)
        if result is not None:
            best_k, best_result = mid, result
            warm = result.warm_start()
        else:
            lo = mid + 1
    best_result.stats["horizon_solves"] = solves
    # probe results never passed through the anchor's stat stamping
    best_result.stats.setdefault("build_time", inc.build_time)
    best_result.stats.setdefault("construction", "incremental")
    outcome = inc.extract(best_result, best_k)

    # PR 3 conformance gate: a warm-started result never reaches a caller
    # unchecked. A replay violation (a bug in the incremental machinery,
    # not in the solver) falls back to the cold search.
    from repro.simulate import check_flow

    report = check_flow(outcome.schedule, topology, demand, outcome.plan,
                        config=config)
    if not report.ok:
        return _minimize_epochs_cold(topology, demand, config, max_epochs)
    return outcome


def _try_horizon(topology: Topology, demand: Demand, config: TecclConfig,
                 num_epochs: int) -> LpOutcome | None:
    plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
    builder = LpBuilder(topology, demand, config, plan)
    problem = builder.build()
    result, reduced = _solve_maybe_reduced(problem, topology, demand,
                                           config)
    if not result.status.has_solution:
        return None
    outcome = extract_lp_outcome(problem, result)
    if reduced:
        outcome = _vet_reduced_outcome(outcome, problem, topology, demand,
                                       config)
    return outcome
