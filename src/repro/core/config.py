"""Configuration objects shared by the TE-CCL formulations."""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.solver.options import SolverOptions


class EpochMode(enum.Enum):
    """How the epoch duration τ is derived from the topology (§5).

    * ``SLOWEST_LINK`` — τ = chunk transmission time on the *slowest* link;
      every link can carry ≥ 1 chunk per epoch ("option (a)").
    * ``FASTEST_LINK`` — τ = chunk time on the *fastest* link; slow links need
      several epochs per chunk, handled by the windowed capacity constraints
      of Appendix F ("option (b)", the paper's default: finer schedules).
    """

    SLOWEST_LINK = "slowest"
    FASTEST_LINK = "fastest"


class SwitchModel(enum.Enum):
    """Which switch semantics the MILP uses (§3.1 "Modeling switches")."""

    #: Switch copies chunks (SHArP-capable); zero buffer.
    COPY = "copy"
    #: Legacy switch: zero buffer, what comes in must go out (no duplication).
    NO_COPY = "no_copy"
    #: Appendix C: switch replaced by hyper-edges with usage limits
    #: (TACCL-style; also the fair-comparison mode of §6.1).
    HYPER_EDGE = "hyper_edge"


@dataclass(frozen=True)
class TecclConfig:
    """Knobs of the TE-CCL formulations.

    Attributes:
        chunk_bytes: size of the scheduling unit (the paper sweeps this).
        num_epochs: horizon K; ``None`` lets the solver estimate an upper
            bound (Algorithm 1 or the cheap path-based bound).
        epoch_mode: τ derivation, see :class:`EpochMode`.
        epoch_multiplier: the "EM" factor of Table 4 — multiplies τ to trade
            schedule granularity for solver scalability.
        switch_model: see :class:`SwitchModel`.
        store_and_forward: when ``False``, non-source GPUs must relay a chunk
            in the epoch after receiving it (Figure 9's ablation).
        buffer_limit_chunks: per-GPU buffer budget in chunks (Appendix B);
            ``None`` models ample GPU memory (the paper's default).
        tighten: enable reachability-based variable elimination (a chunk
            cannot appear at a node earlier than its shortest-path time);
            preserves optimality, shrinks the MILP substantially.
        solver: backend options (time limit, early-stop gap).
        priorities: optional per-triple objective weights for multi-tenant
            runs (§5); missing triples default to weight 1.
        capacity_fn: optional time-varying capacity hook ``(src, dst, epoch)
            -> bytes/s`` (§5 "Modeling variable bandwidth").
    """

    chunk_bytes: float
    num_epochs: int | None = None
    epoch_mode: EpochMode = EpochMode.FASTEST_LINK
    epoch_multiplier: float = 1.0
    switch_model: SwitchModel = SwitchModel.COPY
    store_and_forward: bool = True
    buffer_limit_chunks: float | None = None
    tighten: bool = True
    solver: SolverOptions = field(default_factory=SolverOptions)
    priorities: dict[tuple[int, int, int], float] | None = None
    capacity_fn: Callable[[int, int, int], float] | None = None

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ModelError("chunk_bytes must be positive")
        if self.num_epochs is not None and self.num_epochs < 1:
            raise ModelError("num_epochs must be at least 1")
        if self.epoch_multiplier <= 0:
            raise ModelError("epoch_multiplier must be positive")
        if (self.buffer_limit_chunks is not None
                and self.buffer_limit_chunks < 0):
            raise ModelError("buffer_limit_chunks must be non-negative")

    def weight(self, s: int, c: int, d: int) -> float:
        if self.priorities is None:
            return 1.0
        return self.priorities.get((s, c, d), 1.0)

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`).

        ``capacity_fn`` is a Python callable and cannot be serialised; a
        config carrying one is rejected rather than silently dropped.
        """
        if self.capacity_fn is not None:
            raise ModelError(
                "capacity_fn is a callable and cannot be serialised; "
                "configs with time-varying capacity are not representable "
                "as documents")
        return {
            "chunk_bytes": float(self.chunk_bytes),
            "num_epochs": (None if self.num_epochs is None
                           else int(self.num_epochs)),
            "epoch_mode": self.epoch_mode.value,
            "epoch_multiplier": float(self.epoch_multiplier),
            "switch_model": self.switch_model.value,
            "store_and_forward": bool(self.store_and_forward),
            "buffer_limit_chunks": (
                None if self.buffer_limit_chunks is None
                else float(self.buffer_limit_chunks)),
            "tighten": bool(self.tighten),
            "solver": self.solver.to_dict(),
            "priorities": (
                None if self.priorities is None
                else [[int(s), int(c), int(d), float(w)]
                      for (s, c, d), w in sorted(self.priorities.items())]),
        }

    @staticmethod
    def from_dict(data: dict) -> "TecclConfig":
        """Parse the :meth:`to_dict` representation, validating as it goes."""
        try:
            priorities = data.get("priorities")
            if priorities is not None:
                priorities = {(int(s), int(c), int(d)): float(w)
                              for s, c, d, w in priorities}
            return TecclConfig(
                chunk_bytes=float(data["chunk_bytes"]),
                num_epochs=(None if data.get("num_epochs") is None
                            else int(data["num_epochs"])),
                epoch_mode=EpochMode(
                    data.get("epoch_mode", EpochMode.FASTEST_LINK.value)),
                epoch_multiplier=float(data.get("epoch_multiplier", 1.0)),
                switch_model=SwitchModel(
                    data.get("switch_model", SwitchModel.COPY.value)),
                store_and_forward=bool(data.get("store_and_forward", True)),
                buffer_limit_chunks=(
                    None if data.get("buffer_limit_chunks") is None
                    else float(data["buffer_limit_chunks"])),
                tighten=bool(data.get("tighten", True)),
                solver=SolverOptions.from_dict(data.get("solver", {})),
                priorities=priorities)
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"malformed config document: {exc}") from exc


@dataclass(frozen=True)
class AStarConfig:
    """Extra knobs for the A*-inspired round decomposition (§4.2, App. D).

    Attributes:
        epochs_per_round: K per round; ``None`` picks the smallest round that
            guarantees in-flight chunks arrive at most one round late (the
            paper's choice).
        max_rounds: safety bound on the number of rounds.
        gamma: weight of the distance-potential reward (γ < 1 so that
            delivering always beats hoarding).
    """

    epochs_per_round: int | None = None
    max_rounds: int = 64
    gamma: float = 0.25

    def __post_init__(self) -> None:
        if self.epochs_per_round is not None and self.epochs_per_round < 2:
            raise ModelError("epochs_per_round must be at least 2")
        if self.max_rounds < 1:
            raise ModelError("max_rounds must be at least 1")
        if not 0 < self.gamma < 1:
            raise ModelError("gamma must be in (0, 1)")

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "epochs_per_round": (None if self.epochs_per_round is None
                                 else int(self.epochs_per_round)),
            "max_rounds": int(self.max_rounds),
            "gamma": float(self.gamma),
        }

    @staticmethod
    def from_dict(data: dict) -> "AStarConfig":
        """Parse the :meth:`to_dict` representation."""
        try:
            return AStarConfig(
                epochs_per_round=(
                    None if data.get("epochs_per_round") is None
                    else int(data["epochs_per_round"])),
                max_rounds=int(data.get("max_rounds", 64)),
                gamma=float(data.get("gamma", 0.25)))
        except (TypeError, ValueError) as exc:
            raise ModelError(f"malformed A* config document: {exc}") from exc
