"""The A*-inspired round decomposition (§4.2, Appendix D).

The general MILP does not scale past a few tens of chassis, so TE-CCL
partitions time into *rounds* and solves a small MILP per round. Two changes
versus the one-shot MILP:

* the final-epoch completion constraint is dropped (a round may end with
  demands outstanding), and the objective gains a *potential* term that
  rewards ending the round with chunks closer to their destinations —
  closeness comes from all-pairs distances (the paper uses Floyd–Warshall
  over the α costs; we use the same distances in epoch units);
* chunks sent near the end of a round arrive in the *next* round (the
  paper's ``Q`` variables); we carry them over as buffer injections.

The decomposition trades optimality for speed: fewer epochs per round solve
faster but lose more lookahead (§6.3 measures a 6–20% gap at 2.5–4× speedup).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives.demand import Demand, Triple
from repro.core.config import AStarConfig, TecclConfig
from repro.core.epochs import (EpochPlan, build_epoch_plan,
                               earliest_arrival_epochs)
from repro.core.milp import Commodity, MilpBuilder, MilpProblem
from repro.core.postprocess import prune_sends
from repro.core.schedule import Schedule, Send
from repro.errors import InfeasibleError, ModelError
from repro.solver import SolveResult, quicksum
from repro.topology.topology import Topology


@dataclass
class RoundStats:
    """Diagnostics for one A* round."""

    round_index: int
    solve_time: float
    objective: float
    sends: int
    satisfied: int
    outstanding: int


@dataclass
class AStarOutcome:
    """The stitched multi-round solution."""

    schedule: Schedule
    raw_schedule: Schedule
    plan: EpochPlan
    rounds: list[RoundStats] = field(default_factory=list)
    finish_time: float = 0.0

    @property
    def solve_time(self) -> float:
        return sum(r.solve_time for r in self.rounds)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


def _potential_weights(topology: Topology, plan: EpochPlan,
                       ) -> dict[int, dict[int, float]]:
    """Distance reward weights, exponentially peaked: w[n][d] = 2^(−dist).

    Appendix D weighs copies by Floyd–Warshall distance. The weights must be
    *peaked* enough that one close copy is worth more than any number of far
    copies — with flat ``1/(1+d)`` weights, ten copies two hops out already
    saturate the per-triple potential and the round loses its gradient
    (chunks stop advancing). ``2^-d`` keeps the closest copy dominant:
    ``Σ_{far} 2^-d`` of all farther copies stays below one copy a hop closer
    on any of the paper's fabrics.
    """
    dist = earliest_arrival_epochs(topology, plan)
    return {n: {d: 2.0 ** (-float(min(dist[n].get(d, 60), 60)))
                for d in topology.nodes}
            for n in topology.nodes}


def solve_astar(topology: Topology, demand: Demand, config: TecclConfig,
                astar: AStarConfig | None = None) -> AStarOutcome:
    """Run rounds until every demand is satisfied; returns the stitched plan.

    Raises :class:`InfeasibleError` if a round makes no progress or the round
    budget runs out — both indicate the per-round horizon is too short for
    the topology's delays.
    """
    astar = astar or AStarConfig()
    demand.validate(topology)
    topology.validate()
    if not config.store_and_forward:
        raise ModelError(
            "the A* round decomposition carries chunks across round "
            "boundaries in GPU buffers and cannot honour the "
            "store_and_forward=False ablation; use the single-shot MILP")

    probe = build_epoch_plan(topology, config, num_epochs=1)
    max_offset = max(probe.arrival_offset(i, j) for (i, j) in topology.links)
    if astar.epochs_per_round is not None:
        epochs_per_round = astar.epochs_per_round
    else:
        # Default: long enough that the farthest demanded pair can complete
        # inside one round. Shorter rounds are legal (pass epochs_per_round)
        # but rely purely on the distance potential for progress.
        dist = earliest_arrival_epochs(topology, probe)
        longest = max(dist[s].get(d, 0)
                      for s, c in demand.commodities()
                      for d in demand.destinations(s, c))
        epochs_per_round = max(4, max_offset + 2, longest + 2)
    if epochs_per_round <= max_offset:
        raise ModelError(
            f"epochs_per_round={epochs_per_round} must exceed the largest "
            f"link delay ({max_offset} epochs) so chunks arrive at most one "
            "round late")
    round_plan = build_epoch_plan(topology, config,
                                  num_epochs=epochs_per_round)
    weights = _potential_weights(topology, round_plan)

    holders: dict[Commodity, set[int]] = {
        q: {q[0]} for q in demand.commodities()}
    injections: dict[tuple[int, int, int, int], int] = {}
    carry: dict[tuple[int, int, int], int] = {}
    remaining = demand
    all_sends: list[Send] = []
    rounds: list[RoundStats] = []

    for round_index in range(astar.max_rounds):
        if remaining.is_empty():
            break
        problem, result = _solve_round(
            topology, remaining, config, round_plan, holders, injections,
            weights, astar.gamma, carry)
        round_sends = _extract_sends(problem, result)
        offset = round_index * epochs_per_round
        all_sends.extend(
            Send(epoch=s.epoch + offset, source=s.source, chunk=s.chunk,
                 src=s.src, dst=s.dst) for s in round_sends)

        carry = _capacity_carry(round_plan, round_sends)
        holders, injections, satisfied = _advance_state(
            topology, round_plan, holders, injections, round_sends, remaining)
        rounds.append(RoundStats(
            round_index=round_index,
            solve_time=result.solve_time,
            objective=result.objective or 0.0,
            sends=len(round_sends),
            satisfied=len(satisfied),
            outstanding=remaining.num_triples - len(satisfied)))
        new_remaining = remaining.without(satisfied)
        if (new_remaining.num_triples == remaining.num_triples
                and not round_sends and not injections):
            raise InfeasibleError(
                f"A* made no progress in round {round_index}; "
                "increase epochs_per_round", status="stalled")
        remaining = new_remaining
    else:
        if not remaining.is_empty():
            raise InfeasibleError(
                f"A* did not satisfy all demands within "
                f"{astar.max_rounds} rounds", status="rounds")

    total_epochs = max(1, len(rounds)) * epochs_per_round
    global_plan = round_plan.with_num_epochs(total_epochs)
    raw = Schedule(sends=sorted(all_sends), tau=round_plan.tau,
                   chunk_bytes=config.chunk_bytes, num_epochs=total_epochs)
    delivered = _delivered_epochs(raw, global_plan, demand)
    pruned = prune_sends(raw, demand, topology, global_plan, delivered,
                         store_and_forward=config.store_and_forward)
    return AStarOutcome(schedule=pruned, raw_schedule=raw, plan=global_plan,
                        rounds=rounds,
                        finish_time=pruned.finish_time(topology))


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _solve_round(topology: Topology, remaining: Demand, config: TecclConfig,
                 plan: EpochPlan, holders: dict[Commodity, set[int]],
                 injections: dict[tuple[int, int, int, int], int],
                 weights: dict[int, dict[int, float]], gamma: float,
                 carry: dict[tuple[int, int, int], int],
                 ) -> tuple[MilpProblem, SolveResult]:
    # Round models stay on the expression path: A* bolts its potential terms
    # onto the built model (quicksum over b/f handles below), and the round
    # extras (injections, carry, relaxed completion) are expression-only.
    builder = MilpBuilder(
        topology, remaining, config, plan,
        initial_holders=holders, injections=injections,
        require_completion=False, allow_overhang=True,
        capacity_carry=carry, construction="expr")
    problem = builder.build()
    _add_potential(problem, remaining, weights, gamma)
    result = problem.model.solve(config.solver).require_solution()
    return problem, result


def _add_potential(problem: MilpProblem, remaining: Demand,
                   weights: dict[int, dict[int, float]],
                   gamma: float) -> None:
    """Appendix D's distance reward, added on top of the R objective."""
    model = problem.model
    plan = problem.plan
    K = plan.num_epochs
    # End-of-round presence per commodity and node: the final buffer plus
    # any overhanging send that will land at that node next round.
    overhang: dict[tuple[Commodity, int], list] = {}
    for (q, i, j, k), var in problem.f_vars.items():
        if k + plan.arrival_offset(i, j) + 1 > K:
            overhang.setdefault((q, j), []).append(var)

    potential_terms = []
    for s, c in remaining.commodities():
        q = (s, c)
        for d in remaining.destinations(s, c):
            presence = []
            for n in problem.topology.nodes:
                if problem.topology.is_switch(n):
                    continue
                w = weights[n][d]
                b_end = problem.b_vars.get((q, n, K))
                if b_end is not None:
                    presence.append(b_end * w)
                for var in overhang.get((q, n), []):
                    presence.append(var * w)
            if not presence:
                continue
            p = model.add_var(lb=0.0, ub=1.0, name=f"P[{q},{d}]")
            model.add_constr(p.to_expr() <= quicksum(presence),
                             name=f"pot[{q},{d}]")
            potential_terms.append(p)
    r_terms = [r * (1.0 / (k + 1))
               for ((_, _), _, k), r in _iter_r(problem)]
    objective = quicksum(r_terms)
    if potential_terms:
        objective = objective + quicksum(potential_terms) * gamma
    model.set_objective(objective)


def _iter_r(problem: MilpProblem):
    for key, var in problem.r_vars.items():
        yield key, var


def _extract_sends(problem: MilpProblem, result: SolveResult) -> list[Send]:
    sends = []
    for (q, i, j, k), var in problem.f_vars.items():
        if result.value(var) > 0.5:
            sends.append(Send(epoch=k, source=q[0], chunk=q[1], src=i, dst=j))
    return sorted(sends)


def _capacity_carry(plan: EpochPlan,
                    round_sends: list[Send],
                    ) -> dict[tuple[int, int, int], int]:
    """Transmissions whose κ-epoch occupancy spills into the next round.

    A send at epoch k on a link with occupancy κ holds the wire through
    epoch k + κ − 1; if that crosses the round boundary, the next round sees
    it at virtual (negative) epoch k − K.
    """
    K = plan.num_epochs
    carry: dict[tuple[int, int, int], int] = {}
    for send in round_sends:
        kappa = plan.occupancy[send.link]
        if kappa > 1 and send.epoch + kappa - 1 >= K:
            key = (send.src, send.dst, send.epoch - K)
            carry[key] = carry.get(key, 0) + 1
    return carry


def _advance_state(topology: Topology, plan: EpochPlan,
                   holders: dict[Commodity, set[int]],
                   injections: dict[tuple[int, int, int, int], int],
                   round_sends: list[Send], remaining: Demand,
                   ) -> tuple[dict[Commodity, set[int]],
                              dict[tuple[int, int, int, int], int],
                              list[Triple]]:
    """Fold a round's sends into the next round's initial state."""
    K = plan.num_epochs
    new_holders: dict[Commodity, set[int]] = {
        q: set(nodes) for q, nodes in holders.items()}
    new_injections: dict[tuple[int, int, int, int], int] = {}
    # chunks that were in flight at the start of this round have landed now
    for (s, c, n, _), _count in injections.items():
        new_holders.setdefault((s, c), set()).add(n)
    for send in round_sends:
        arrival = send.epoch + plan.arrival_offset(send.src, send.dst) + 1
        if topology.is_switch(send.dst):
            continue  # switches never hold chunks across epochs
        q = (send.source, send.chunk)
        if arrival <= K:
            new_holders.setdefault(q, set()).add(send.dst)
        else:
            key = (send.source, send.chunk, send.dst, arrival - K)
            new_injections[key] = new_injections.get(key, 0) + 1
    satisfied = [
        (s, c, d) for s, c, d in remaining.triples()
        if d in new_holders.get((s, c), set())]
    return new_holders, new_injections, satisfied


def _delivered_epochs(schedule: Schedule, plan: EpochPlan, demand: Demand,
                      ) -> dict[Triple, int]:
    """Earliest epoch by whose end each demanded triple is at its sink."""
    arrival_epoch: dict[tuple[int, int, int], int] = {}
    for send in schedule.sends:
        pool = send.epoch + plan.arrival_offset(send.src, send.dst) + 1
        key = (send.source, send.chunk, send.dst)
        if key not in arrival_epoch or pool < arrival_epoch[key]:
            arrival_epoch[key] = pool
    delivered = {}
    for s, c, d in demand.triples():
        pool = arrival_epoch.get((s, c, d))
        if pool is None:
            raise InfeasibleError(
                f"A* schedule never delivers ({s},{c}) to {d}")
        delivered[(s, c, d)] = pool - 1
    return delivered
