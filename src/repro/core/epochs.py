"""Epoch machinery: τ selection, per-link discretisation, horizon estimation.

Implements §5 ("Epoch durations and chunk sizes", "Number of epochs") and the
fastest-link mechanics of Appendix F. All formulations consume an
:class:`EpochPlan` — the per-link view of the world after time is discretised:

* ``cap_chunks``  — chunks the link carries per epoch (T·τ in paper units);
* ``occupancy``   — κ, epochs one chunk occupies the link (1 unless τ was set
  from a faster link, App. F);
* ``delay``       — ⌈α/τ⌉, extra epochs before the receiver may forward;
* ``arrival_offset`` — Δ = (κ−1) + ⌈α/τ⌉: a chunk sent at epoch k is in the
  receiver's buffer at the start of epoch k + Δ + 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.collectives.demand import Demand
from repro.core.config import EpochMode, TecclConfig
from repro.errors import ModelError
from repro.topology.topology import Topology

_EPS = 1e-9

#: §6: "In the cases where α > 200 × τ we increase the epoch duration by 5×
#: to avoid large models."
ALPHA_TAU_RATIO_LIMIT = 200.0
ALPHA_TAU_STRETCH = 5.0


@dataclass(frozen=True)
class EpochPlan:
    """Discretised time for one (topology, chunk size, τ) combination."""

    tau: float
    num_epochs: int
    chunk_bytes: float
    cap_chunks: dict[tuple[int, int], float]
    occupancy: dict[tuple[int, int], int]
    delay: dict[tuple[int, int], int]

    def arrival_offset(self, src: int, dst: int) -> int:
        """Δ: epochs between send start and presence in the receiver buffer."""
        key = (src, dst)
        return self.occupancy[key] - 1 + self.delay[key]

    @property
    def horizon(self) -> float:
        """Wall-clock length of the modelled window."""
        return self.tau * self.num_epochs

    def with_num_epochs(self, num_epochs: int) -> "EpochPlan":
        return EpochPlan(tau=self.tau, num_epochs=num_epochs,
                         chunk_bytes=self.chunk_bytes,
                         cap_chunks=self.cap_chunks,
                         occupancy=self.occupancy, delay=self.delay)

    def to_dict(self) -> dict:
        """JSON-ready representation; per-link rows sorted by (src, dst)."""
        return {
            "tau": self.tau,
            "num_epochs": self.num_epochs,
            "chunk_bytes": self.chunk_bytes,
            "links": [[src, dst, self.cap_chunks[(src, dst)],
                       self.occupancy[(src, dst)], self.delay[(src, dst)]]
                      for src, dst in sorted(self.cap_chunks)],
        }

    @staticmethod
    def from_dict(data: dict) -> "EpochPlan":
        """Parse the :meth:`to_dict` representation, rejecting malformed
        documents: duplicate ``links`` rows (silent last-wins would let a
        corrupted cache entry change a link's capacity), non-finite or
        non-positive capacities, and occupancy/delay outside their domains.
        """
        try:
            cap_chunks: dict[tuple[int, int], float] = {}
            occupancy: dict[tuple[int, int], int] = {}
            delay: dict[tuple[int, int], int] = {}
            for src, dst, cap, occ, dly in data["links"]:
                key = (int(src), int(dst))
                if key in cap_chunks:
                    raise ModelError(
                        f"duplicate links row for {key}")
                cap_f, occ_i, dly_i = float(cap), int(occ), int(dly)
                if not math.isfinite(cap_f) or cap_f <= 0:
                    raise ModelError(
                        f"link {key}: capacity {cap!r} must be a finite "
                        "positive number of chunks per epoch")
                if occ_i < 1:
                    raise ModelError(
                        f"link {key}: occupancy {occ!r} must be >= 1")
                if dly_i < 0:
                    raise ModelError(
                        f"link {key}: delay {dly!r} must be >= 0")
                cap_chunks[key] = cap_f
                occupancy[key] = occ_i
                delay[key] = dly_i
            tau = float(data["tau"])
            num_epochs = int(data["num_epochs"])
            chunk_bytes = float(data["chunk_bytes"])
            if not math.isfinite(tau) or tau <= 0:
                raise ModelError(f"tau {data['tau']!r} must be positive")
            if num_epochs < 1:
                raise ModelError("num_epochs must be at least 1")
            if not math.isfinite(chunk_bytes) or chunk_bytes <= 0:
                raise ModelError(
                    f"chunk_bytes {data['chunk_bytes']!r} must be positive")
            return EpochPlan(tau=tau, num_epochs=num_epochs,
                             chunk_bytes=chunk_bytes,
                             cap_chunks=cap_chunks, occupancy=occupancy,
                             delay=delay)
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"malformed epoch plan document: {exc}") from exc


def epoch_duration(topology: Topology, chunk_bytes: float,
                   mode: EpochMode = EpochMode.FASTEST_LINK,
                   multiplier: float = 1.0) -> float:
    """Pick τ per §5: chunk time on the slowest or fastest link, times EM.

    Applies the paper's guard: while max α exceeds 200·τ, stretch τ by 5×
    (α dominates, a finer grid only bloats the model). The guard iterates —
    an α thousands of times τ needs several stretches before the grid stops
    being α-bloated; a single application (the ratio merely above 200) is
    bit-identical to one multiplication by 5.
    """
    if chunk_bytes <= 0:
        raise ModelError("chunk_bytes must be positive")
    times = [chunk_bytes / link.capacity for link in topology.links.values()]
    if not times:
        raise ModelError("topology has no links")
    base = max(times) if mode is EpochMode.SLOWEST_LINK else min(times)
    tau = base * multiplier
    if tau <= 0:
        raise ModelError(
            f"epoch duration collapsed to {tau} (multiplier {multiplier}, "
            f"base {base}); must be positive")
    while topology.max_alpha > ALPHA_TAU_RATIO_LIMIT * tau:
        tau *= ALPHA_TAU_STRETCH
    return tau


def build_epoch_plan(topology: Topology, config: TecclConfig,
                     num_epochs: int) -> EpochPlan:
    """Materialise the per-link discretisation for a fixed horizon."""
    tau = epoch_duration(topology, config.chunk_bytes, config.epoch_mode,
                         config.epoch_multiplier)
    return plan_with_tau(topology, config.chunk_bytes, tau, num_epochs)


def plan_with_tau(topology: Topology, chunk_bytes: float, tau: float,
                  num_epochs: int) -> EpochPlan:
    """Build a plan for an explicitly chosen τ (Algorithm 1's coarse grids)."""
    if tau <= 0:
        raise ModelError("tau must be positive")
    if num_epochs < 1:
        raise ModelError("num_epochs must be at least 1")
    cap_chunks: dict[tuple[int, int], float] = {}
    occupancy: dict[tuple[int, int], int] = {}
    delay: dict[tuple[int, int], int] = {}
    for key, link in topology.links.items():
        per_epoch = link.capacity * tau / chunk_bytes
        cap_chunks[key] = per_epoch
        occupancy[key] = max(1, math.ceil(1.0 / per_epoch - _EPS))
        delay[key] = math.ceil(link.alpha / tau - _EPS) if link.alpha > 0 else 0
    return EpochPlan(tau=tau, num_epochs=num_epochs, chunk_bytes=chunk_bytes,
                     cap_chunks=cap_chunks, occupancy=occupancy, delay=delay)


# ----------------------------------------------------------------------
# reachability (used for variable tightening and for horizon estimation)
# ----------------------------------------------------------------------
def earliest_arrival_epochs(topology: Topology,
                            plan: EpochPlan) -> dict[int, dict[int, int]]:
    """All-pairs earliest arrival, in epochs, over the discretised graph.

    Edge cost is Δ + 1 (send one epoch, appear in the buffer Δ epochs later);
    a Bellman-Ford/Dijkstra pass per node. Used to eliminate variables that
    cannot be non-zero (a chunk cannot reach node n before this bound) and to
    lower-bound the horizon.
    """
    import heapq

    out_adj, _ = topology.adjacency()
    dist: dict[int, dict[int, int]] = {}
    for src in topology.nodes:
        d = {src: 0}
        heap = [(0, src)]
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > d.get(node, 1 << 30):
                continue
            for link in out_adj[node]:
                step = plan.arrival_offset(link.src, link.dst) + 1
                new = cost + step
                if new < d.get(link.dst, 1 << 30):
                    d[link.dst] = new
                    heapq.heappush(heap, (new, link.dst))
        dist[src] = d
    return dist


def min_time_seconds(topology: Topology, chunk_bytes: float) -> dict[int, dict[int, float]]:
    """All-pairs fastest single-chunk delivery time (α + β·S per hop)."""
    import heapq

    out_adj, _ = topology.adjacency()
    dist: dict[int, dict[int, float]] = {}
    for src in topology.nodes:
        d = {src: 0.0}
        heap = [(0.0, src)]
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > d.get(node, float("inf")):
                continue
            for link in out_adj[node]:
                new = cost + link.transfer_time(chunk_bytes)
                if new < d.get(link.dst, float("inf")):
                    d[link.dst] = new
                    heapq.heappush(heap, (new, link.dst))
        dist[src] = d
    return dist


def path_based_epoch_bound(topology: Topology, demand: Demand,
                           plan: EpochPlan) -> int:
    """A cheap, generous upper bound on the horizon K.

    Routes every demanded triple along its shortest path (in epoch units),
    accumulates the per-link load, and bounds the finish by the longest path
    plus the worst per-link queueing delay. Deliberately loose: the
    optimization finds the true finish; a loose K only costs variables
    (the paper's Algorithm 1 has the same contract).
    """
    import heapq

    out_adj, _ = topology.adjacency()

    def paths_from(src: int) -> dict[int, list[int]]:
        dist = {src: 0}
        prev: dict[int, int] = {}
        heap = [(0, src)]
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > dist.get(node, 1 << 30):
                continue
            for link in out_adj[node]:
                step = plan.arrival_offset(link.src, link.dst) + 1
                new = cost + step
                if new < dist.get(link.dst, 1 << 30):
                    dist[link.dst] = new
                    prev[link.dst] = node
                    heapq.heappush(heap, (new, link.dst))
        paths: dict[int, list[int]] = {}
        for node in dist:
            path = [node]
            while path[-1] != src:
                path.append(prev[path[-1]])
            path.reverse()
            paths[node] = path
        return paths

    max_path = 0
    load: dict[tuple[int, int], int] = {}
    path_cache: dict[int, dict[int, list[int]]] = {}
    dist = earliest_arrival_epochs(topology, plan)
    for s, c in demand.commodities():
        if s not in path_cache:
            path_cache[s] = paths_from(s)
        for d in demand.destinations(s, c):
            if d not in dist[s]:
                raise ModelError(
                    f"destination {d} unreachable from source {s}")
            max_path = max(max_path, dist[s][d])
            path = path_cache[s][d]
            for i, j in zip(path, path[1:]):
                load[(i, j)] = load.get((i, j), 0) + 1

    def rate(key: tuple[int, int]) -> float:
        window = max(
            1, math.floor(plan.cap_chunks[key] * plan.occupancy[key] + _EPS))
        return window / plan.occupancy[key]

    queueing = max(
        (math.ceil(count / rate(key)) for key, count in load.items()),
        default=1)
    return max(2, max_path + queueing)


def next_horizon(num_epochs: int, bound: int | None) -> int:
    """Retry ladder for infeasible auto horizons.

    An undershot warm hint steps up to the sound path bound first (the
    horizon a cold solve would have used), then doubles — shared by the LP
    and MILP facades so their escalation policies cannot diverge.
    """
    if bound is not None and num_epochs < bound:
        return bound
    return num_epochs * 2


def candidate_completion_times(topology: Topology, demand: Demand,
                               chunk_bytes: float,
                               count: int = 8) -> list[float]:
    """The Cτ sweep of Algorithm 1: geometric candidates from a lower bound."""
    seconds = min_time_seconds(topology, chunk_bytes)
    lower = 0.0
    for s, c in demand.commodities():
        for d in demand.destinations(s, c):
            lower = max(lower, seconds[s].get(d, 0.0))
    if lower <= 0:
        raise ModelError("demand has no reachable destinations")
    return [lower * (2 ** i) for i in range(count)]


def algorithm1_num_epochs(topology: Topology, demand: Demand,
                          config: TecclConfig,
                          coarse_epochs: tuple[int, ...] = (4, 8, 12)) -> int:
    """Algorithm 1 (Appendix E): find an epoch-count upper bound.

    Sweeps candidate completion times; for each, tries coarse epoch grids and
    solves the *LP relaxation* of the general form for feasibility (fast, and
    feasibility at a coarse grid implies the horizon suffices). Returns
    ``feasible_time / τ_opt`` converted to epochs of the configured τ.
    """
    from repro.core.lp import lp_feasible_horizon

    tau_opt = epoch_duration(topology, config.chunk_bytes, config.epoch_mode,
                             config.epoch_multiplier)
    for total_time in candidate_completion_times(
            topology, demand, config.chunk_bytes):
        for ne in coarse_epochs:
            if lp_feasible_horizon(topology, demand, config,
                                   tau=total_time / ne, num_epochs=ne):
                return max(2, math.ceil(total_time / tau_opt))
    # Fall back to the generous path bound rather than failing.
    plan = build_epoch_plan(topology, config, num_epochs=1)
    return path_based_epoch_bound(topology, demand, plan)
