"""POP-style partitioned LP solving (client-side scaling, after [21]).

POP ("Partitioned Optimization Problems", Narayanan et al., SOSP'21 — the
paper's citation [21]) scales granular allocation problems by splitting the
*clients* into k groups, giving each group 1/k of every resource, solving
the k subproblems independently, and summing the allocations. Granular here
means no single commodity dominates — exactly the shape of an ALLTOALL,
where every GPU sources the same volume.

This module applies POP to the TE-CCL LP (§4.1): commodities (sources) are
partitioned, each subproblem sees the fabric with capacities scaled by its
demand share, and the merged flow schedule is feasible by construction
(shares sum to 1, so summed flows respect every original capacity). The
price is optimality: a subproblem cannot borrow the capacity another
partition left idle. The ablation bench quantifies that gap against the
monolithic LP.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, replace

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import EpochPlan, build_epoch_plan, path_based_epoch_bound
from repro.core.lp import (IncrementalLp, LpBuilder, LpOutcome,
                           _solve_maybe_reduced, _vet_reduced_outcome,
                           extract_lp_outcome)
from repro.core.schedule import FlowSchedule
from repro.core.subsolve import run_subsolves
from repro.errors import InfeasibleError, ModelError
from repro.obs.trace import current_context as _obs_context
from repro.obs.trace import event as _obs_event
from repro.obs.trace import span as _obs_span
from repro.solver.result import WarmStart
from repro.topology.topology import Topology


@dataclass(frozen=True)
class Partition:
    """One POP client group: a slice of the demand plus its capacity share."""

    index: int
    demand: Demand
    share: float

    def __post_init__(self) -> None:
        if not 0 < self.share <= 1:
            raise ModelError(f"partition share {self.share} not in (0, 1]")


@dataclass
class PopOutcome:
    """The merged result of the k independent sub-LPs.

    ``serial_solve_time`` sums the subproblem times (one machine);
    ``parallel_solve_time`` takes their maximum (POP's headline number —
    the subproblems are embarrassingly parallel).
    """

    schedule: FlowSchedule
    partitions: list[Partition]
    sub_outcomes: list[LpOutcome]
    plan: EpochPlan
    finish_time: float
    #: horizon attempts it took (1 = the auto bound was feasible first try)
    attempts: int = 1

    @property
    def serial_solve_time(self) -> float:
        return sum(o.solve_time for o in self.sub_outcomes)

    @property
    def parallel_solve_time(self) -> float:
        return max(o.solve_time for o in self.sub_outcomes)

    @property
    def solve_time(self) -> float:
        return self.parallel_solve_time


def partition_demand(demand: Demand, num_partitions: int, *,
                     seed: int = 0) -> list[Partition]:
    """Split the demand's sources into balanced client groups.

    Sources are shuffled (deterministically per seed, POP's randomised
    split) and greedily assigned to the lightest group by triple count.
    Shares are proportional to each group's triple load, so heterogeneous
    splits still sum to exactly 1.
    """
    if num_partitions < 1:
        raise ModelError("num_partitions must be at least 1")
    sources = list(demand.sources)
    if num_partitions > len(sources):
        raise ModelError(
            f"cannot split {len(sources)} sources into {num_partitions} "
            "partitions")
    rng = random.Random(seed)
    loads = {s: sum(len(demand.destinations(s, c))
                    for c in demand.chunks_of(s)) for s in sources}
    rng.shuffle(sources)
    sources.sort(key=lambda s: -loads[s])  # stable: heavy first
    groups: list[list[int]] = [[] for _ in range(num_partitions)]
    group_load = [0] * num_partitions
    for s in sources:
        lightest = min(range(num_partitions), key=lambda g: group_load[g])
        groups[lightest].append(s)
        group_load[lightest] += loads[s]
    total = sum(group_load)
    partitions = []
    for idx, members in enumerate(groups):
        member_set = set(members)
        sub = Demand.from_triples(
            t for t in demand.triples() if t[0] in member_set)
        partitions.append(Partition(index=idx, demand=sub,
                                    share=group_load[idx] / total))
    return partitions


def _scaled_capacity_fn(topology: Topology, config: TecclConfig,
                        share: float):
    """The subproblem's fabric: every capacity scaled by the demand share."""
    base = config.capacity_fn

    def capacity(i: int, j: int, k: int) -> float:
        full = base(i, j, k) if base is not None else \
            topology.link(i, j).capacity
        return full * share

    return capacity


def pop_auto_horizon(num_epochs: int, num_partitions: int) -> int:
    """Auto-horizon for capacity-split subproblems: real slack, always.

    Partitioned capacity stretches a subproblem's completion by roughly the
    partition count, so the joint path bound is scaled by ``ceil(K·P/2)``
    with a floor of one genuine slack epoch. The previous formula,
    ``max(K, int(K · P · 0.5))``, was a no-op at the default ``P = 2``
    (``int(K · 1.0) == K``): default POP runs got *zero* slack and burned an
    infeasible-retry solve whenever the joint bound was tight.
    """
    if num_partitions <= 1:
        return num_epochs  # no capacity splitting, no stretch to cover
    stretched = math.ceil(num_epochs * num_partitions * 0.5)
    return max(num_epochs + 1, stretched)


def solve_lp_pop(topology: Topology, demand: Demand, config: TecclConfig, *,
                 num_partitions: int = 2, seed: int = 0,
                 incremental: bool = True, parallel: bool = False,
                 jobs: int | None = None, pool=None) -> PopOutcome:
    """Solve the LP via POP partitioning and merge the sub-schedules.

    All subproblems share one epoch plan (same τ, same horizon) so their
    flow variables line up for the merge. An automatically estimated
    horizon is doubled and retried when any subproblem is infeasible —
    capacity splitting can stretch a partition past the joint optimum.

    With ``incremental=True`` (the default) each partition keeps one
    :class:`~repro.core.lp.IncrementalLp` model across the retries: an
    infeasible horizon grows every model in place (epoch blocks appended,
    nothing recompiled) and each attempt is warm-started from its own
    partition's last shared-plan solution (sibling partitions' points are
    never crossed over — their columns describe different commodities).

    The partitions are independent by construction, so ``parallel=True``
    fans them out concurrently: on **threads**
    (:func:`~repro.core.subsolve.run_subsolves`, width ``jobs``) for the
    incremental path — the growing models and warm-start slots stay
    in-process — or, when a :class:`~repro.service.pool.SolvePool` is
    passed as ``pool``, across **processes** for the cold path (each
    partition crosses the boundary as plain dicts and is rebuilt by
    :func:`solve_pop_partition`). ``pool`` requires ``incremental=False``
    (a live scipy model cannot be pickled) and falls back to the thread
    path when ``config.capacity_fn`` is set (a Python callable cannot
    cross the boundary either).

    Every merged result produced by the incremental or any parallel path
    is replayed through the conformance oracle; a violation falls back to
    the sequential cold rebuild path.
    """
    demand.validate(topology)
    topology.validate()
    if demand.benefits_from_copy():
        raise ModelError(
            "POP partitioning applies to the LP form only; multicast "
            "demands need the MILP (use solve_milp or A*)")
    if pool is not None and incremental:
        raise ModelError(
            "process fan-out cannot share in-process incremental models; "
            "pass incremental=False to solve cold partitions on a "
            "SolvePool")
    partitions = partition_demand(demand, num_partitions, seed=seed)

    auto = config.num_epochs is None
    if auto:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        # Partitioned capacity stretches completion by ~1/share; be generous.
        num_epochs = pop_auto_horizon(
            path_based_epoch_bound(topology, demand, probe), num_partitions)
    else:
        num_epochs = config.num_epochs

    attempts = 3 if auto else 1
    models: list[IncrementalLp | None] | None = \
        [None] * len(partitions) if incremental else None
    warms: list[WarmStart | None] = [None] * len(partitions)
    last_error: InfeasibleError | None = None
    for attempt in range(attempts):
        try:
            outcome = _solve_at_horizon(topology, config, partitions,
                                        num_epochs, models=models,
                                        warms=warms, parallel=parallel,
                                        jobs=jobs, pool=pool)
            outcome.attempts = attempt + 1
        except InfeasibleError as err:
            last_error = err
            num_epochs *= 2
            continue
        if (models is not None or parallel or pool is not None) \
                and not _pop_conformant(outcome, topology, demand, config):
            # A violation means the incremental/parallel machinery (not
            # the solver) mis-built or mis-merged a model; serve the
            # sequential cold path rather than speed.
            outcome = _solve_at_horizon(topology, config, partitions,
                                        num_epochs, models=None,
                                        warms=[None] * len(partitions))
            outcome.attempts = attempt + 1
        # the fan-out record the explain/flight layer surfaces: how many
        # sub-solves this schedule came from and how hard the horizon fought
        _obs_event("pop.fanout", partitions=len(partitions),
                   attempts=outcome.attempts, parallel=parallel,
                   pooled=pool is not None, epochs=num_epochs)
        if outcome.sub_outcomes:
            stats = outcome.sub_outcomes[0].result.stats
            stats["pop_partitions"] = len(partitions)
            stats["pop_attempts"] = outcome.attempts
        return outcome
    raise last_error


def _pop_conformant(outcome: PopOutcome, topology: Topology, demand: Demand,
                    config: TecclConfig) -> bool:
    """PR 3 gate: replay the merged schedule before handing it out."""
    from repro.simulate import check_flow

    report = check_flow(outcome.schedule, topology, demand, outcome.plan,
                        config=config)
    return report.ok


def _solve_at_horizon(topology: Topology, config: TecclConfig,
                      partitions: list[Partition], num_epochs: int,
                      models: list[IncrementalLp | None] | None = None,
                      warms: list[WarmStart | None] | None = None,
                      parallel: bool = False, jobs: int | None = None,
                      pool=None) -> PopOutcome:
    plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
    pooled = (pool is not None and models is None
              and config.capacity_fn is None)

    def solve_one(pi: int) -> LpOutcome:
        part = partitions[pi]
        sub_config = replace(
            config, num_epochs=num_epochs,
            capacity_fn=_scaled_capacity_fn(topology, config, part.share))
        if models is None:
            with _obs_span("pop.partition", index=part.index,
                           share=round(part.share, 6),
                           construction="cold", warm=False):
                builder = LpBuilder(topology, part.demand, sub_config,
                                    plan)
                start = time.perf_counter()
                problem = builder.build()
                build_time = time.perf_counter() - start
                # The quotient path applies per partition: the uniform
                # capacity scaling keeps the fabric's automorphisms, and
                # the compiled-matrix verification rejects anything a
                # partition's demand slice breaks.
                result, reduced = _solve_maybe_reduced(
                    problem, topology, part.demand, sub_config)
                result.stats["build_time"] = build_time
                result.stats["construction"] = problem.construction
                if not result.status.has_solution:
                    raise InfeasibleError(
                        f"POP partition {part.index} infeasible at "
                        f"K={num_epochs}", status="horizon")
                outcome = extract_lp_outcome(problem, result)
                if reduced:
                    outcome = _vet_reduced_outcome(
                        outcome, problem, topology, part.demand,
                        sub_config)
                return outcome
        inc = models[pi]
        warm = warms[pi] if warms is not None else None
        with _obs_span("pop.partition", index=part.index,
                       share=round(part.share, 6),
                       construction="incremental",
                       fresh=inc is None, warm=warm is not None):
            if inc is None:
                inc = models[pi] = IncrementalLp(topology, part.demand,
                                                 sub_config, num_epochs)
            elif inc.num_epochs < num_epochs:
                inc.grow(num_epochs)
            # Warm-start: this partition's own last shared-plan
            # solution. A sibling's point is never handed across, even
            # when variable counts coincide — the columns describe a
            # *different* partition's commodities, so it would be an
            # arbitrary seed the moment a backend starts consuming x0.
            result = inc.solve_at(num_epochs, warm_start=warm)
            result.stats["build_time"] = inc.build_time
            result.stats["construction"] = "incremental"
            if not result.status.has_solution:
                raise InfeasibleError(
                    f"POP partition {part.index} infeasible at "
                    f"K={num_epochs}", status="horizon")
            if warms is not None:
                warms[pi] = result.warm_start()
            return inc.extract(result, num_epochs)

    with _obs_span("pop.solve", partitions=len(partitions),
                   epochs=num_epochs,
                   incremental=models is not None,
                   parallel=bool(parallel), pooled=pooled):
        if pooled:
            sub_outcomes = _solve_partitions_pooled(
                topology, config, partitions, num_epochs, pool)
        else:
            # Each closure touches only its own models/warms slot, so the
            # batch is safe to fan out on threads. Sequential dispatch
            # goes through the same executor at width 1: every partition
            # runs even when a sibling is infeasible, so grown models and
            # warm starts reach the retry in the same state either way —
            # the parallel path stays bit-identical to the sequential one.
            tasks = [lambda pi=pi: solve_one(pi)
                     for pi in range(len(partitions))]
            sub_outcomes = run_subsolves(
                tasks, jobs=jobs if parallel else 1, label="pop")
        merged = merge_flow_schedules([o.schedule for o in sub_outcomes])
        return PopOutcome(schedule=merged, partitions=partitions,
                          sub_outcomes=sub_outcomes, plan=plan,
                          finish_time=merged.finish_time(topology))


def solve_pop_partition(request_dict: dict) -> dict:
    """Solve one serialised POP partition; module-level so workers pickle it.

    The :class:`~repro.service.pool.SolvePool` worker for the cold process
    fan-out: the fabric, the partition's demand slice, and the config cross
    the boundary as plain dicts, the capacity scaling is rebuilt from the
    ``share`` scalar, and the solved :class:`~repro.core.lp.LpOutcome`
    travels back as its dict form (primal vectors stay behind — the
    schedules are already extracted). Infeasibility is reported as a
    payload, not an exception, so it survives any executor's pickling of
    errors: ``{"infeasible": True, "message": ...}``.
    """
    topology = Topology.from_dict(request_dict["topology"])
    demand = Demand.from_dict(request_dict["demand"])
    config = TecclConfig.from_dict(request_dict["config"])
    share = float(request_dict["share"])
    num_epochs = int(request_dict["num_epochs"])
    sub_config = replace(
        config, capacity_fn=_scaled_capacity_fn(topology, config, share))
    from repro.obs import trace as _obs

    with _obs.activate(request_dict.get("_obs")):
        with _obs.span("pop.partition", index=request_dict["index"],
                       share=round(share, 6), construction="pooled",
                       warm=False):
            plan = build_epoch_plan(topology, config,
                                    num_epochs=num_epochs)
            try:
                builder = LpBuilder(topology, demand, sub_config, plan)
                start = time.perf_counter()
                problem = builder.build()
                build_time = time.perf_counter() - start
                result = problem.model.solve(sub_config.solver)
            except InfeasibleError as err:
                return {"infeasible": True, "message": str(err)}
            result.stats["build_time"] = build_time
            result.stats["construction"] = problem.construction
            if not result.status.has_solution:
                return {"infeasible": True,
                        "message": f"POP partition {request_dict['index']} "
                                   f"infeasible at K={num_epochs}"}
            outcome = extract_lp_outcome(problem, result)
    return {"infeasible": False, "outcome": outcome.to_dict()}


def _solve_partitions_pooled(topology: Topology, config: TecclConfig,
                             partitions: list[Partition], num_epochs: int,
                             pool) -> list[LpOutcome]:
    """Fan cold partition solves out across a SolvePool's processes.

    Submissions are keyed by a ``pop-partition`` canonical fingerprint —
    distinct from the planner's request keys, so they never collide in a
    shared pool, while identical concurrent partition solves still
    coalesce onto one worker.
    """
    from repro.service.fingerprint import (FINGERPRINT_VERSION,
                                           canonical_config,
                                           canonical_demand,
                                           canonical_topology,
                                           fingerprint_canonical)
    from repro.service.pool import SolvePool

    sub_config = replace(config, num_epochs=num_epochs)
    topo_doc = topology.to_dict()
    config_doc = sub_config.to_dict()
    canonical_topo = canonical_topology(topology)
    canonical_cfg = canonical_config(sub_config)
    context = _obs_context()
    futures = []
    for part in partitions:
        request = {"kind": "pop-partition", "index": part.index,
                   "share": part.share, "num_epochs": num_epochs,
                   "topology": topo_doc, "demand": part.demand.to_dict(),
                   "config": config_doc}
        if context is not None:
            request["_obs"] = context
        key = "pop:" + fingerprint_canonical({
            "kind": "pop-partition", "version": FINGERPRINT_VERSION,
            "topology": canonical_topo,
            "demand": canonical_demand(part.demand),
            "config": canonical_cfg, "share": float(part.share)})
        future, _ = pool.submit(key, request, solve_fn=solve_pop_partition)
        futures.append(future)
    sub_outcomes: list[LpOutcome] = []
    for part, future in zip(partitions, futures):
        payload = SolvePool.wait(future)
        if payload.get("infeasible"):
            raise InfeasibleError(
                payload.get("message")
                or f"POP partition {part.index} infeasible at "
                   f"K={num_epochs}", status="horizon")
        sub_outcomes.append(LpOutcome.from_dict(payload["outcome"]))
    return sub_outcomes


def merge_flow_schedules(schedules: list[FlowSchedule]) -> FlowSchedule:
    """Sum fractional schedules (commodity keys must not collide)."""
    if not schedules:
        raise ModelError("nothing to merge")
    first = schedules[0]
    flows: dict[tuple, float] = {}
    reads: dict[tuple, float] = {}
    for sched in schedules:
        if abs(sched.tau - first.tau) > 1e-15:
            raise ModelError("cannot merge schedules with different τ")
        for key, value in sched.flows.items():
            flows[key] = flows.get(key, 0.0) + value
        for key, value in sched.reads.items():
            reads[key] = reads.get(key, 0.0) + value
    return FlowSchedule(flows=flows, reads=reads, tau=first.tau,
                        chunk_bytes=first.chunk_bytes,
                        num_epochs=max(s.num_epochs for s in schedules))
