"""POP-style partitioned LP solving (client-side scaling, after [21]).

POP ("Partitioned Optimization Problems", Narayanan et al., SOSP'21 — the
paper's citation [21]) scales granular allocation problems by splitting the
*clients* into k groups, giving each group 1/k of every resource, solving
the k subproblems independently, and summing the allocations. Granular here
means no single commodity dominates — exactly the shape of an ALLTOALL,
where every GPU sources the same volume.

This module applies POP to the TE-CCL LP (§4.1): commodities (sources) are
partitioned, each subproblem sees the fabric with capacities scaled by its
demand share, and the merged flow schedule is feasible by construction
(shares sum to 1, so summed flows respect every original capacity). The
price is optimality: a subproblem cannot borrow the capacity another
partition left idle. The ablation bench quantifies that gap against the
monolithic LP.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import EpochPlan, build_epoch_plan, path_based_epoch_bound
from repro.core.lp import LpBuilder, LpOutcome, extract_lp_outcome
from repro.core.schedule import FlowSchedule
from repro.errors import InfeasibleError, ModelError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class Partition:
    """One POP client group: a slice of the demand plus its capacity share."""

    index: int
    demand: Demand
    share: float

    def __post_init__(self) -> None:
        if not 0 < self.share <= 1:
            raise ModelError(f"partition share {self.share} not in (0, 1]")


@dataclass
class PopOutcome:
    """The merged result of the k independent sub-LPs.

    ``serial_solve_time`` sums the subproblem times (one machine);
    ``parallel_solve_time`` takes their maximum (POP's headline number —
    the subproblems are embarrassingly parallel).
    """

    schedule: FlowSchedule
    partitions: list[Partition]
    sub_outcomes: list[LpOutcome]
    plan: EpochPlan
    finish_time: float

    @property
    def serial_solve_time(self) -> float:
        return sum(o.solve_time for o in self.sub_outcomes)

    @property
    def parallel_solve_time(self) -> float:
        return max(o.solve_time for o in self.sub_outcomes)

    @property
    def solve_time(self) -> float:
        return self.parallel_solve_time


def partition_demand(demand: Demand, num_partitions: int, *,
                     seed: int = 0) -> list[Partition]:
    """Split the demand's sources into balanced client groups.

    Sources are shuffled (deterministically per seed, POP's randomised
    split) and greedily assigned to the lightest group by triple count.
    Shares are proportional to each group's triple load, so heterogeneous
    splits still sum to exactly 1.
    """
    if num_partitions < 1:
        raise ModelError("num_partitions must be at least 1")
    sources = list(demand.sources)
    if num_partitions > len(sources):
        raise ModelError(
            f"cannot split {len(sources)} sources into {num_partitions} "
            "partitions")
    rng = random.Random(seed)
    loads = {s: sum(len(demand.destinations(s, c))
                    for c in demand.chunks_of(s)) for s in sources}
    rng.shuffle(sources)
    sources.sort(key=lambda s: -loads[s])  # stable: heavy first
    groups: list[list[int]] = [[] for _ in range(num_partitions)]
    group_load = [0] * num_partitions
    for s in sources:
        lightest = min(range(num_partitions), key=lambda g: group_load[g])
        groups[lightest].append(s)
        group_load[lightest] += loads[s]
    total = sum(group_load)
    partitions = []
    for idx, members in enumerate(groups):
        member_set = set(members)
        sub = Demand.from_triples(
            t for t in demand.triples() if t[0] in member_set)
        partitions.append(Partition(index=idx, demand=sub,
                                    share=group_load[idx] / total))
    return partitions


def _scaled_capacity_fn(topology: Topology, config: TecclConfig,
                        share: float):
    """The subproblem's fabric: every capacity scaled by the demand share."""
    base = config.capacity_fn

    def capacity(i: int, j: int, k: int) -> float:
        full = base(i, j, k) if base is not None else \
            topology.link(i, j).capacity
        return full * share

    return capacity


def solve_lp_pop(topology: Topology, demand: Demand, config: TecclConfig, *,
                 num_partitions: int = 2, seed: int = 0) -> PopOutcome:
    """Solve the LP via POP partitioning and merge the sub-schedules.

    All subproblems share one epoch plan (same τ, same horizon) so their
    flow variables line up for the merge. An automatically estimated
    horizon is doubled and retried when any subproblem is infeasible —
    capacity splitting can stretch a partition past the joint optimum.
    """
    demand.validate(topology)
    topology.validate()
    if demand.benefits_from_copy():
        raise ModelError(
            "POP partitioning applies to the LP form only; multicast "
            "demands need the MILP (use solve_milp or A*)")
    partitions = partition_demand(demand, num_partitions, seed=seed)

    auto = config.num_epochs is None
    if auto:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        # Partitioned capacity stretches completion by ~1/share; be generous.
        num_epochs = path_based_epoch_bound(topology, demand, probe)
        num_epochs = max(num_epochs, int(num_epochs * num_partitions * 0.5))
    else:
        num_epochs = config.num_epochs

    attempts = 3 if auto else 1
    last_error: InfeasibleError | None = None
    for _ in range(attempts):
        try:
            return _solve_at_horizon(topology, config, partitions, num_epochs)
        except InfeasibleError as err:
            last_error = err
            num_epochs *= 2
    raise last_error


def _solve_at_horizon(topology: Topology, config: TecclConfig,
                      partitions: list[Partition],
                      num_epochs: int) -> PopOutcome:
    plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
    sub_outcomes: list[LpOutcome] = []
    for part in partitions:
        sub_config = replace(
            config, num_epochs=num_epochs,
            capacity_fn=_scaled_capacity_fn(topology, config, part.share))
        builder = LpBuilder(topology, part.demand, sub_config, plan)
        start = time.perf_counter()
        problem = builder.build()
        build_time = time.perf_counter() - start
        result = problem.model.solve(sub_config.solver)
        result.stats["build_time"] = build_time
        result.stats["construction"] = problem.construction
        if not result.status.has_solution:
            raise InfeasibleError(
                f"POP partition {part.index} infeasible at K={num_epochs}",
                status="horizon")
        sub_outcomes.append(extract_lp_outcome(problem, result))
    merged = merge_flow_schedules([o.schedule for o in sub_outcomes])
    return PopOutcome(schedule=merged, partitions=partitions,
                      sub_outcomes=sub_outcomes, plan=plan,
                      finish_time=merged.finish_time(topology))


def merge_flow_schedules(schedules: list[FlowSchedule]) -> FlowSchedule:
    """Sum fractional schedules (commodity keys must not collide)."""
    if not schedules:
        raise ModelError("nothing to merge")
    first = schedules[0]
    flows: dict[tuple, float] = {}
    reads: dict[tuple, float] = {}
    for sched in schedules:
        if abs(sched.tau - first.tau) > 1e-15:
            raise ModelError("cannot merge schedules with different τ")
        for key, value in sched.flows.items():
            flows[key] = flows.get(key, 0.0) + value
        for key, value in sched.reads.items():
            reads[key] = reads.get(key, 0.0) + value
    return FlowSchedule(flows=flows, reads=reads, tau=first.tau,
                        chunk_bytes=first.chunk_bytes,
                        num_epochs=max(s.num_epochs for s in schedules))
