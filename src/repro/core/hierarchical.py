"""Hierarchical collective synthesis: divide by chassis, conquer by phase.

A third scaling lever besides the LP (§4.1) and A* (§4.2): exploit the
fabric's chassis structure the way production collectives do (NCCL's
hierarchical ALLREDUCE, TACCL's per-chassis sketches). An ALLGATHER over
``G`` chassis of ``g`` GPUs decomposes into three phases:

1. **local gather** — each chassis runs an internal ALLGATHER of its own
   chunks (G independent, laptop-sized MILPs that would be one big one);
2. **leader exchange** — one leader per chassis ALLGATHERs the chassis
   aggregates across the inter-chassis fabric;
3. **local broadcast** — each leader broadcasts the remote aggregates
   inside its chassis.

Phases are barriers; chassis within a phase run concurrently (their
subfabrics are disjoint up to shared uplinks, which phase-1/3 traffic does
not need). The price of the decomposition is the leader bottleneck — every
remote byte enters a chassis through one GPU — which is exactly the
suboptimality the flat formulations avoid; the ablation bench measures it.

The *solves* mirror the runtime concurrency: every per-chassis instance in
every phase is independent, so ``parallel=True`` fans the whole batch out
on threads (:func:`~repro.core.subsolve.run_subsolves`), and ``dedup=True``
canonicalizes each induced subfabric + demand through the service
fingerprint machinery and solves each distinct instance once — a symmetric
G-chassis fabric pays for 1 chassis solve instead of G per phase, with the
shared result remapped through each chassis's own :class:`_SubFabric` id
maps. Every dedup hit is vetted by replaying the shared schedule against
the hitting chassis's own fabric and demand (the PR 3 conformance oracle);
a replay violation falls back to a private cold solve for that chassis.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.collectives.demand import Demand
from repro.collectives.patterns import allgather, broadcast
from repro.core.config import TecclConfig
from repro.core.solve import Method, SynthesisResult, synthesize
from repro.core.subsolve import SubSolveCache, run_subsolves
from repro.errors import DemandError, ServiceError, TopologyError
from repro.obs.trace import span as _obs_span
from repro.topology.topology import Topology


@dataclass(frozen=True)
class ChassisPlan:
    """One chassis: its GPUs (original ids) and the designated leader."""

    gpus: tuple[int, ...]
    leader: int

    def __post_init__(self) -> None:
        if self.leader not in self.gpus:
            raise DemandError(
                f"leader {self.leader} is not one of the chassis GPUs")


def chassis_groups(topology: Topology, gpus_per_chassis: int,
                   ) -> list[ChassisPlan]:
    """Slice the GPU id space into consecutive chassis (builder convention).

    Every builder in :mod:`repro.topology` numbers GPUs chassis-major, so
    consecutive slices recover the physical grouping. The first GPU of
    each chassis becomes the leader (the uplink-attached GPU in NDv2).
    """
    gpus = topology.gpus
    if gpus_per_chassis < 1 or len(gpus) % gpus_per_chassis:
        raise TopologyError(
            f"{len(gpus)} GPUs do not divide into chassis of "
            f"{gpus_per_chassis}")
    plans = []
    for start in range(0, len(gpus), gpus_per_chassis):
        members = tuple(gpus[start:start + gpus_per_chassis])
        plans.append(ChassisPlan(gpus=members, leader=members[0]))
    return plans


@dataclass(frozen=True)
class _SubFabric:
    """An induced subtopology plus the id maps to talk to it."""

    topology: Topology
    to_sub: dict[int, int]
    to_full: dict[int, int]


def _induce(topology: Topology, gpus: list[int], name: str) -> _SubFabric:
    """Induced subfabric on ``gpus`` plus every switch (with id maps)."""
    keep = sorted(set(gpus) | set(topology.switches))
    to_sub = {old: new for new, old in enumerate(keep)}
    sub = Topology(name=name, num_nodes=len(keep),
                   switches=frozenset(to_sub[s] for s in topology.switches))
    for (src, dst), link in topology.links.items():
        if src in to_sub and dst in to_sub:
            sub.add_link(to_sub[src], to_sub[dst], link.capacity, link.alpha)
    # Switches with no surviving links would fail validation; drop them.
    dead = [s for s in sub.switches
            if not sub.out_edges(s) and not sub.in_edges(s)]
    if dead:
        alive = [n for n in range(sub.num_nodes) if n not in dead]
        remap = {old: new for new, old in enumerate(alive)}
        rebuilt = Topology(
            name=name, num_nodes=len(alive),
            switches=frozenset(remap[s] for s in sub.switches
                               if s not in dead))
        for (src, dst), link in sub.links.items():
            rebuilt.add_link(remap[src], remap[dst], link.capacity,
                             link.alpha)
        old_keep = {to_sub[o]: o for o in keep}
        to_full = {remap[s]: old_keep[s] for s in alive}
        return _SubFabric(topology=rebuilt,
                          to_sub={o: remap[s] for o, s in to_sub.items()
                                  if s in remap},
                          to_full=to_full)
    return _SubFabric(topology=sub, to_sub=to_sub,
                      to_full={n: o for o, n in to_sub.items()})


@dataclass
class PhaseResult:
    """One synthesized phase on one subfabric.

    ``deduped`` marks results served from the sub-instance cache: the
    ``synthesis`` object is then *shared* with the phase that solved the
    identical instance, and this phase's own ``fabric`` id maps translate
    it back to full-fabric GPU ids.
    """

    label: str
    fabric: _SubFabric
    demand: Demand
    synthesis: SynthesisResult
    deduped: bool = False

    @property
    def finish_time(self) -> float:
        return self.synthesis.finish_time

    @property
    def solve_time(self) -> float:
        return self.synthesis.solve_time


@dataclass
class HierarchicalOutcome:
    """All three phases of a hierarchical ALLGATHER.

    Attributes:
        local_gather: one result per multi-GPU chassis (phase 1).
        leader_exchange: the single cross-chassis result (phase 2).
        local_broadcast: one result per multi-GPU chassis (phase 3).
        sub_solves: solver invocations actually paid for (after dedup).
        dedup_hits: phase instances served from an identical solve.
    """

    local_gather: list[PhaseResult]
    leader_exchange: PhaseResult
    local_broadcast: list[PhaseResult]
    sub_solves: int = 0
    dedup_hits: int = 0

    @property
    def finish_time(self) -> float:
        """Barrier composition: slowest chassis per phase, phases summed."""
        phase1 = max(p.finish_time for p in self.local_gather)
        phase3 = max(p.finish_time for p in self.local_broadcast)
        return phase1 + self.leader_exchange.finish_time + phase3

    @property
    def parallel_solve_time(self) -> float:
        """Critical-path solver time (chassis solves run concurrently)."""
        phase1 = max(p.solve_time for p in self.local_gather)
        phase3 = max(p.solve_time for p in self.local_broadcast)
        return phase1 + self.leader_exchange.solve_time + phase3

    @property
    def serial_solve_time(self) -> float:
        """As-if-sequential solver time: every phase instance summed.

        Deduped phases share one synthesis object, so its solve time is
        counted once per phase on purpose — this is the cost a sequential,
        dedup-free run would have paid, the baseline the speedup benches
        divide by.
        """
        return (sum(p.solve_time for p in self.local_gather)
                + self.leader_exchange.solve_time
                + sum(p.solve_time for p in self.local_broadcast))

    def phases(self) -> list[PhaseResult]:
        return (list(self.local_gather) + [self.leader_exchange]
                + list(self.local_broadcast))


def hierarchical_allgather(topology: Topology, config: TecclConfig, *,
                           chassis: list[ChassisPlan],
                           chunks_per_gpu: int = 1,
                           method: Method = Method.AUTO,
                           parallel: bool = False,
                           jobs: int | None = None,
                           dedup: bool = True,
                           ) -> HierarchicalOutcome:
    """Synthesize an ALLGATHER hierarchically over the given chassis.

    Every phase is an independent TE-CCL synthesis with an automatically
    estimated horizon; chunk size is uniform across phases (the phase-2/3
    payloads are *more chunks*, not bigger ones, so one τ fits all).

    Args:
        parallel: fan every phase instance (all three phases are mutually
            independent solves) out on threads via
            :func:`~repro.core.subsolve.run_subsolves`.
        jobs: fan-out width for ``parallel`` (default: CPU count).
        dedup: solve each *distinct* sub-instance once, keyed by the
            service-layer canonical fingerprint of (subfabric, demand,
            config, method); identical chassis share the result. Hits are
            vetted by conformance replay against the hitting chassis's own
            fabric/demand and fall back to a private solve on violation.
            Automatically disabled when ``config.capacity_fn`` is set — a
            Python callable has no canonical form to hash.
    """
    _check_chassis(topology, chassis)
    if chunks_per_gpu < 1:
        raise DemandError("chunks_per_gpu must be at least 1")
    multi = [index for index, plan in enumerate(chassis)
             if len(plan.gpus) >= 2]
    if not multi:
        # fail before any solve is paid for, not after the leader exchange
        raise DemandError(
            "hierarchical synthesis needs at least one multi-GPU chassis")
    config = _auto_horizon(config)

    # ---- build every phase instance up front (no solves yet) ----------
    specs: list[tuple[str, _SubFabric, Demand]] = []
    for index in multi:
        plan = chassis[index]
        fabric = _induce(topology, list(plan.gpus), f"chassis-{index}")
        demand = allgather([fabric.to_sub[g] for g in plan.gpus],
                           chunks_per_gpu)
        specs.append((f"gather@{index}", fabric, demand))

    leaders = [plan.leader for plan in chassis]
    leader_fabric = _induce(topology, leaders, "leaders")
    # Each leader forwards exactly its own chassis aggregate: chunk
    # (leader, c) is the c-th chunk of that chassis's payload, wanted by
    # every other leader. Sizing every payload by the *largest* chassis
    # (the old uniform-allgather formula) modeled small-chassis leaders
    # forwarding chunks they do not have, inflating phase 2 and phase 3
    # on heterogeneous chassis.
    exchange_triples = []
    for plan in chassis:
        src = leader_fabric.to_sub[plan.leader]
        for c in range(len(plan.gpus) * chunks_per_gpu):
            for other in chassis:
                if other.leader != plan.leader:
                    exchange_triples.append(
                        (src, c, leader_fabric.to_sub[other.leader]))
    exchange_demand = Demand.from_triples(exchange_triples)
    specs.append(("leader-exchange", leader_fabric, exchange_demand))

    for index in multi:
        plan = chassis[index]
        fabric = _induce(topology, list(plan.gpus), f"chassis-{index}")
        # what arrives from outside: every *other* chassis's aggregate
        remote_chunks = sum(
            len(other.gpus) for j, other in enumerate(chassis)
            if j != index) * chunks_per_gpu
        demand = broadcast(fabric.to_sub[plan.leader],
                           [fabric.to_sub[g] for g in plan.gpus],
                           remote_chunks)
        specs.append((f"broadcast@{index}", fabric, demand))

    # ---- solve the whole batch: fan out, dedup by fingerprint ---------
    dedup_on = dedup and config.capacity_fn is None
    cache = SubSolveCache()
    stats = {"solves": 0, "hits": 0}
    vetted: dict[str, bool] = {}
    stats_lock = threading.Lock()

    def solve_one(label: str, fabric: _SubFabric,
                  demand: Demand) -> tuple[SynthesisResult, bool]:
        def cold() -> SynthesisResult:
            with stats_lock:
                stats["solves"] += 1
            with _obs_span("hier.phase", label=label,
                           gpus=len(fabric.topology.gpus)):
                return synthesize(fabric.topology, demand, config,
                                  method=method)

        key = _phase_fingerprint(fabric.topology, demand, config,
                                 method) if dedup_on else None
        if key is None:
            return cold(), False
        synthesis, hit = cache.solve(key, cold)
        if hit:
            # Vet the first hit per fingerprint by replaying the shared
            # schedule through the conformance oracle against the hitting
            # chassis's own fabric and demand; later hits for the same
            # (canonically identical) instance reuse that verdict instead
            # of paying for a replay each.
            with stats_lock:
                verdict = vetted.get(key)
            if verdict is None:
                verdict = _replays_clean(synthesis, fabric, demand)
                with stats_lock:
                    vetted[key] = verdict
            if not verdict:
                # a fingerprint said "identical" but the replay disagrees
                # — trust the oracle and pay for a private solve
                return cold(), False
            with stats_lock:
                stats["hits"] += 1
        return synthesis, hit

    with _obs_span("hier.solve", chassis=len(chassis), instances=len(specs),
                   parallel=bool(parallel), dedup=dedup_on) as span:
        tasks = [lambda s=spec: solve_one(*s) for spec in specs]
        if parallel:
            solved = run_subsolves(tasks, jobs=jobs, label="hier")
        else:
            solved = [task() for task in tasks]
        span.set_attr(sub_solves=stats["solves"], dedup_hits=stats["hits"])

    results = [PhaseResult(label=label, fabric=fabric, demand=demand,
                           synthesis=synthesis, deduped=hit)
               for (label, fabric, demand), (synthesis, hit)
               in zip(specs, solved)]
    return HierarchicalOutcome(
        local_gather=[r for r in results if r.label.startswith("gather@")],
        leader_exchange=next(r for r in results
                             if r.label == "leader-exchange"),
        local_broadcast=[r for r in results
                         if r.label.startswith("broadcast@")],
        sub_solves=stats["solves"],
        dedup_hits=stats["hits"])


def _phase_fingerprint(topology: Topology, demand: Demand,
                       config: TecclConfig, method: Method) -> str | None:
    """Canonical key for one phase instance; ``None`` when unhashable."""
    from repro.service.fingerprint import fingerprint_request

    try:
        return fingerprint_request(topology, demand, config, method=method)
    except ServiceError:
        return None


def _replays_clean(synthesis: SynthesisResult, fabric: _SubFabric,
                   demand: Demand) -> bool:
    """Vet a dedup hit: replay the shared schedule on *this* chassis.

    When the Appendix C transform rewrote the topology the schedule lives
    in the transformed space the result itself carries; replaying there
    still checks internal consistency, just not against the hitting
    fabric's raw ids.
    """
    from repro.simulate import check_result

    if synthesis.hyper is None:
        report = check_result(synthesis, topology=fabric.topology,
                              demand=demand)
    else:
        report = check_result(synthesis)
    return report.ok


def _check_chassis(topology: Topology, chassis: list[ChassisPlan]) -> None:
    if len(chassis) < 2:
        raise DemandError("hierarchical synthesis needs at least 2 chassis")
    seen: set[int] = set()
    for plan in chassis:
        members = set(plan.gpus)
        if members & seen:
            raise DemandError("chassis overlap: "
                              f"{sorted(members & seen)}")
        seen |= members
    gpus = set(topology.gpus)
    if seen != gpus:
        raise DemandError(
            f"chassis cover {len(seen)} GPUs but the fabric has "
            f"{len(gpus)}")


def _auto_horizon(config: TecclConfig) -> TecclConfig:
    """Phases size their own horizons; a user K meant for the flat problem
    would be wrong for every phase."""
    from dataclasses import replace

    if config.num_epochs is None:
        return config
    return replace(config, num_epochs=None)
