"""Hierarchical collective synthesis: divide by chassis, conquer by phase.

A third scaling lever besides the LP (§4.1) and A* (§4.2): exploit the
fabric's chassis structure the way production collectives do (NCCL's
hierarchical ALLREDUCE, TACCL's per-chassis sketches). An ALLGATHER over
``G`` chassis of ``g`` GPUs decomposes into three phases:

1. **local gather** — each chassis runs an internal ALLGATHER of its own
   chunks (G independent, laptop-sized MILPs that would be one big one);
2. **leader exchange** — one leader per chassis ALLGATHERs the chassis
   aggregates across the inter-chassis fabric;
3. **local broadcast** — each leader broadcasts the remote aggregates
   inside its chassis.

Phases are barriers; chassis within a phase run concurrently (their
subfabrics are disjoint up to shared uplinks, which phase-1/3 traffic does
not need). The price of the decomposition is the leader bottleneck — every
remote byte enters a chassis through one GPU — which is exactly the
suboptimality the flat formulations avoid; the ablation bench measures it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.demand import Demand
from repro.collectives.patterns import allgather, broadcast
from repro.core.config import TecclConfig
from repro.core.solve import Method, SynthesisResult, synthesize
from repro.errors import DemandError, TopologyError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class ChassisPlan:
    """One chassis: its GPUs (original ids) and the designated leader."""

    gpus: tuple[int, ...]
    leader: int

    def __post_init__(self) -> None:
        if self.leader not in self.gpus:
            raise DemandError(
                f"leader {self.leader} is not one of the chassis GPUs")


def chassis_groups(topology: Topology, gpus_per_chassis: int,
                   ) -> list[ChassisPlan]:
    """Slice the GPU id space into consecutive chassis (builder convention).

    Every builder in :mod:`repro.topology` numbers GPUs chassis-major, so
    consecutive slices recover the physical grouping. The first GPU of
    each chassis becomes the leader (the uplink-attached GPU in NDv2).
    """
    gpus = topology.gpus
    if gpus_per_chassis < 1 or len(gpus) % gpus_per_chassis:
        raise TopologyError(
            f"{len(gpus)} GPUs do not divide into chassis of "
            f"{gpus_per_chassis}")
    plans = []
    for start in range(0, len(gpus), gpus_per_chassis):
        members = tuple(gpus[start:start + gpus_per_chassis])
        plans.append(ChassisPlan(gpus=members, leader=members[0]))
    return plans


@dataclass(frozen=True)
class _SubFabric:
    """An induced subtopology plus the id maps to talk to it."""

    topology: Topology
    to_sub: dict[int, int]
    to_full: dict[int, int]


def _induce(topology: Topology, gpus: list[int], name: str) -> _SubFabric:
    """Induced subfabric on ``gpus`` plus every switch (with id maps)."""
    keep = sorted(set(gpus) | set(topology.switches))
    to_sub = {old: new for new, old in enumerate(keep)}
    sub = Topology(name=name, num_nodes=len(keep),
                   switches=frozenset(to_sub[s] for s in topology.switches))
    for (src, dst), link in topology.links.items():
        if src in to_sub and dst in to_sub:
            sub.add_link(to_sub[src], to_sub[dst], link.capacity, link.alpha)
    # Switches with no surviving links would fail validation; drop them.
    dead = [s for s in sub.switches
            if not sub.out_edges(s) and not sub.in_edges(s)]
    if dead:
        alive = [n for n in range(sub.num_nodes) if n not in dead]
        remap = {old: new for new, old in enumerate(alive)}
        rebuilt = Topology(
            name=name, num_nodes=len(alive),
            switches=frozenset(remap[s] for s in sub.switches
                               if s not in dead))
        for (src, dst), link in sub.links.items():
            rebuilt.add_link(remap[src], remap[dst], link.capacity,
                             link.alpha)
        old_keep = {to_sub[o]: o for o in keep}
        to_full = {remap[s]: old_keep[s] for s in alive}
        return _SubFabric(topology=rebuilt,
                          to_sub={o: remap[s] for o, s in to_sub.items()
                                  if s in remap},
                          to_full=to_full)
    return _SubFabric(topology=sub, to_sub=to_sub,
                      to_full={n: o for o, n in to_sub.items()})


@dataclass
class PhaseResult:
    """One synthesized phase on one subfabric."""

    label: str
    fabric: _SubFabric
    demand: Demand
    synthesis: SynthesisResult

    @property
    def finish_time(self) -> float:
        return self.synthesis.finish_time

    @property
    def solve_time(self) -> float:
        return self.synthesis.solve_time


@dataclass
class HierarchicalOutcome:
    """All three phases of a hierarchical ALLGATHER.

    Attributes:
        local_gather: one result per chassis (phase 1).
        leader_exchange: the single cross-chassis result (phase 2).
        local_broadcast: one result per chassis (phase 3).
    """

    local_gather: list[PhaseResult]
    leader_exchange: PhaseResult
    local_broadcast: list[PhaseResult]

    @property
    def finish_time(self) -> float:
        """Barrier composition: slowest chassis per phase, phases summed."""
        phase1 = max(p.finish_time for p in self.local_gather)
        phase3 = max(p.finish_time for p in self.local_broadcast)
        return phase1 + self.leader_exchange.finish_time + phase3

    @property
    def parallel_solve_time(self) -> float:
        """Critical-path solver time (chassis solves run concurrently)."""
        phase1 = max(p.solve_time for p in self.local_gather)
        phase3 = max(p.solve_time for p in self.local_broadcast)
        return phase1 + self.leader_exchange.solve_time + phase3

    @property
    def serial_solve_time(self) -> float:
        return (sum(p.solve_time for p in self.local_gather)
                + self.leader_exchange.solve_time
                + sum(p.solve_time for p in self.local_broadcast))

    def phases(self) -> list[PhaseResult]:
        return (list(self.local_gather) + [self.leader_exchange]
                + list(self.local_broadcast))


def hierarchical_allgather(topology: Topology, config: TecclConfig, *,
                           chassis: list[ChassisPlan],
                           chunks_per_gpu: int = 1,
                           method: Method = Method.AUTO,
                           ) -> HierarchicalOutcome:
    """Synthesize an ALLGATHER hierarchically over the given chassis.

    Every phase is an independent TE-CCL synthesis with an automatically
    estimated horizon; chunk size is uniform across phases (the phase-2/3
    payloads are *more chunks*, not bigger ones, so one τ fits all).
    """
    _check_chassis(topology, chassis)
    if chunks_per_gpu < 1:
        raise DemandError("chunks_per_gpu must be at least 1")
    config = _auto_horizon(config)

    local_gather: list[PhaseResult] = []
    for index, plan in enumerate(chassis):
        if len(plan.gpus) < 2:
            continue  # single-GPU chassis has nothing to gather locally
        fabric = _induce(topology, list(plan.gpus), f"chassis-{index}")
        demand = allgather([fabric.to_sub[g] for g in plan.gpus],
                           chunks_per_gpu)
        synthesis = synthesize(fabric.topology, demand, config,
                               method=method)
        local_gather.append(PhaseResult(
            label=f"gather@{index}", fabric=fabric, demand=demand,
            synthesis=synthesis))

    leaders = [plan.leader for plan in chassis]
    leader_fabric = _induce(topology, leaders, "leaders")
    # each leader forwards its whole chassis aggregate
    exchange_chunks = max(len(plan.gpus) for plan in chassis) \
        * chunks_per_gpu
    exchange_demand = allgather([leader_fabric.to_sub[l] for l in leaders],
                                exchange_chunks)
    leader_exchange = PhaseResult(
        label="leader-exchange", fabric=leader_fabric,
        demand=exchange_demand,
        synthesis=synthesize(leader_fabric.topology, exchange_demand,
                             config, method=method))

    remote_chunks = (len(chassis) - 1) * exchange_chunks
    local_broadcast: list[PhaseResult] = []
    for index, plan in enumerate(chassis):
        if len(plan.gpus) < 2:
            continue
        fabric = _induce(topology, list(plan.gpus), f"chassis-{index}")
        demand = broadcast(fabric.to_sub[plan.leader],
                           [fabric.to_sub[g] for g in plan.gpus],
                           remote_chunks)
        synthesis = synthesize(fabric.topology, demand, config,
                               method=method)
        local_broadcast.append(PhaseResult(
            label=f"broadcast@{index}", fabric=fabric, demand=demand,
            synthesis=synthesis))

    if not local_gather or not local_broadcast:
        raise DemandError(
            "hierarchical synthesis needs at least one multi-GPU chassis")
    return HierarchicalOutcome(local_gather=local_gather,
                               leader_exchange=leader_exchange,
                               local_broadcast=local_broadcast)


def _check_chassis(topology: Topology, chassis: list[ChassisPlan]) -> None:
    if len(chassis) < 2:
        raise DemandError("hierarchical synthesis needs at least 2 chassis")
    seen: set[int] = set()
    for plan in chassis:
        members = set(plan.gpus)
        if members & seen:
            raise DemandError("chassis overlap: "
                              f"{sorted(members & seen)}")
        seen |= members
    gpus = set(topology.gpus)
    if seen != gpus:
        raise DemandError(
            f"chassis cover {len(seen)} GPUs but the fabric has "
            f"{len(gpus)}")


def _auto_horizon(config: TecclConfig) -> TecclConfig:
    """Phases size their own horizons; a user K meant for the flat problem
    would be wrong for every phase."""
    from dataclasses import replace

    if config.num_epochs is None:
        return config
    return replace(config, num_epochs=None)
