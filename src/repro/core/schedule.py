"""Schedule objects: the output of every synthesizer in this package.

Two flavors exist, mirroring the paper's two solution classes:

* :class:`Schedule` — integral: a list of ``Send`` records (chunk c of source
  s crosses link (i, j) starting at epoch k). Produced by the MILP, A*, and
  all baselines.
* :class:`FlowSchedule` — fractional: per-epoch chunk *amounts* per commodity
  per link, produced by the LP form (§4.1), plus the read (consumption)
  profile at each sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.topology.topology import Topology


@dataclass(frozen=True, order=True)
class Send:
    """One chunk crossing one link, starting at one epoch."""

    epoch: int
    source: int
    chunk: int
    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ScheduleError("send epoch must be non-negative")

    @property
    def commodity(self) -> tuple[int, int]:
        return (self.source, self.chunk)

    @property
    def link(self) -> tuple[int, int]:
        return (self.src, self.dst)


@dataclass
class Schedule:
    """An integral collective schedule.

    Attributes:
        sends: the transfers, in no particular order.
        tau: epoch duration in seconds.
        chunk_bytes: bytes per chunk.
        num_epochs: the horizon the schedule was synthesised under.
    """

    sends: list[Send]
    tau: float
    chunk_bytes: float
    num_epochs: int

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ScheduleError("tau must be positive")
        if self.chunk_bytes <= 0:
            raise ScheduleError("chunk_bytes must be positive")
        for send in self.sends:
            if send.epoch >= self.num_epochs:
                raise ScheduleError(
                    f"send at epoch {send.epoch} beyond horizon {self.num_epochs}")

    # ------------------------------------------------------------------
    @property
    def num_sends(self) -> int:
        return len(self.sends)

    @property
    def finish_epoch(self) -> int:
        """Last epoch with any activity (−1 for an empty schedule)."""
        return max((s.epoch for s in self.sends), default=-1)

    def sends_by_epoch(self) -> dict[int, list[Send]]:
        out: dict[int, list[Send]] = {}
        for send in self.sends:
            out.setdefault(send.epoch, []).append(send)
        return out

    def sends_on_link(self, src: int, dst: int) -> list[Send]:
        return [s for s in self.sends if s.src == src and s.dst == dst]

    def links_used(self) -> set[tuple[int, int]]:
        return {s.link for s in self.sends}

    def total_bytes(self) -> float:
        """Total bytes placed on the wire (the paper's 'fewer bytes' metric)."""
        return self.num_sends * self.chunk_bytes

    def finish_time(self, topology: Topology) -> float:
        """Continuous completion estimate: latest α + β·S arrival.

        A send starting at epoch k on link (i, j) completes at
        ``k·τ + S/capacity + α`` — the α–β model the paper uses to report
        collective times. On a pruned schedule the last arrival *is* the
        collective finish (every send serves a demand).
        """
        finish = 0.0
        for send in self.sends:
            link = topology.link(send.src, send.dst)
            finish = max(finish,
                         send.epoch * self.tau
                         + link.transfer_time(self.chunk_bytes))
        return finish

    def shifted(self, epoch_offset: int) -> "Schedule":
        """The same schedule displaced in time (used to stitch A* rounds)."""
        if epoch_offset < 0:
            raise ScheduleError("epoch offset must be non-negative")
        return Schedule(
            sends=[Send(epoch=s.epoch + epoch_offset, source=s.source,
                        chunk=s.chunk, src=s.src, dst=s.dst)
                   for s in self.sends],
            tau=self.tau, chunk_bytes=self.chunk_bytes,
            num_epochs=self.num_epochs + epoch_offset)

    def relabel(self, perm) -> "Schedule":
        """The same schedule on a renamed fabric: every node id mapped
        through ``perm`` (old id -> new id). Chunk ids and epochs are
        untouched — used to translate results solved on a canonical
        (symmetry-relabeled) instance back to the caller's node ids."""
        return Schedule(
            sends=[Send(epoch=s.epoch, source=perm[s.source],
                        chunk=s.chunk, src=perm[s.src], dst=perm[s.dst])
                   for s in self.sends],
            tau=self.tau, chunk_bytes=self.chunk_bytes,
            num_epochs=self.num_epochs)

    def merged_with(self, other: "Schedule") -> "Schedule":
        if abs(other.tau - self.tau) > 1e-15:
            raise ScheduleError("cannot merge schedules with different τ")
        if abs(other.chunk_bytes - self.chunk_bytes) > 1e-9:
            raise ScheduleError("cannot merge schedules with different chunks")
        return Schedule(sends=self.sends + other.sends, tau=self.tau,
                        chunk_bytes=self.chunk_bytes,
                        num_epochs=max(self.num_epochs, other.num_epochs))

    def to_dict(self) -> dict:
        """JSON-ready representation; sends sorted for stable output."""
        return {
            "kind": "integral",
            "tau": self.tau,
            "chunk_bytes": self.chunk_bytes,
            "num_epochs": self.num_epochs,
            "sends": [[s.epoch, s.source, s.chunk, s.src, s.dst]
                      for s in sorted(self.sends)],
        }

    @staticmethod
    def from_dict(data: dict) -> "Schedule":
        """Parse the :meth:`to_dict` representation."""
        try:
            sends = [Send(epoch=int(k), source=int(s), chunk=int(c),
                          src=int(i), dst=int(j))
                     for k, s, c, i, j in data["sends"]]
            return Schedule(sends=sends, tau=float(data["tau"]),
                            chunk_bytes=float(data["chunk_bytes"]),
                            num_epochs=int(data["num_epochs"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ScheduleError(f"malformed schedule document: {exc}") from exc

    def __repr__(self) -> str:
        return (f"Schedule(sends={self.num_sends}, "
                f"epochs<={self.num_epochs}, tau={self.tau:g}s)")


@dataclass
class FlowSchedule:
    """A fractional (rate-based) schedule from the LP form.

    ``flows[(commodity, src, dst, epoch)]`` is the chunk *amount* of that
    commodity crossing the link during the epoch; ``reads[(commodity, dst,
    epoch)]`` is the amount the destination consumes at the end of the epoch.
    Commodity keys are whatever the LP used — ``(source, chunk)`` pairs or
    aggregated ``source`` ids.
    """

    flows: dict[tuple, float]
    reads: dict[tuple, float]
    tau: float
    chunk_bytes: float
    num_epochs: int
    tolerance: float = 1e-7

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ScheduleError("tau must be positive")
        self.flows = {k: v for k, v in self.flows.items()
                      if v > self.tolerance}
        self.reads = {k: v for k, v in self.reads.items()
                      if v > self.tolerance}

    @property
    def finish_epoch(self) -> int:
        last_flow = max((k[3] for k in self.flows), default=-1)
        last_read = max((k[2] for k in self.reads), default=-1)
        return max(last_flow, last_read)

    def relabel(self, perm) -> "FlowSchedule":
        """The same fractional schedule on a renamed fabric (see
        :meth:`Schedule.relabel`). Commodity keys relabel their source —
        aggregated int keys through ``perm`` directly, ``(source, chunk)``
        pairs on the source only."""
        def q_map(q):
            return (perm[q[0]], q[1]) if isinstance(q, tuple) else perm[q]

        return FlowSchedule(
            flows={(q_map(q), perm[i], perm[j], k): v
                   for (q, i, j, k), v in self.flows.items()},
            reads={(q_map(q), perm[d], k): v
                   for (q, d, k), v in self.reads.items()},
            tau=self.tau, chunk_bytes=self.chunk_bytes,
            num_epochs=self.num_epochs, tolerance=self.tolerance)

    def link_load(self, src: int, dst: int, epoch: int) -> float:
        return sum(v for (_, i, j, k), v in self.flows.items()
                   if i == src and j == dst and k == epoch)

    def total_bytes(self) -> float:
        return sum(self.flows.values()) * self.chunk_bytes

    def finish_time(self, topology: Topology) -> float:
        """Continuous completion estimate (last α + serialized-β arrival)."""
        finish = 0.0
        loads: dict[tuple[int, int, int], float] = {}
        for (_, i, j, k), amount in self.flows.items():
            loads[(i, j, k)] = loads.get((i, j, k), 0.0) + amount
        for (i, j, k), amount in loads.items():
            link = topology.link(i, j)
            finish = max(finish, k * self.tau
                         + link.transfer_time(amount * self.chunk_bytes))
        return finish

    def delivered(self, commodity, dst: int) -> float:
        return sum(v for (q, d, _), v in self.reads.items()
                   if q == commodity and d == dst)

    def to_dict(self) -> dict:
        """JSON-ready representation.

        Commodity keys are ``(source, chunk)`` tuples or bare source ids
        (the aggregated LP); both survive the round-trip — tuples become
        two-element lists, ints stay ints.
        """
        def q_out(q):
            return list(q) if isinstance(q, tuple) else q

        return {
            "kind": "flow",
            "tau": self.tau,
            "chunk_bytes": self.chunk_bytes,
            "num_epochs": self.num_epochs,
            "tolerance": self.tolerance,
            "flows": sorted(
                [q_out(q), i, j, k, v]
                for (q, i, j, k), v in self.flows.items()),
            "reads": sorted(
                [q_out(q), d, k, v]
                for (q, d, k), v in self.reads.items()),
        }

    @staticmethod
    def from_dict(data: dict) -> "FlowSchedule":
        """Parse the :meth:`to_dict` representation."""
        def q_in(q):
            return tuple(int(x) for x in q) if isinstance(q, list) else int(q)

        try:
            flows = {(q_in(q), int(i), int(j), int(k)): float(v)
                     for q, i, j, k, v in data["flows"]}
            reads = {(q_in(q), int(d), int(k)): float(v)
                     for q, d, k, v in data["reads"]}
            return FlowSchedule(
                flows=flows, reads=reads, tau=float(data["tau"]),
                chunk_bytes=float(data["chunk_bytes"]),
                num_epochs=int(data["num_epochs"]),
                tolerance=float(data.get("tolerance", 1e-7)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ScheduleError(f"malformed schedule document: {exc}") from exc

    def __repr__(self) -> str:
        return (f"FlowSchedule(flows={len(self.flows)}, "
                f"epochs<={self.num_epochs}, tau={self.tau:g}s)")
