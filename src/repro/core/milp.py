"""The general TE-CCL formulation (§3.1): a MILP with copy and buffering.

Decision variables (per commodity ``q = (source, chunk)``):

* ``F[q, i, j, k] ∈ {0,1}`` — chunk crosses link (i, j) starting at epoch k;
* ``B[q, n, k] ∈ {0,1}`` — chunk sits in GPU n's buffer at the start of k;
* ``R[q, d, k] ∈ [0,1]`` — chunk has been read by destination d by epoch k.

Integrality of ``F``/``B`` is what makes copy sound (Figure 3: fractional
chunks plus copy lets the model double-count halves). The flow-conservation-
with-copy constraint ``B[k] + arrivals(k) ≥ out(k+1)`` appears here in the
equivalent per-edge form ``F[·,k] ≤ B[·,k]`` because the buffer recurrence
already folds arrivals into the next buffer state (see DESIGN.md).

The builder also implements the paper's optional machinery: zero-buffer
switches with or without copy (§3.1), hyper-edge switches (Appendix C),
limited buffers (Appendix B), fastest-link epochs with windowed capacity
(Appendix F), time-varying capacity and per-triple priorities (§5), and a
reachability-based variable elimination that preserves optimality.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.collectives.demand import Demand
from repro.core.config import SwitchModel, TecclConfig
from repro.core.epochs import (EpochPlan, build_epoch_plan,
                               earliest_arrival_epochs, next_horizon,
                               path_based_epoch_bound)
from repro.core.postprocess import prune_sends
from repro.core.schedule import Schedule, Send
from repro.errors import InfeasibleError, ModelError
from repro.obs.trace import event as _obs_event
from repro.obs.trace import rspan as _obs_rspan
from repro.obs.trace import span as _obs_span
from repro.solver import (Model, Sense, SolveResult, VarType, quicksum)
from repro.topology.topology import Topology
from repro.topology.transforms import HyperEdgeGroup

_EPS = 1e-9

#: sentinel "unreachable" epoch, far beyond any horizon
_FAR = 1 << 30

Commodity = tuple[int, int]


def _ranges_take(left: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices covering ``[left[i], left[i] + counts[i])`` for every i.

    The standard vectorized expansion of per-row ranges — used to join flow
    variables onto the constraint rows they arrive in without Python loops.
    """
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    stops = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(stops - counts,
                                                           counts)
    return np.repeat(left, counts) + offsets


@dataclass
class MilpProblem:
    """A built (not yet solved) instance; A* reuses this to add its terms.

    The ``*_vars`` dicts map formulation keys to solver columns: values are
    :class:`repro.solver.Variable` handles on the expression path and raw
    ``int`` column indices on the bulk (COO) path; both are accepted by
    :meth:`repro.solver.SolveResult.value`.
    """

    model: Model
    plan: EpochPlan
    topology: Topology
    demand: Demand
    config: TecclConfig
    f_vars: dict[tuple, object] = field(default_factory=dict)
    b_vars: dict[tuple, object] = field(default_factory=dict)
    r_vars: dict[tuple, object] = field(default_factory=dict)
    #: earliest buffer epoch per (commodity, node)
    earliest: dict[tuple[Commodity, int], int] = field(default_factory=dict)
    #: which construction path built this model ("expr" or "coo")
    construction: str = "expr"


@dataclass
class MilpOutcome:
    """A solved instance: the pruned schedule plus solver diagnostics."""

    schedule: Schedule
    raw_schedule: Schedule
    result: SolveResult
    plan: EpochPlan
    delivered_epoch: dict[tuple[int, int, int], int]
    finish_time: float

    @property
    def solve_time(self) -> float:
        return self.result.solve_time


def _commodity_earliest(topology: Topology, plan: EpochPlan,
                        holders: dict[Commodity, list[tuple[int, int]]],
                        tighten: bool = True,
                        ) -> dict[tuple[Commodity, int], int]:
    """Multi-source earliest-arrival (in buffer epochs) per commodity.

    With ``tighten=False`` only reachability is kept (every reachable node
    gets bound 0) — the dense model of a naive implementation, used by the
    variable-elimination ablation bench.
    """
    per_node = earliest_arrival_epochs(topology, plan)
    earliest: dict[tuple[Commodity, int], int] = {}
    for q, starts in holders.items():
        for node in topology.nodes:
            best = min((offset + per_node[h].get(node, 1 << 30)
                        for h, offset in starts), default=1 << 30)
            if best < (1 << 30):
                earliest[(q, node)] = best if tighten else 0
    return earliest


class MilpBuilder:
    """Builds the §3.1 MILP for one (topology, demand, horizon) instance.

    A* drives the same builder with per-round state: ``initial_holders``
    overrides where each commodity starts, ``injections`` models chunks that
    arrive mid-horizon from the previous round, and
    ``require_completion=False`` relaxes the final-epoch demand constraint.
    """

    def __init__(self, topology: Topology, demand: Demand,
                 config: TecclConfig, plan: EpochPlan, *,
                 initial_holders: dict[Commodity, set[int]] | None = None,
                 injections: dict[tuple[int, int, int, int], int] | None = None,
                 require_completion: bool = True,
                 allow_overhang: bool = False,
                 hyper_groups: list[HyperEdgeGroup] | None = None,
                 capacity_carry: dict[tuple[int, int, int], int] | None = None,
                 construction: str | None = None):
        demand.validate(topology)
        topology.validate()
        self.topology = topology
        self.demand = demand
        self.config = config
        self.plan = plan
        self.injections = injections or {}
        self.require_completion = require_completion
        self.allow_overhang = allow_overhang
        self.hyper_groups = hyper_groups or []
        #: transmissions still occupying a link from a *previous* horizon
        #: (A* rounds): key (i, j, negative virtual epoch), value chunk count
        self.capacity_carry = capacity_carry or {}
        if config.switch_model is SwitchModel.HYPER_EDGE and topology.switches:
            raise ModelError(
                "hyper-edge mode expects a transformed topology without "
                "switches; use repro.topology.to_hyper_edges first "
                "(the solve facade does this automatically)")
        if config.capacity_fn is not None:
            if any(k > 1 for k in plan.occupancy.values()):
                raise ModelError(
                    "time-varying capacity requires slowest-link epochs "
                    "(per-link occupancy must be 1)")
        self.commodities = demand.commodities()
        if initial_holders is None:
            self.initial_holders = {q: {q[0]} for q in self.commodities}
        else:
            self.initial_holders = initial_holders
        holders = {
            q: ([(h, 0) for h in self.initial_holders.get(q, set())]
                + [(n, k) for (s, c, n, k) in self.injections
                   if (s, c) == q])
            for q in self.commodities}
        self.earliest = _commodity_earliest(topology, plan, holders,
                                            tighten=config.tighten)
        # The A* round models (mid-horizon injections, carried-over capacity,
        # relaxed completion, overhanging sends) stay on the expression path;
        # everything else can take the vectorized bulk path.
        requested = construction or config.solver.construction
        if requested not in ("auto", "coo", "expr"):
            raise ModelError(f"unknown construction {requested!r}")
        eligible = (not self.injections and not self.capacity_carry
                    and self.require_completion and not self.allow_overhang)
        if requested == "coo" and not eligible:
            raise ModelError(
                "construction='coo' does not support A* round models "
                "(injections / capacity carry / relaxed completion); "
                "use 'expr' or 'auto'")
        self.construction = "coo" if (requested != "expr" and eligible) \
            else "expr"

    # ------------------------------------------------------------------
    def build(self) -> MilpProblem:
        with _obs_span("milp.build", construction=self.construction,
                       epochs=self.plan.num_epochs,
                       commodities=len(self.commodities)):
            self._precheck_horizon()
            model = Model("teccl-milp", sense=Sense.MAXIMIZE)
            problem = MilpProblem(model=model, plan=self.plan,
                                  topology=self.topology, demand=self.demand,
                                  config=self.config, earliest=self.earliest,
                                  construction=self.construction)
            if self.construction == "coo":
                self._build_coo(problem)
                return problem
            for fam, step in (
                    ("vars", self._make_flow_vars),
                    ("buffer_vars", self._make_buffer_vars),
                    ("buffer_recurrence", self._buffer_recurrence),
                    ("availability", self._availability),
                    ("switch_constraints", self._switch_constraints),
                    ("capacity", self._capacity),
                    ("destination", self._destination),
                    ("buffer_limit", self._buffer_limit),
                    ("hyper_edge_limits", self._hyper_edge_limits),
                    ("objective", self._objective)):
                with _obs_span(f"milp.family.{fam}"):
                    step(problem)
            return problem

    def _precheck_horizon(self) -> None:
        if not self.require_completion:
            return
        K = self.plan.num_epochs
        for s, c in self.commodities:
            for d in self.demand.destinations(s, c):
                earliest = self.earliest.get(((s, c), d))
                if earliest is None:
                    raise ModelError(
                        f"destination {d} unreachable for commodity ({s},{c})")
                if earliest > K:
                    raise InfeasibleError(
                        f"horizon K={K} below the earliest possible arrival "
                        f"({earliest} epochs) for ({s},{c})->{d}",
                        status="horizon")

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def _f_exists(self, q: Commodity, i: int, j: int, k: int) -> bool:
        earliest = self.earliest.get((q, i))
        if earliest is None or k < earliest:
            return False
        offset = self.plan.arrival_offset(i, j)
        arrival = k + offset + 1
        K = self.plan.num_epochs
        if self.topology.is_switch(j):
            # the switch must forward at epoch `arrival`, which must exist
            return arrival <= K - 1
        if self.allow_overhang:
            return k <= K - 1
        return arrival <= K

    def _make_flow_vars(self, problem: MilpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        self._link_epoch_vars: dict[tuple[int, int, int], list] = {}
        for q in self.commodities:
            for (i, j) in self.topology.links:
                for k in range(K):
                    if not self._f_exists(q, i, j, k):
                        continue
                    var = model.add_var(vtype=VarType.BINARY,
                                        name=f"F[{q},{i},{j},{k}]")
                    problem.f_vars[(q, i, j, k)] = var
                    self._link_epoch_vars.setdefault((i, j, k), []).append(var)

    def _make_buffer_vars(self, problem: MilpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            holders = self.initial_holders.get(q, set())
            for n in self.topology.nodes:
                if self.topology.is_switch(n):
                    continue
                earliest = self.earliest.get((q, n))
                if earliest is None:
                    continue
                for k in range(max(0, earliest), K + 1):
                    if k == 0 and n in holders:
                        var = model.add_var(lb=1.0, ub=1.0,
                                            vtype=VarType.BINARY,
                                            name=f"B[{q},{n},0]")
                    elif k == 0:
                        # nothing has arrived yet: non-holders start empty
                        # (reachable only when tightening is disabled)
                        var = model.add_var(lb=0.0, ub=0.0,
                                            vtype=VarType.BINARY,
                                            name=f"B[{q},{n},0]")
                    else:
                        var = model.add_var(vtype=VarType.BINARY,
                                            name=f"B[{q},{n},{k}]")
                    problem.b_vars[(q, n, k)] = var

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def _arrivals_expr(self, problem: MilpProblem, q: Commodity, n: int,
                       buffer_epoch: int):
        """Sends (plus injections) that appear in n's buffer at that epoch."""
        terms = []
        for link in self.topology.in_edges(n):
            send_epoch = buffer_epoch - 1 - self.plan.arrival_offset(
                link.src, link.dst)
            var = problem.f_vars.get((q, link.src, link.dst, send_epoch))
            if var is not None:
                terms.append(var)
        constant = self.injections.get((q[0], q[1], n, buffer_epoch), 0)
        expr = quicksum(terms)
        if constant:
            expr = expr + constant
        return expr

    def _buffer_recurrence(self, problem: MilpProblem) -> None:
        model = problem.model
        for (q, n, k), var in problem.b_vars.items():
            if k == 0:
                continue
            prev = problem.b_vars.get((q, n, k - 1), 0.0)
            arrivals = self._arrivals_expr(problem, q, n, k)
            model.add_constr(var.to_expr() <= arrivals + prev,
                             name=f"buf[{q},{n},{k}]")

    def _availability(self, problem: MilpProblem) -> None:
        """Flow conservation with copy at GPUs: send only what you hold."""
        model = problem.model
        sf = self.config.store_and_forward
        for (q, i, j, k), f in problem.f_vars.items():
            if self.topology.is_switch(i):
                continue  # handled by _switch_constraints
            holds_initially = i in self.initial_holders.get(q, set())
            if sf or holds_initially:
                b = problem.b_vars.get((q, i, k))
                if b is None:
                    model.add_constr(f.to_expr() <= 0.0)
                else:
                    model.add_constr(f <= b, name=f"avail[{q},{i},{j},{k}]")
            else:
                # Figure 9 ablation: relay immediately, like a switch.
                arrivals = self._arrivals_expr(problem, q, i, k)
                model.add_constr(f.to_expr() <= arrivals,
                                 name=f"relay[{q},{i},{j},{k}]")

    def _switch_constraints(self, problem: MilpProblem) -> None:
        model = problem.model
        copy_ok = self.config.switch_model is SwitchModel.COPY
        K = self.plan.num_epochs
        for sw in self.topology.switches:
            out_links = self.topology.out_edges(sw)
            for q in self.commodities:
                for k in range(K):
                    outs = [problem.f_vars[(q, sw, l.dst, k)]
                            for l in out_links
                            if (q, sw, l.dst, k) in problem.f_vars]
                    if not outs:
                        continue
                    arrivals = self._arrivals_expr(problem, q, sw, k)
                    if copy_ok:
                        for f in outs:
                            model.add_constr(f.to_expr() <= arrivals,
                                             name=f"sw[{q},{sw},{k}]")
                    else:
                        model.add_constr(quicksum(outs) <= arrivals,
                                         name=f"sw[{q},{sw},{k}]")

    def _capacity(self, problem: MilpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        tau = self.plan.tau
        for (i, j) in self.topology.links:
            kappa = self.plan.occupancy[(i, j)]
            for k in range(K):
                if self.config.capacity_fn is not None:
                    cap = (self.config.capacity_fn(i, j, k) * tau
                           / self.config.chunk_bytes)
                else:
                    cap = self.plan.cap_chunks[(i, j)]
                if kappa == 1:
                    vars_k = self._link_epoch_vars.get((i, j, k), [])
                    if vars_k:
                        model.add_constr(
                            quicksum(vars_k) <= math.floor(cap + _EPS),
                            name=f"cap[{i},{j},{k}]")
                else:
                    window: list = []
                    carry = 0
                    for kk in range(k - kappa + 1, k + 1):
                        if kk < 0:
                            carry += self.capacity_carry.get((i, j, kk), 0)
                        else:
                            window.extend(
                                self._link_epoch_vars.get((i, j, kk), []))
                    if window:
                        limit = max(1, math.floor(kappa * cap + _EPS))
                        model.add_constr(quicksum(window) <= limit - carry,
                                         name=f"capw[{i},{j},{k}]")

    def _destination(self, problem: MilpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        for s, c in self.commodities:
            q = (s, c)
            for d in self.demand.destinations(s, c):
                earliest = self.earliest.get((q, d), 1 << 30)
                first_k = max(0, earliest - 1)
                for k in range(first_k, K):
                    lb = 1.0 if (self.require_completion and k == K - 1) else 0.0
                    r = model.add_var(lb=lb, ub=1.0,
                                      name=f"R[{q},{d},{k}]")
                    problem.r_vars[(q, d, k)] = r
                    b_next = problem.b_vars.get((q, d, k + 1))
                    if b_next is None:
                        model.add_constr(r.to_expr() <= 0.0)
                    else:
                        model.add_constr(r <= b_next,
                                         name=f"read[{q},{d},{k}]")

    def _buffer_limit(self, problem: MilpProblem) -> None:
        limit = self.config.buffer_limit_chunks
        if limit is None:
            return
        model = problem.model
        K = self.plan.num_epochs
        for n in self.topology.gpus:
            for k in range(K + 1):
                relay_bufs = []
                for q in self.commodities:
                    # A GPU's own input/output buffers are exempt: sources
                    # hold their data and destinations must keep theirs
                    # (they store it anyway, §3.1); the limit governs the
                    # relay buffer.
                    if n in self.initial_holders.get(q, set()):
                        continue
                    if n in self.demand.destinations(*q):
                        continue
                    var = problem.b_vars.get((q, n, k))
                    if var is not None:
                        relay_bufs.append(var)
                if relay_bufs:
                    model.add_constr(quicksum(relay_bufs) <= limit,
                                     name=f"buflim[{n},{k}]")

    def _hyper_edge_limits(self, problem: MilpProblem) -> None:
        if not self.hyper_groups:
            return
        model = problem.model
        K = self.plan.num_epochs
        for group in self.hyper_groups:
            edges = group.edges
            out_by_node: dict[int, list[tuple[int, int]]] = {}
            in_by_node: dict[int, list[tuple[int, int]]] = {}
            for (i, j) in edges:
                out_by_node.setdefault(i, []).append((i, j))
                in_by_node.setdefault(j, []).append((i, j))
            for k in range(K):
                total = []
                for (i, j) in edges:
                    total.extend(self._link_epoch_vars.get((i, j, k), []))
                if total:
                    model.add_constr(quicksum(total) <= group.usage_limit,
                                     name=f"hyper[{group.switch},{k}]")
                for node, node_edges in out_by_node.items():
                    vars_out = []
                    for (i, j) in node_edges:
                        vars_out.extend(self._link_epoch_vars.get((i, j, k), []))
                    if vars_out:
                        model.add_constr(quicksum(vars_out) <= 1,
                                         name=f"hout[{group.switch},{node},{k}]")
                for node, node_edges in in_by_node.items():
                    vars_in = []
                    for (i, j) in node_edges:
                        vars_in.extend(self._link_epoch_vars.get((i, j, k), []))
                    if vars_in:
                        model.add_constr(quicksum(vars_in) <= 1,
                                         name=f"hin[{group.switch},{node},{k}]")

    def _objective(self, problem: MilpProblem) -> None:
        terms = []
        for ((s, c), d, k), r in problem.r_vars.items():
            weight = self.config.weight(s, c, d)
            terms.append(r * (weight / (k + 1)))
        problem.model.set_objective(quicksum(terms))

    # ------------------------------------------------------------------
    # vectorized (COO) construction — same model, no per-term Python objects
    # ------------------------------------------------------------------
    def _capacity_value(self, i: int, j: int, k: int) -> float:
        if self.config.capacity_fn is not None:
            return (self.config.capacity_fn(i, j, k) * self.plan.tau
                    / self.config.chunk_bytes)
        return self.plan.cap_chunks[(i, j)]

    def _build_coo(self, problem: MilpProblem) -> None:
        """Emit the §3.1 MILP as COO blocks via NumPy index arithmetic.

        Variable gating, bounds, and constraint-row ordering replicate the
        expression path exactly (``tests/test_model_equivalence.py`` holds
        the two compiled matrices bit-identical); only the banded families'
        Python-object churn is gone.
        """
        model = problem.model
        topo, plan, K = self.topology, self.plan, self.plan.num_epochs
        links = list(topo.links)
        E = len(links)
        src = np.fromiter((i for i, _ in links), dtype=np.int64, count=E)
        dst = np.fromiter((j for _, j in links), dtype=np.int64, count=E)
        offs = np.fromiter((plan.arrival_offset(i, j) for i, j in links),
                           dtype=np.int64, count=E)
        switch_dst = np.fromiter((topo.is_switch(j) for _, j in links),
                                 dtype=bool, count=E)
        gpus = list(topo.gpus)
        G = len(gpus)
        gpu_ids = np.asarray(gpus, dtype=np.int64)
        num_nodes = len(topo.nodes)
        node_pos = np.full(num_nodes, -1, dtype=np.int64)
        node_pos[gpu_ids] = np.arange(G)
        k_send = np.arange(K, dtype=np.int64)
        sf = self.config.store_and_forward
        # a send into a switch must be forwardable at its arrival epoch
        arrival_cap = np.where(switch_dst, K - 1, K)

        # -- flow variables, all commodities first (== _make_flow_vars)
        f_grids = []
        base = 0
        for q in self.commodities:
            earliest = np.full(num_nodes, _FAR, dtype=np.int64)
            for node in topo.nodes:
                found = self.earliest.get((q, node))
                if found is not None:
                    earliest[node] = found
            f_mask = ((earliest[src][:, None] <= k_send[None, :])
                      & (k_send[None, :] + offs[:, None] + 1
                         <= arrival_cap[:, None]))
            f_idx = np.full((E, K), -1, dtype=np.int64)
            nf = int(np.count_nonzero(f_mask))
            f_idx[f_mask] = base + np.arange(nf)
            base += nf
            f_grids.append((earliest, f_mask, f_idx))
        model.add_var_array(base, vtype=VarType.BINARY, name="F")

        # -- buffer variables (== _make_buffer_vars): B[q,n,0] is fixed to
        #    1 for initial holders and 0 otherwise
        b_grids = []
        b_lb_parts, b_ub_parts = [], []
        b_base = base
        for q, (earliest, _f_mask, _f_idx) in zip(self.commodities, f_grids):
            start = np.maximum(earliest[gpu_ids], 0)
            b_mask = np.arange(K + 1)[None, :] >= start[:, None]
            b_idx = np.full((G, K + 1), -1, dtype=np.int64)
            nb = int(np.count_nonzero(b_mask))
            b_idx[b_mask] = base + np.arange(nb)
            base += nb
            holder = np.zeros(G, dtype=bool)
            for n in self.initial_holders.get(q, set()):
                if node_pos[n] >= 0:  # switch holders never buffer
                    holder[int(node_pos[n])] = True
            lb = np.zeros((G, K + 1))
            ub = np.ones((G, K + 1))
            lb[:, 0] = np.where(holder, 1.0, 0.0)
            ub[:, 0] = np.where(holder, 1.0, 0.0)
            b_lb_parts.append(lb[b_mask])
            b_ub_parts.append(ub[b_mask])
            b_grids.append((b_mask, b_idx))
        model.add_var_array(
            base - b_base,
            lb=(np.concatenate(b_lb_parts) if b_lb_parts
                else np.empty(0)),
            ub=(np.concatenate(b_ub_parts) if b_ub_parts
                else np.empty(0)),
            vtype=VarType.BINARY, name="B")

        # -- read variables (allocated by _destination on the legacy path;
        #    indices are contiguous in (q, d, k) order either way)
        r_meta = []  # (q, d, first_k, index array)
        r_lb_parts = []
        r_base = base
        for q in self.commodities:
            for d in self.demand.destinations(*q):
                first_k = max(0, self.earliest.get((q, d), _FAR) - 1)
                count = max(0, K - first_k)
                idx = base + np.arange(count)
                base += count
                lb = np.zeros(count)
                if count:  # require_completion is always True on this path
                    lb[-1] = 1.0
                r_lb_parts.append(lb)
                r_meta.append((q, d, first_k, idx))
        model.add_var_array(
            base - r_base,
            lb=(np.concatenate(r_lb_parts) if r_lb_parts
                else np.empty(0)),
            ub=1.0, name="R")

        # -- handle dicts for extraction (raw column indices as values)
        for q, (_e, f_mask, f_idx), (b_mask, b_idx) in zip(
                self.commodities, f_grids, b_grids):
            ls, ks = np.nonzero(f_mask)
            problem.f_vars.update(
                ((q, links[l][0], links[l][1], k), v)
                for l, k, v in zip(ls.tolist(), ks.tolist(),
                                   f_idx[f_mask].tolist()))
            ns, ks = np.nonzero(b_mask)
            problem.b_vars.update(
                ((q, gpus[n], k), v)
                for n, k, v in zip(ns.tolist(), ks.tolist(),
                                   b_idx[b_mask].tolist()))
        for q, d, first_k, idx in r_meta:
            problem.r_vars.update(
                ((q, d, k), v)
                for k, v in zip(range(first_k, K), idx.tolist()))

        with _obs_span("milp.family.buffer_recurrence"):
            self._coo_buffer_recurrence(model, f_grids, b_grids, src, dst,
                                        offs, node_pos, G, K)
        with _obs_span("milp.family.availability"):
            self._coo_availability(model, f_grids, b_grids, src, dst, offs,
                                   node_pos, num_nodes, K, sf)
        with _obs_span("milp.family.switch_constraints"):
            self._coo_switch_constraints(model, f_grids, links, src, dst,
                                         offs, K)
        with _obs_span("milp.family.capacity"):
            self._coo_capacity(model, f_grids, links, E, K)
        with _obs_span("milp.family.destination"):
            self._coo_destination(model, r_meta, b_grids, node_pos, K)
        with _obs_span("milp.family.buffer_limit"):
            self._coo_buffer_limit(model, b_grids, node_pos, G, K)
        with _obs_span("milp.family.hyper_edge_limits"):
            self._coo_hyper_edge_limits(model, f_grids, links, K)
        with _obs_span("milp.family.objective"):
            self._coo_objective(model, r_meta, K)

    def _coo_buffer_recurrence(self, model, f_grids, b_grids, src, dst, offs,
                               node_pos, G: int, K: int) -> None:
        """``B[k] ≤ arrivals(k) + B[k−1]`` for every buffer var with k ≥ 1."""
        for (q, (_e, f_mask, f_idx)), (b_mask, b_idx) in zip(
                zip(self.commodities, f_grids), b_grids):
            rec_mask = b_mask.copy()
            rec_mask[:, 0] = False
            n_rows = int(np.count_nonzero(rec_mask))
            row_grid = np.full((G, K + 1), -1, dtype=np.int64)
            row_grid[rec_mask] = np.arange(n_rows)
            rows = [row_grid[rec_mask]]
            cols = [b_idx[rec_mask]]
            data = [np.ones(n_rows)]
            # B[k-1], where it exists
            prev = rec_mask[:, 1:] & b_mask[:, :-1]
            ns, ks = np.nonzero(prev)
            rows.append(row_grid[ns, ks + 1])
            cols.append(b_idx[ns, ks])
            data.append(-np.ones(len(ns)))
            # arrivals: a send on (i, j) at k' reaches j's buffer at k'+Δ+1
            ls, ks = np.nonzero(f_mask)
            vs = f_idx[f_mask]
            at_gpu = node_pos[dst[ls]] >= 0
            ls, ks, vs = ls[at_gpu], ks[at_gpu], vs[at_gpu]
            target = row_grid[node_pos[dst[ls]], ks + offs[ls] + 1]
            landed = target >= 0
            rows.append(target[landed])
            cols.append(vs[landed])
            data.append(-np.ones(int(landed.sum())))
            model.add_constr_coo(np.concatenate(rows), np.concatenate(cols),
                                 np.concatenate(data), -np.inf, 0.0,
                                 num_rows=n_rows)

    def _coo_availability(self, model, f_grids, b_grids, src, dst, offs,
                          node_pos, num_nodes: int, K: int, sf: bool) -> None:
        """GPU sends need the chunk buffered (or, without store-and-forward,
        arriving) — one row per flow variable leaving a GPU."""
        for (q, (_e, f_mask, f_idx)), (b_mask, b_idx) in zip(
                zip(self.commodities, f_grids), b_grids):
            ls, ks = np.nonzero(f_mask)
            vs = f_idx[f_mask]
            from_gpu = node_pos[src[ls]] >= 0
            lo, ko, vo = ls[from_gpu], ks[from_gpu], vs[from_gpu]
            n_rows = len(vo)
            row_ids = np.arange(n_rows)
            rows = [row_ids]
            cols = [vo]
            data = [np.ones(n_rows)]
            held = np.zeros(num_nodes, dtype=bool)
            for n in self.initial_holders.get(q, set()):
                held[n] = True
            avail = np.full(n_rows, True) if sf else held[src[lo]]
            if avail.any():
                bb = b_idx[node_pos[src[lo[avail]]], ko[avail]]
                okb = bb >= 0
                rows.append(row_ids[avail][okb])
                cols.append(bb[okb])
                data.append(-np.ones(int(okb.sum())))
            relay = ~avail
            if relay.any():
                # Figure 9 ablation: forward only what arrives this epoch
                land_gpu = node_pos[dst[ls]] >= 0
                key_in = (node_pos[dst[ls[land_gpu]]] * (K + 1)
                          + ks[land_gpu] + offs[ls[land_gpu]] + 1)
                order = np.argsort(key_in, kind="stable")
                sorted_key = key_in[order]
                sorted_col = vs[land_gpu][order]
                key_out = node_pos[src[lo[relay]]] * (K + 1) + ko[relay]
                left = np.searchsorted(sorted_key, key_out, "left")
                counts = np.searchsorted(sorted_key, key_out, "right") - left
                take = _ranges_take(left, counts)
                rows.append(np.repeat(row_ids[relay], counts))
                cols.append(sorted_col[take])
                data.append(-np.ones(len(take)))
            model.add_constr_coo(np.concatenate(rows), np.concatenate(cols),
                                 np.concatenate(data), -np.inf, 0.0,
                                 num_rows=n_rows)

    def _coo_switch_constraints(self, model, f_grids, links, src, dst, offs,
                                K: int) -> None:
        """Zero-buffer switches: out(k+1) bounded by in(k), with or without
        copy; row order matches the nested (switch, commodity, epoch) loops
        of the expression path."""
        switches = list(self.topology.switches)
        if not switches:
            return
        copy_ok = self.config.switch_model is SwitchModel.COPY
        link_pos = {link: l for l, link in enumerate(links)}
        for sw in switches:
            out_rank = np.full(len(links), 1 << 20, dtype=np.int64)
            for rank, link in enumerate(self.topology.out_edges(sw)):
                out_rank[link_pos[(sw, link.dst)]] = rank
            for q, (_e, f_mask, f_idx) in zip(self.commodities, f_grids):
                ls, ks = np.nonzero(f_mask)
                vs = f_idx[f_mask]
                souts = src[ls] == sw
                lo, ko, vo = ls[souts], ks[souts], vs[souts]
                if not len(vo):
                    continue
                order = np.lexsort((out_rank[lo], ko))
                lo, ko, vo = lo[order], ko[order], vo[order]
                ins = dst[ls] == sw
                key_in = ks[ins] + offs[ls[ins]] + 1
                order_in = np.argsort(key_in, kind="stable")
                sorted_key = key_in[order_in]
                sorted_col = vs[ins][order_in]
                if copy_ok:
                    n_rows = len(vo)
                    row_of_out = np.arange(n_rows)
                    row_key = ko
                else:
                    epochs = np.unique(ko)
                    n_rows = len(epochs)
                    row_map = np.full(K, -1, dtype=np.int64)
                    row_map[epochs] = np.arange(n_rows)
                    row_of_out = row_map[ko]
                    row_key = epochs
                left = np.searchsorted(sorted_key, row_key, "left")
                counts = np.searchsorted(sorted_key, row_key, "right") - left
                take = _ranges_take(left, counts)
                rows = np.concatenate([row_of_out,
                                       np.repeat(np.arange(n_rows), counts)])
                cols = np.concatenate([vo, sorted_col[take]])
                data = np.concatenate([np.ones(len(vo)),
                                       -np.ones(len(take))])
                model.add_constr_coo(rows, cols, data, -np.inf, 0.0,
                                     num_rows=n_rows)

    def _coo_capacity(self, model, f_grids, links, E: int, K: int) -> None:
        """Per-link capacity, windowed over κ epochs where occupancy > 1."""
        f_idx_all = np.stack([grid[2] for grid in f_grids])  # (Q, E, K)
        any_f = (f_idx_all >= 0).any(axis=0)
        row_parts, col_parts, uppers = [], [], []
        row_counter = 0
        for l, (i, j) in enumerate(links):
            kappa = self.plan.occupancy[(i, j)]
            sel = f_idx_all[:, l, :] >= 0  # (Q, K)
            if not sel.any():
                continue
            qs, ks = np.nonzero(sel)
            vs = f_idx_all[:, l, :][sel]
            if kappa == 1:
                k_idx = np.nonzero(any_f[l])[0]
                row_map = np.full(K, -1, dtype=np.int64)
                row_map[k_idx] = row_counter + np.arange(len(k_idx))
                row_parts.append(row_map[ks])
                col_parts.append(vs)
                uppers.extend(
                    float(math.floor(self._capacity_value(i, j, int(k))
                                     + _EPS))
                    for k in k_idx)
            else:
                # a send at k' occupies the wire through k' + κ − 1
                present = np.zeros(K, dtype=bool)
                for shift in range(kappa):
                    present[shift:] |= any_f[l][:K - shift]
                k_idx = np.nonzero(present)[0]
                row_map = np.full(K, -1, dtype=np.int64)
                row_map[k_idx] = row_counter + np.arange(len(k_idx))
                span = (ks[:, None] + np.arange(kappa)[None, :]).ravel()
                span_v = np.repeat(vs, kappa)
                inside = span <= K - 1
                row_parts.append(row_map[span[inside]])
                col_parts.append(span_v[inside])
                uppers.extend(
                    float(max(1, math.floor(
                        kappa * self._capacity_value(i, j, int(k)) + _EPS)))
                    for k in k_idx)
            row_counter += len(k_idx)
        if row_counter:
            model.add_constr_coo(np.concatenate(row_parts),
                                 np.concatenate(col_parts),
                                 np.ones(sum(len(p) for p in col_parts)),
                                 -np.inf, np.asarray(uppers),
                                 num_rows=row_counter)

    def _coo_destination(self, model, r_meta, b_grids, node_pos, K: int,
                         ) -> None:
        """``R[q,d,k] ≤ B[q,d,k+1]`` — read only once the chunk is there."""
        grid_of = {q: grid for q, grid in zip(self.commodities, b_grids)}
        rows, cols, data = [], [], []
        row = 0
        for q, d, first_k, idx in r_meta:
            count = len(idx)
            row_ids = row + np.arange(count)
            rows.append(row_ids)
            cols.append(idx)
            data.append(np.ones(count))
            _b_mask, b_idx = grid_of[q]
            bb = b_idx[int(node_pos[d]), first_k + 1:K + 1]
            okb = bb >= 0
            rows.append(row_ids[okb])
            cols.append(bb[okb])
            data.append(-np.ones(int(okb.sum())))
            row += count
        model.add_constr_coo(np.concatenate(rows), np.concatenate(cols),
                             np.concatenate(data), -np.inf, 0.0,
                             num_rows=row)

    def _coo_buffer_limit(self, model, b_grids, node_pos, G: int, K: int,
                          ) -> None:
        limit = self.config.buffer_limit_chunks
        if limit is None:
            return
        present = np.zeros(G * (K + 1), dtype=bool)
        flat_parts, col_parts = [], []
        for q, (b_mask, b_idx) in zip(self.commodities, b_grids):
            keep = b_mask.copy()
            # sources hold their data and destinations must keep theirs;
            # the limit governs the relay buffer only
            for n in self.initial_holders.get(q, set()):
                if node_pos[n] >= 0:
                    keep[int(node_pos[n]), :] = False
            for n in self.demand.destinations(*q):
                if node_pos[n] >= 0:
                    keep[int(node_pos[n]), :] = False
            ns, ks = np.nonzero(keep)
            flat = ns * (K + 1) + ks
            present[flat] = True
            flat_parts.append(flat)
            col_parts.append(b_idx[keep])
        row_of = np.cumsum(present) - 1
        rows = np.concatenate([row_of[flat] for flat in flat_parts])
        cols = np.concatenate(col_parts)
        model.add_constr_coo(rows, cols, np.ones(len(rows)), -np.inf,
                             float(limit), num_rows=int(present.sum()))

    def _coo_hyper_edge_limits(self, model, f_grids, links, K: int) -> None:
        if not self.hyper_groups:
            return
        f_idx_all = np.stack([grid[2] for grid in f_grids])  # (Q, E, K)
        link_pos = {link: l for l, link in enumerate(links)}

        def cols_at(edge: tuple[int, int], k: int) -> np.ndarray:
            column = f_idx_all[:, link_pos[edge], k]
            return column[column >= 0]

        rows, cols, uppers = [], [], []
        row = 0
        for group in self.hyper_groups:
            edges = group.edges
            out_by_node: dict[int, list[tuple[int, int]]] = {}
            in_by_node: dict[int, list[tuple[int, int]]] = {}
            for (i, j) in edges:
                out_by_node.setdefault(i, []).append((i, j))
                in_by_node.setdefault(j, []).append((i, j))
            for k in range(K):
                total = [cols_at(edge, k) for edge in edges]
                flat = np.concatenate(total) if total else np.empty(0, int)
                if len(flat):
                    cols.append(flat)
                    rows.append(np.full(len(flat), row))
                    uppers.append(float(group.usage_limit))
                    row += 1
                for node_edges in out_by_node.values():
                    flat = np.concatenate(
                        [cols_at(edge, k) for edge in node_edges])
                    if len(flat):
                        cols.append(flat)
                        rows.append(np.full(len(flat), row))
                        uppers.append(1.0)
                        row += 1
                for node_edges in in_by_node.values():
                    flat = np.concatenate(
                        [cols_at(edge, k) for edge in node_edges])
                    if len(flat):
                        cols.append(flat)
                        rows.append(np.full(len(flat), row))
                        uppers.append(1.0)
                        row += 1
        if row:
            all_cols = np.concatenate(cols)
            model.add_constr_coo(np.concatenate(rows), all_cols,
                                 np.ones(len(all_cols)), -np.inf,
                                 np.asarray(uppers), num_rows=row)

    def _coo_objective(self, model, r_meta, K: int) -> None:
        idx_parts, coef_parts = [], []
        for (s, c), d, first_k, idx in r_meta:
            weight = self.config.weight(s, c, d)
            idx_parts.append(idx)
            coef_parts.append(weight / (np.arange(first_k, K) + 1))
        model.set_objective_array(
            np.concatenate(idx_parts) if idx_parts else np.empty(0, int),
            np.concatenate(coef_parts) if coef_parts else np.empty(0))


# ----------------------------------------------------------------------
# solve facade
# ----------------------------------------------------------------------
def solve_milp(topology: Topology, demand: Demand, config: TecclConfig,
               *, hyper_groups: list[HyperEdgeGroup] | None = None,
               initial_epochs: int | None = None) -> MilpOutcome:
    """Build and solve the general formulation; returns a pruned schedule.

    With an explicit ``num_epochs`` an infeasible horizon raises
    :class:`InfeasibleError`. With the automatic horizon, the path-based
    bound is a heuristic (side constraints such as hyper-edge usage limits
    can invalidate it), so the solve retries with a doubled horizon before
    giving up. ``initial_epochs`` is a warm hint — typically derived from
    a prior solution's achieved extent by
    :func:`repro.failures.repair.replan` — clamped to the path bound (a
    hint may only shrink the model) and escalated back to the bound, then
    doubled, if it undershoots.
    """
    auto = config.num_epochs is None
    bound = None
    if auto:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        bound = path_based_epoch_bound(topology, demand, probe)
        num_epochs = bound
        if initial_epochs is not None:
            # A warm hint may only *shrink* the model: its estimates can
            # overshoot the grid, and the path bound is a sound ceiling.
            num_epochs = max(2, min(initial_epochs, bound))
    else:
        num_epochs = config.num_epochs
    attempts = 3 if auto else 1
    last_error: InfeasibleError | None = None
    for attempt in range(1, attempts + 1):
        plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
        try:
            builder = MilpBuilder(topology, demand, config, plan,
                                  hyper_groups=hyper_groups)
            start = time.perf_counter()
            problem = builder.build()
        except InfeasibleError as err:
            # A horizon below the earliest arrival (possible when a warm
            # hint undershoots) is just an infeasible attempt: escalate.
            last_error = err
            num_epochs = next_horizon(num_epochs, bound)
            continue
        build_time = time.perf_counter() - start
        cuts = _maybe_add_symmetry_cuts(problem, topology, demand, config)
        result = problem.model.solve(config.solver)
        result.stats["build_time"] = build_time
        result.stats["construction"] = problem.construction
        result.stats["horizon_attempts"] = attempt
        result.stats["horizon_epochs"] = num_epochs
        if cuts:
            result.stats["symmetry_cuts"] = cuts
        if result.status.has_solution:
            outcome = extract_outcome(problem, result)
            if cuts:
                outcome = _vet_cut_outcome(outcome, topology, demand,
                                           config, plan, hyper_groups)
            return outcome
        from repro.solver import SolveStatus

        if result.status is not SolveStatus.INFEASIBLE:
            result.require_solution()  # raises with the backend message
        last_error = InfeasibleError(
            f"infeasible at horizon K={num_epochs}", status="horizon")
        num_epochs = next_horizon(num_epochs, bound)
    raise last_error


def _maybe_add_symmetry_cuts(problem: MilpProblem, topology: Topology,
                             demand: Demand, config: TecclConfig) -> int:
    """Add lex-leader symmetry cuts to a built MILP when enabled.

    The quotient restriction used for LPs is invalid for integer programs,
    so the MILP path prunes symmetric branches with optimum-preserving
    cuts instead (``repro.core.symmetry.add_symmetry_cuts``). Returns the
    number of cut rows added (0 when symmetry is off, undetected, or
    fails verification).
    """
    from repro.core import symmetry as _symmetry

    if not _symmetry.symmetry_enabled(config.solver,
                                      problem.model.num_vars):
        return 0
    generators = _symmetry.find_generators(topology, demand)
    if not generators:
        return 0
    cuts = _symmetry.add_symmetry_cuts(
        problem.model, generators, problem.model.num_vars,
        problem.f_vars, problem.b_vars, problem.r_vars)
    if cuts:
        # a cut-constrained solve is a symmetry-assisted solve: count it
        # so the alert engine's fallback-rate denominator covers both paths
        _symmetry.note_reduction()
    return cuts


def _vet_cut_outcome(outcome: "MilpOutcome", topology: Topology,
                     demand: Demand, config: TecclConfig, plan: EpochPlan,
                     hyper_groups) -> "MilpOutcome":
    """Replay-vet a schedule solved under symmetry cuts.

    The cuts are optimum-preserving for any verified automorphism, so a
    violation means a verification layer was fooled — rebuild the model
    from scratch without cuts and return that solve instead. Symmetry can
    cost a redundant solve here but never a wrong schedule.
    """
    from repro.core import symmetry as _symmetry
    from repro.simulate import check_schedule

    report = check_schedule(outcome.schedule, topology, demand,
                            outcome.plan, config=config)
    if report.ok:
        outcome.result.stats["symmetry_conformant"] = True
        return outcome
    _symmetry.note_fallback()
    _obs_event("symmetry.fallback", reason="conformance",
               violations=len(report.violations))
    builder = MilpBuilder(topology, demand, config, plan,
                          hyper_groups=hyper_groups)
    problem = builder.build()
    result = problem.model.solve(config.solver)
    result.stats["symmetry_fallback"] = "conformance"
    result.stats["construction"] = problem.construction
    result.require_solution()
    return extract_outcome(problem, result)


def extract_outcome(problem: MilpProblem, result: SolveResult) -> MilpOutcome:
    """Turn a solved MILP into a pruned :class:`Schedule`."""
    with _obs_rspan("milp.extract", construction=problem.construction):
        plan = problem.plan
        sends = []
        for (q, i, j, k), var in problem.f_vars.items():
            if result.value(var) > 0.5:
                sends.append(Send(epoch=k, source=q[0], chunk=q[1],
                                  src=i, dst=j))
        raw = Schedule(sends=sorted(sends), tau=plan.tau,
                       chunk_bytes=plan.chunk_bytes,
                       num_epochs=plan.num_epochs)

        delivered: dict[tuple[int, int, int], int] = {}
        for ((s, c), d, k), r in sorted(problem.r_vars.items(),
                                        key=lambda item: item[0][2]):
            if result.value(r) > 0.5 and (s, c, d) not in delivered:
                delivered[(s, c, d)] = k

        def holds(s: int, c: int, n: int, k: int) -> bool:
            var = problem.b_vars.get(((s, c), n, k))
            return var is not None and result.value(var) > 0.5

        pruned = prune_sends(raw, problem.demand, problem.topology, plan,
                             delivered, buffer_values=holds,
                             store_and_forward=problem.config.store_and_forward)
        return MilpOutcome(schedule=pruned, raw_schedule=raw, result=result,
                           plan=plan, delivered_epoch=delivered,
                           finish_time=pruned.finish_time(problem.topology))
