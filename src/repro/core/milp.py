"""The general TE-CCL formulation (§3.1): a MILP with copy and buffering.

Decision variables (per commodity ``q = (source, chunk)``):

* ``F[q, i, j, k] ∈ {0,1}`` — chunk crosses link (i, j) starting at epoch k;
* ``B[q, n, k] ∈ {0,1}`` — chunk sits in GPU n's buffer at the start of k;
* ``R[q, d, k] ∈ [0,1]`` — chunk has been read by destination d by epoch k.

Integrality of ``F``/``B`` is what makes copy sound (Figure 3: fractional
chunks plus copy lets the model double-count halves). The flow-conservation-
with-copy constraint ``B[k] + arrivals(k) ≥ out(k+1)`` appears here in the
equivalent per-edge form ``F[·,k] ≤ B[·,k]`` because the buffer recurrence
already folds arrivals into the next buffer state (see DESIGN.md).

The builder also implements the paper's optional machinery: zero-buffer
switches with or without copy (§3.1), hyper-edge switches (Appendix C),
limited buffers (Appendix B), fastest-link epochs with windowed capacity
(Appendix F), time-varying capacity and per-triple priorities (§5), and a
reachability-based variable elimination that preserves optimality.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.config import SwitchModel, TecclConfig
from repro.core.epochs import (EpochPlan, build_epoch_plan,
                               earliest_arrival_epochs,
                               path_based_epoch_bound)
from repro.core.postprocess import prune_sends
from repro.core.schedule import Schedule, Send
from repro.errors import InfeasibleError, ModelError
from repro.solver import (Model, Sense, SolveResult, VarType, quicksum)
from repro.topology.topology import Topology
from repro.topology.transforms import HyperEdgeGroup

_EPS = 1e-9

Commodity = tuple[int, int]


@dataclass
class MilpProblem:
    """A built (not yet solved) instance; A* reuses this to add its terms."""

    model: Model
    plan: EpochPlan
    topology: Topology
    demand: Demand
    config: TecclConfig
    f_vars: dict[tuple, object] = field(default_factory=dict)
    b_vars: dict[tuple, object] = field(default_factory=dict)
    r_vars: dict[tuple, object] = field(default_factory=dict)
    #: earliest buffer epoch per (commodity, node)
    earliest: dict[tuple[Commodity, int], int] = field(default_factory=dict)


@dataclass
class MilpOutcome:
    """A solved instance: the pruned schedule plus solver diagnostics."""

    schedule: Schedule
    raw_schedule: Schedule
    result: SolveResult
    plan: EpochPlan
    delivered_epoch: dict[tuple[int, int, int], int]
    finish_time: float

    @property
    def solve_time(self) -> float:
        return self.result.solve_time


def _commodity_earliest(topology: Topology, plan: EpochPlan,
                        holders: dict[Commodity, list[tuple[int, int]]],
                        tighten: bool = True,
                        ) -> dict[tuple[Commodity, int], int]:
    """Multi-source earliest-arrival (in buffer epochs) per commodity.

    With ``tighten=False`` only reachability is kept (every reachable node
    gets bound 0) — the dense model of a naive implementation, used by the
    variable-elimination ablation bench.
    """
    per_node = earliest_arrival_epochs(topology, plan)
    earliest: dict[tuple[Commodity, int], int] = {}
    for q, starts in holders.items():
        for node in topology.nodes:
            best = min((offset + per_node[h].get(node, 1 << 30)
                        for h, offset in starts), default=1 << 30)
            if best < (1 << 30):
                earliest[(q, node)] = best if tighten else 0
    return earliest


class MilpBuilder:
    """Builds the §3.1 MILP for one (topology, demand, horizon) instance.

    A* drives the same builder with per-round state: ``initial_holders``
    overrides where each commodity starts, ``injections`` models chunks that
    arrive mid-horizon from the previous round, and
    ``require_completion=False`` relaxes the final-epoch demand constraint.
    """

    def __init__(self, topology: Topology, demand: Demand,
                 config: TecclConfig, plan: EpochPlan, *,
                 initial_holders: dict[Commodity, set[int]] | None = None,
                 injections: dict[tuple[int, int, int, int], int] | None = None,
                 require_completion: bool = True,
                 allow_overhang: bool = False,
                 hyper_groups: list[HyperEdgeGroup] | None = None,
                 capacity_carry: dict[tuple[int, int, int], int] | None = None):
        demand.validate(topology)
        topology.validate()
        self.topology = topology
        self.demand = demand
        self.config = config
        self.plan = plan
        self.injections = injections or {}
        self.require_completion = require_completion
        self.allow_overhang = allow_overhang
        self.hyper_groups = hyper_groups or []
        #: transmissions still occupying a link from a *previous* horizon
        #: (A* rounds): key (i, j, negative virtual epoch), value chunk count
        self.capacity_carry = capacity_carry or {}
        if config.switch_model is SwitchModel.HYPER_EDGE and topology.switches:
            raise ModelError(
                "hyper-edge mode expects a transformed topology without "
                "switches; use repro.topology.to_hyper_edges first "
                "(the solve facade does this automatically)")
        if config.capacity_fn is not None:
            if any(k > 1 for k in plan.occupancy.values()):
                raise ModelError(
                    "time-varying capacity requires slowest-link epochs "
                    "(per-link occupancy must be 1)")
        self.commodities = demand.commodities()
        if initial_holders is None:
            self.initial_holders = {q: {q[0]} for q in self.commodities}
        else:
            self.initial_holders = initial_holders
        holders = {
            q: ([(h, 0) for h in self.initial_holders.get(q, set())]
                + [(n, k) for (s, c, n, k) in self.injections
                   if (s, c) == q])
            for q in self.commodities}
        self.earliest = _commodity_earliest(topology, plan, holders,
                                            tighten=config.tighten)

    # ------------------------------------------------------------------
    def build(self) -> MilpProblem:
        K = self.plan.num_epochs
        self._precheck_horizon()
        model = Model("teccl-milp", sense=Sense.MAXIMIZE)
        problem = MilpProblem(model=model, plan=self.plan,
                              topology=self.topology, demand=self.demand,
                              config=self.config, earliest=self.earliest)
        self._make_flow_vars(problem)
        self._make_buffer_vars(problem)
        self._buffer_recurrence(problem)
        self._availability(problem)
        self._switch_constraints(problem)
        self._capacity(problem)
        self._destination(problem)
        self._buffer_limit(problem)
        self._hyper_edge_limits(problem)
        self._objective(problem)
        return problem

    def _precheck_horizon(self) -> None:
        if not self.require_completion:
            return
        K = self.plan.num_epochs
        for s, c in self.commodities:
            for d in self.demand.destinations(s, c):
                earliest = self.earliest.get(((s, c), d))
                if earliest is None:
                    raise ModelError(
                        f"destination {d} unreachable for commodity ({s},{c})")
                if earliest > K:
                    raise InfeasibleError(
                        f"horizon K={K} below the earliest possible arrival "
                        f"({earliest} epochs) for ({s},{c})->{d}",
                        status="horizon")

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def _f_exists(self, q: Commodity, i: int, j: int, k: int) -> bool:
        earliest = self.earliest.get((q, i))
        if earliest is None or k < earliest:
            return False
        offset = self.plan.arrival_offset(i, j)
        arrival = k + offset + 1
        K = self.plan.num_epochs
        if self.topology.is_switch(j):
            # the switch must forward at epoch `arrival`, which must exist
            return arrival <= K - 1
        if self.allow_overhang:
            return k <= K - 1
        return arrival <= K

    def _make_flow_vars(self, problem: MilpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        self._link_epoch_vars: dict[tuple[int, int, int], list] = {}
        for q in self.commodities:
            for (i, j) in self.topology.links:
                for k in range(K):
                    if not self._f_exists(q, i, j, k):
                        continue
                    var = model.add_var(vtype=VarType.BINARY,
                                        name=f"F[{q},{i},{j},{k}]")
                    problem.f_vars[(q, i, j, k)] = var
                    self._link_epoch_vars.setdefault((i, j, k), []).append(var)

    def _make_buffer_vars(self, problem: MilpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            holders = self.initial_holders.get(q, set())
            for n in self.topology.nodes:
                if self.topology.is_switch(n):
                    continue
                earliest = self.earliest.get((q, n))
                if earliest is None:
                    continue
                for k in range(max(0, earliest), K + 1):
                    if k == 0 and n in holders:
                        var = model.add_var(lb=1.0, ub=1.0,
                                            vtype=VarType.BINARY,
                                            name=f"B[{q},{n},0]")
                    elif k == 0:
                        # nothing has arrived yet: non-holders start empty
                        # (reachable only when tightening is disabled)
                        var = model.add_var(lb=0.0, ub=0.0,
                                            vtype=VarType.BINARY,
                                            name=f"B[{q},{n},0]")
                    else:
                        var = model.add_var(vtype=VarType.BINARY,
                                            name=f"B[{q},{n},{k}]")
                    problem.b_vars[(q, n, k)] = var

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def _arrivals_expr(self, problem: MilpProblem, q: Commodity, n: int,
                       buffer_epoch: int):
        """Sends (plus injections) that appear in n's buffer at that epoch."""
        terms = []
        for link in self.topology.in_edges(n):
            send_epoch = buffer_epoch - 1 - self.plan.arrival_offset(
                link.src, link.dst)
            var = problem.f_vars.get((q, link.src, link.dst, send_epoch))
            if var is not None:
                terms.append(var)
        constant = self.injections.get((q[0], q[1], n, buffer_epoch), 0)
        expr = quicksum(terms)
        if constant:
            expr = expr + constant
        return expr

    def _buffer_recurrence(self, problem: MilpProblem) -> None:
        model = problem.model
        for (q, n, k), var in problem.b_vars.items():
            if k == 0:
                continue
            prev = problem.b_vars.get((q, n, k - 1), 0.0)
            arrivals = self._arrivals_expr(problem, q, n, k)
            model.add_constr(var.to_expr() <= arrivals + prev,
                             name=f"buf[{q},{n},{k}]")

    def _availability(self, problem: MilpProblem) -> None:
        """Flow conservation with copy at GPUs: send only what you hold."""
        model = problem.model
        sf = self.config.store_and_forward
        for (q, i, j, k), f in problem.f_vars.items():
            if self.topology.is_switch(i):
                continue  # handled by _switch_constraints
            holds_initially = i in self.initial_holders.get(q, set())
            if sf or holds_initially:
                b = problem.b_vars.get((q, i, k))
                if b is None:
                    model.add_constr(f.to_expr() <= 0.0)
                else:
                    model.add_constr(f <= b, name=f"avail[{q},{i},{j},{k}]")
            else:
                # Figure 9 ablation: relay immediately, like a switch.
                arrivals = self._arrivals_expr(problem, q, i, k)
                model.add_constr(f.to_expr() <= arrivals,
                                 name=f"relay[{q},{i},{j},{k}]")

    def _switch_constraints(self, problem: MilpProblem) -> None:
        model = problem.model
        copy_ok = self.config.switch_model is SwitchModel.COPY
        K = self.plan.num_epochs
        for sw in self.topology.switches:
            out_links = self.topology.out_edges(sw)
            for q in self.commodities:
                for k in range(K):
                    outs = [problem.f_vars[(q, sw, l.dst, k)]
                            for l in out_links
                            if (q, sw, l.dst, k) in problem.f_vars]
                    if not outs:
                        continue
                    arrivals = self._arrivals_expr(problem, q, sw, k)
                    if copy_ok:
                        for f in outs:
                            model.add_constr(f.to_expr() <= arrivals,
                                             name=f"sw[{q},{sw},{k}]")
                    else:
                        model.add_constr(quicksum(outs) <= arrivals,
                                         name=f"sw[{q},{sw},{k}]")

    def _capacity(self, problem: MilpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        tau = self.plan.tau
        for (i, j) in self.topology.links:
            kappa = self.plan.occupancy[(i, j)]
            for k in range(K):
                if self.config.capacity_fn is not None:
                    cap = (self.config.capacity_fn(i, j, k) * tau
                           / self.config.chunk_bytes)
                else:
                    cap = self.plan.cap_chunks[(i, j)]
                if kappa == 1:
                    vars_k = self._link_epoch_vars.get((i, j, k), [])
                    if vars_k:
                        model.add_constr(
                            quicksum(vars_k) <= math.floor(cap + _EPS),
                            name=f"cap[{i},{j},{k}]")
                else:
                    window: list = []
                    carry = 0
                    for kk in range(k - kappa + 1, k + 1):
                        if kk < 0:
                            carry += self.capacity_carry.get((i, j, kk), 0)
                        else:
                            window.extend(
                                self._link_epoch_vars.get((i, j, kk), []))
                    if window:
                        limit = max(1, math.floor(kappa * cap + _EPS))
                        model.add_constr(quicksum(window) <= limit - carry,
                                         name=f"capw[{i},{j},{k}]")

    def _destination(self, problem: MilpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        for s, c in self.commodities:
            q = (s, c)
            for d in self.demand.destinations(s, c):
                earliest = self.earliest.get((q, d), 1 << 30)
                first_k = max(0, earliest - 1)
                for k in range(first_k, K):
                    lb = 1.0 if (self.require_completion and k == K - 1) else 0.0
                    r = model.add_var(lb=lb, ub=1.0,
                                      name=f"R[{q},{d},{k}]")
                    problem.r_vars[(q, d, k)] = r
                    b_next = problem.b_vars.get((q, d, k + 1))
                    if b_next is None:
                        model.add_constr(r.to_expr() <= 0.0)
                    else:
                        model.add_constr(r <= b_next,
                                         name=f"read[{q},{d},{k}]")

    def _buffer_limit(self, problem: MilpProblem) -> None:
        limit = self.config.buffer_limit_chunks
        if limit is None:
            return
        model = problem.model
        K = self.plan.num_epochs
        for n in self.topology.gpus:
            for k in range(K + 1):
                relay_bufs = []
                for q in self.commodities:
                    # A GPU's own input/output buffers are exempt: sources
                    # hold their data and destinations must keep theirs
                    # (they store it anyway, §3.1); the limit governs the
                    # relay buffer.
                    if n in self.initial_holders.get(q, set()):
                        continue
                    if n in self.demand.destinations(*q):
                        continue
                    var = problem.b_vars.get((q, n, k))
                    if var is not None:
                        relay_bufs.append(var)
                if relay_bufs:
                    model.add_constr(quicksum(relay_bufs) <= limit,
                                     name=f"buflim[{n},{k}]")

    def _hyper_edge_limits(self, problem: MilpProblem) -> None:
        if not self.hyper_groups:
            return
        model = problem.model
        K = self.plan.num_epochs
        for group in self.hyper_groups:
            edges = group.edges
            out_by_node: dict[int, list[tuple[int, int]]] = {}
            in_by_node: dict[int, list[tuple[int, int]]] = {}
            for (i, j) in edges:
                out_by_node.setdefault(i, []).append((i, j))
                in_by_node.setdefault(j, []).append((i, j))
            for k in range(K):
                total = []
                for (i, j) in edges:
                    total.extend(self._link_epoch_vars.get((i, j, k), []))
                if total:
                    model.add_constr(quicksum(total) <= group.usage_limit,
                                     name=f"hyper[{group.switch},{k}]")
                for node, node_edges in out_by_node.items():
                    vars_out = []
                    for (i, j) in node_edges:
                        vars_out.extend(self._link_epoch_vars.get((i, j, k), []))
                    if vars_out:
                        model.add_constr(quicksum(vars_out) <= 1,
                                         name=f"hout[{group.switch},{node},{k}]")
                for node, node_edges in in_by_node.items():
                    vars_in = []
                    for (i, j) in node_edges:
                        vars_in.extend(self._link_epoch_vars.get((i, j, k), []))
                    if vars_in:
                        model.add_constr(quicksum(vars_in) <= 1,
                                         name=f"hin[{group.switch},{node},{k}]")

    def _objective(self, problem: MilpProblem) -> None:
        terms = []
        for ((s, c), d, k), r in problem.r_vars.items():
            weight = self.config.weight(s, c, d)
            terms.append(r * (weight / (k + 1)))
        problem.model.set_objective(quicksum(terms))


# ----------------------------------------------------------------------
# solve facade
# ----------------------------------------------------------------------
def solve_milp(topology: Topology, demand: Demand, config: TecclConfig,
               *, hyper_groups: list[HyperEdgeGroup] | None = None,
               ) -> MilpOutcome:
    """Build and solve the general formulation; returns a pruned schedule.

    With an explicit ``num_epochs`` an infeasible horizon raises
    :class:`InfeasibleError`. With the automatic horizon, the path-based
    bound is a heuristic (side constraints such as hyper-edge usage limits
    can invalidate it), so the solve retries with a doubled horizon before
    giving up.
    """
    auto = config.num_epochs is None
    if auto:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        num_epochs = path_based_epoch_bound(topology, demand, probe)
    else:
        num_epochs = config.num_epochs
    attempts = 3 if auto else 1
    last_error: InfeasibleError | None = None
    for _ in range(attempts):
        plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
        builder = MilpBuilder(topology, demand, config, plan,
                              hyper_groups=hyper_groups)
        problem = builder.build()
        result = problem.model.solve(config.solver)
        if result.status.has_solution:
            return extract_outcome(problem, result)
        from repro.solver import SolveStatus

        if result.status is not SolveStatus.INFEASIBLE:
            result.require_solution()  # raises with the backend message
        last_error = InfeasibleError(
            f"infeasible at horizon K={num_epochs}", status="horizon")
        num_epochs *= 2
    raise last_error


def extract_outcome(problem: MilpProblem, result: SolveResult) -> MilpOutcome:
    """Turn a solved MILP into a pruned :class:`Schedule`."""
    plan = problem.plan
    sends = []
    for (q, i, j, k), var in problem.f_vars.items():
        if result.value(var) > 0.5:
            sends.append(Send(epoch=k, source=q[0], chunk=q[1], src=i, dst=j))
    raw = Schedule(sends=sorted(sends), tau=plan.tau,
                   chunk_bytes=plan.chunk_bytes, num_epochs=plan.num_epochs)

    delivered: dict[tuple[int, int, int], int] = {}
    for ((s, c), d, k), r in sorted(problem.r_vars.items(),
                                    key=lambda item: item[0][2]):
        if result.value(r) > 0.5 and (s, c, d) not in delivered:
            delivered[(s, c, d)] = k

    def holds(s: int, c: int, n: int, k: int) -> bool:
        var = problem.b_vars.get(((s, c), n, k))
        return var is not None and result.value(var) > 0.5

    pruned = prune_sends(raw, problem.demand, problem.topology, plan,
                         delivered, buffer_values=holds)
    return MilpOutcome(schedule=pruned, raw_schedule=raw, result=result,
                       plan=plan, delivered_epoch=delivered,
                       finish_time=pruned.finish_time(problem.topology))
