"""The synthesis facade: one entry point over MILP, LP and A*.

Implements the paper's method-selection logic (§4): demands that do not
benefit from copy (ALLTOALL-like) go to the LP — optimal and scalable;
multicast demands (ALLGATHER-like) go to the general MILP, or to A* when the
instance is declared large. The facade also owns the Appendix C hyper-edge
transformation and the multi-tenant merge of §5.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.collectives.demand import Demand, TenantDemand, merge_tenants
from repro.core.astar import AStarOutcome, solve_astar
from repro.core.config import AStarConfig, SwitchModel, TecclConfig
from repro.core.epochs import EpochPlan, epoch_duration
from repro.core.lp import LpOutcome, minimize_epochs_lp, solve_lp
from repro.core.milp import MilpOutcome, solve_milp
from repro.core.schedule import FlowSchedule, Schedule
from repro.errors import ModelError
from repro.obs import recorder as _flight
from repro.obs.explain import solve_stats_subset
from repro.obs.trace import rspan as _obs_rspan
from repro.topology.topology import Topology
from repro.topology.transforms import HyperEdgeTopology, to_hyper_edges


class Method(enum.Enum):
    """Which formulation produced a result."""

    AUTO = "auto"
    MILP = "milp"
    LP = "lp"
    ASTAR = "astar"


@dataclass
class SynthesisResult:
    """A solved collective, whichever formulation produced it."""

    method: Method
    schedule: Schedule | FlowSchedule
    finish_time: float
    solve_time: float
    plan: EpochPlan
    #: the raw formulation outcome; ``None`` on results deserialised from a
    #: cache entry (the solver internals do not survive serialisation).
    outcome: MilpOutcome | LpOutcome | AStarOutcome | None = None
    #: set when the Appendix C transform rewrote the topology; schedules are
    #: expressed in this transformed space. Not serialised (``topology_used``
    #: carries the transformed fabric itself).
    hyper: HyperEdgeTopology | None = None
    #: the topology the schedule is expressed over (transformed when hyper)
    topology_used: Topology | None = None
    #: the demand in the schedule's node-id space (remapped when hyper)
    demand_used: Demand | None = None
    #: the config the schedule was synthesized under — the model-variant
    #: flags (switch copy semantics, store-and-forward, buffer budget) a
    #: conformance replay must honour. Serialised without ``capacity_fn``
    #: (a callable; replays of deserialised results fall back to the plan's
    #: static capacities, as they always have).
    config: TecclConfig | None = None
    #: provenance: how this result was produced (method, horizon attempts,
    #: symmetry reduction, per-phase durations) — a JSON-safe dict built in
    #: :func:`synthesize`, carried through serialisation so the planner's
    #: explain report survives cache round-trips and process boundaries.
    explain: dict | None = None

    def relabeled(self, perm) -> "SynthesisResult":
        """The same result with every node id mapped through ``perm``.

        Translates a result solved on a symmetry-relabeled instance back
        to the caller's node ids (the planner's cache-canonicalization
        path): schedule, demand and topology relabel; the epoch plan is
        invariant under any fabric automorphism (capacities permute onto
        equal capacities). The raw ``outcome``/``hyper`` records are
        dropped — they index solver internals in the solved space. Not
        valid for hyper-transformed results (their schedules live in the
        rewritten node space; callers gate those out).
        """
        from repro.topology.transforms import relabel as _relabel_topology
        return replace(
            self,
            schedule=self.schedule.relabel(perm),
            outcome=None,
            hyper=None,
            topology_used=(None if self.topology_used is None
                           else _relabel_topology(
                               self.topology_used, perm,
                               name=self.topology_used.name)),
            demand_used=(None if self.demand_used is None
                         else Demand.from_triples(
                             (perm[s], c, perm[d])
                             for (s, c, d) in self.demand_used.triples())))

    def algorithmic_bandwidth(self, output_buffer_bytes: float) -> float:
        """TACCL's metric: output buffer size / collective finish time."""
        if output_buffer_bytes <= 0:
            raise ModelError(
                f"output_buffer_bytes must be positive, got "
                f"{output_buffer_bytes!r}")
        if self.finish_time <= 0:
            raise ModelError("finish time is not positive")
        return output_buffer_bytes / self.finish_time

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`).

        Serialises everything downstream consumers need — the schedule, the
        epoch plan, and the (possibly hyper-transformed) topology and demand
        the schedule is expressed over. The raw solver ``outcome`` and the
        ``hyper`` transform record are dropped: they hold solver internals
        (variable tables, incumbent traces) that no replay path needs.
        """
        return {
            "method": self.method.value,
            "finish_time": self.finish_time,
            "solve_time": self.solve_time,
            "schedule": self.schedule.to_dict(),
            "plan": self.plan.to_dict(),
            "was_hyper": self.hyper is not None,
            "topology_used": (None if self.topology_used is None
                              else self.topology_used.to_dict()),
            "demand_used": (None if self.demand_used is None
                            else self.demand_used.to_dict()),
            "config": (None if self.config is None
                       else replace(self.config,
                                    capacity_fn=None).to_dict()),
            "explain": self.explain,
        }

    @staticmethod
    def from_dict(data: dict) -> "SynthesisResult":
        """Parse the :meth:`to_dict` representation (``outcome`` is None)."""
        try:
            sched_doc = data["schedule"]
            if sched_doc.get("kind") == "flow":
                schedule: Schedule | FlowSchedule = \
                    FlowSchedule.from_dict(sched_doc)
            else:
                schedule = Schedule.from_dict(sched_doc)
            return SynthesisResult(
                method=Method(data["method"]),
                schedule=schedule,
                finish_time=float(data["finish_time"]),
                solve_time=float(data["solve_time"]),
                plan=EpochPlan.from_dict(data["plan"]),
                outcome=None,
                topology_used=(
                    None if data.get("topology_used") is None
                    else Topology.from_dict(data["topology_used"])),
                demand_used=(
                    None if data.get("demand_used") is None
                    else Demand.from_dict(data["demand_used"])),
                config=(
                    None if data.get("config") is None
                    else TecclConfig.from_dict(data["config"])),
                explain=data.get("explain"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(
                f"malformed synthesis result document: {exc}") from exc


def synthesize(topology: Topology, demand: Demand, config: TecclConfig, *,
               method: Method = Method.AUTO,
               astar_config: AStarConfig | None = None,
               minimize_epochs: bool = False,
               warm_from: SynthesisResult | None = None,
               symmetry: str | None = None) -> SynthesisResult:
    """Synthesize routes and a schedule for one collective demand.

    Args:
        method: force a formulation, or AUTO for the paper's selection rule
            (LP when copy cannot help, MILP otherwise).
        symmetry: override ``config.solver.symmetry`` for this call —
            ``"auto"``, ``"on"`` or ``"off"`` (``None`` keeps the config's
            setting). Controls whether the LP/MILP solves may quotient the
            instance by verified fabric automorphisms
            (``repro.core.symmetry``); results are always conformance-vetted
            with cold fallback, so the knob affects speed only.
        minimize_epochs: for the LP, binary-search the smallest feasible
            horizon instead of solving one fixed horizon (§6's procedure for
            the numerically tricky large ALLTOALLs).
        warm_from: a prior result for a near-identical instance (same or
            perturbed fabric/demand). With the automatic horizon, its
            achieved finish time seeds the horizon estimate — usually far
            tighter than the generous path bound, so the re-solve builds a
            much smaller model (the infeasible-horizon doubling retries
            make a too-tight seed safe). Exactness is untouched: the seed
            changes how many epochs are modelled, never the optimum within
            them.
    """
    if symmetry is not None:
        config = replace(config,
                         solver=replace(config.solver, symmetry=symmetry))
    with _obs_rspan("synthesize", method=method.value,
                    gpus=len(topology.gpus),
                    minimize_epochs=minimize_epochs,
                    warm=warm_from is not None) as sp:
        with _flight.collect_phases() as phases:
            result = _synthesize(topology, demand, config, method=method,
                                 astar_config=astar_config,
                                 minimize_epochs=minimize_epochs,
                                 warm_from=warm_from)
        sp.set_attr(resolved_method=result.method.value,
                    finish_time=result.finish_time)
        result.explain = _build_explain(result, warm_from is not None,
                                        phases)
        return result


def _build_explain(result: SynthesisResult, warm_seeded: bool,
                   phases: dict) -> dict:
    """The solve-side provenance dict riding a fresh SynthesisResult.

    Everything here is lifted from data the solve already produced (the
    outcome's stats, the recorded-span phase accumulator) — JSON-safe by
    construction so it survives cache serialisation and the pool's
    process boundary.
    """
    stats: dict = {}
    outcome = result.outcome
    if outcome is not None:
        inner = getattr(outcome, "result", None)
        stats = solve_stats_subset(getattr(inner, "stats", None))
        # POP decomposition outcomes carry fan-out on the outcome itself
        partitions = getattr(outcome, "partitions", None)
        if partitions is not None:
            stats["pop_partitions"] = len(partitions)
            stats["pop_attempts"] = getattr(outcome, "attempts", 1)
    return {
        "method": result.method.value,
        "finish_time": result.finish_time,
        "solve_time": result.solve_time,
        "horizon_epochs": result.plan.num_epochs,
        "warm_seeded": warm_seeded,
        "hyper_transform": result.hyper is not None,
        "stats": stats,
        "phases": {name: round(dur, 6) for name, dur in phases.items()},
    }


def _synthesize(topology: Topology, demand: Demand, config: TecclConfig, *,
                method: Method, astar_config: AStarConfig | None,
                minimize_epochs: bool,
                warm_from: SynthesisResult | None) -> SynthesisResult:
    work_topology = topology
    work_demand = demand
    hyper: HyperEdgeTopology | None = None
    hyper_groups = None
    if (config.switch_model is SwitchModel.HYPER_EDGE
            and topology.switches):
        if config.priorities is not None:
            raise ModelError(
                "per-triple priorities are keyed by original node ids and "
                "are not supported together with the hyper-edge transform")
        with _obs_rspan("synthesize.hyper_transform"):
            hyper = to_hyper_edges(topology)
            work_topology = hyper.topology
            hyper_groups = hyper.groups
            old_to_new = {old: new for new, old in hyper.node_map.items()}
            work_demand = Demand.from_triples(
                (old_to_new[s], c, old_to_new[d])
                for s, c, d in demand.triples())

    if method is Method.AUTO:
        method = Method.LP if not demand.benefits_from_copy() else Method.MILP

    initial_epochs = _warm_horizon_hint(work_topology, config, warm_from)

    if method is Method.LP:
        if work_demand.benefits_from_copy():
            # Sound but deliberately weaker: LP == the no-copy ablation.
            outcome = solve_lp(work_topology, work_demand, config,
                               aggregate=False,
                               initial_epochs=initial_epochs)
        elif minimize_epochs:
            outcome = minimize_epochs_lp(work_topology, work_demand, config)
        else:
            outcome = solve_lp(work_topology, work_demand, config,
                               initial_epochs=initial_epochs)
        return SynthesisResult(
            method=Method.LP, schedule=outcome.schedule,
            finish_time=outcome.finish_time,
            solve_time=outcome.solve_time, plan=outcome.plan,
            outcome=outcome, hyper=hyper, topology_used=work_topology,
            demand_used=work_demand, config=config)

    if method is Method.MILP:
        outcome = solve_milp(work_topology, work_demand, config,
                             hyper_groups=hyper_groups,
                             initial_epochs=initial_epochs)
        return SynthesisResult(
            method=Method.MILP, schedule=outcome.schedule,
            finish_time=outcome.finish_time,
            solve_time=outcome.solve_time, plan=outcome.plan,
            outcome=outcome, hyper=hyper, topology_used=work_topology,
            demand_used=work_demand, config=config)

    if method is Method.ASTAR:
        if hyper_groups:
            raise ModelError(
                "the A* decomposition does not support hyper-edge switches; "
                "use the COPY or NO_COPY switch model")
        outcome = solve_astar(work_topology, work_demand, config,
                              astar_config)
        return SynthesisResult(
            method=Method.ASTAR, schedule=outcome.schedule,
            finish_time=outcome.finish_time,
            solve_time=outcome.solve_time, plan=outcome.plan,
            outcome=outcome, hyper=hyper, topology_used=work_topology,
            demand_used=work_demand, config=config)

    raise ModelError(f"unknown method {method!r}")


def _warm_horizon_hint(topology: Topology, config: TecclConfig,
                       warm_from: SynthesisResult | None) -> int | None:
    """Epochs the prior solution suggests the new instance needs.

    Two estimates, take the larger (overshooting is safe — the solvers
    clamp the hint to the sound path bound; undershooting burns an extra
    infeasible attempt): the prior schedule's discrete epoch extent
    (capacity-rescaled fabrics need the same *number* of epochs — the
    per-epoch chunk capacity is scale-invariant), and its wall-clock
    finish re-gridded onto the new instance's τ (covers τ changes from
    chunk-size or α shifts).
    """
    if warm_from is None or config.num_epochs is not None:
        return None
    if warm_from.finish_time <= 0:
        return None
    tau = epoch_duration(topology, config.chunk_bytes, config.epoch_mode,
                         config.epoch_multiplier)
    hint = math.ceil(warm_from.finish_time / tau)
    extent = getattr(warm_from.schedule, "finish_epoch", None)
    if extent is not None and extent >= 0:
        hint = max(hint, int(extent) + 1)
    return max(2, hint + 1)


def synthesize_multi_tenant(topology: Topology, tenants: list[TenantDemand],
                            config: TecclConfig, *,
                            method: Method = Method.AUTO,
                            astar_config: AStarConfig | None = None,
                            ) -> SynthesisResult:
    """Multi-tenant synthesis (§5): merge demands, weight completion times.

    The merged demand shares the capacity constraints (no tenant can exceed
    the fabric) while per-tenant priorities weight the objective's read
    rewards, biasing the schedule toward finishing high-priority tenants
    first.
    """
    merged, weights = merge_tenants(tenants)
    config = replace(config, priorities=weights)
    return synthesize(topology, merged, config, method=method,
                      astar_config=astar_config)
