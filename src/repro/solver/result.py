"""Solve results and status mapping."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.solver.expr import LinExpr, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve, normalised across LP/MILP backends."""

    OPTIMAL = "optimal"
    #: Feasible incumbent accepted under a relative-gap early stop.
    GAP_LIMIT = "gap_limit"
    #: Feasible incumbent returned at the time/node limit.
    TIME_LIMIT = "time_limit"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.GAP_LIMIT,
                        SolveStatus.TIME_LIMIT)


@dataclass
class SolveResult:
    """The outcome of :meth:`repro.solver.model.Model.solve`.

    Attributes:
        status: normalised solver status.
        objective: objective value of the returned point (``None`` if no
            feasible point was found).
        values: primal values indexed by variable index.
        solve_time: wall-clock seconds spent inside the backend.
        mip_gap: relative primal-dual gap reported by the backend
            (0.0 for LPs and proven-optimal MILPs, ``None`` if unknown).
        message: backend message, useful for diagnostics.
    """

    status: SolveStatus
    objective: float | None
    values: np.ndarray | None
    solve_time: float
    mip_gap: float | None = None
    message: str = ""
    stats: dict = field(default_factory=dict)

    def value(self, item: Variable | LinExpr | int | np.integer) -> float:
        """Evaluate a variable, raw column index, or expression at the
        returned primal point.

        Raw indices are what the bulk construction path
        (:meth:`repro.solver.model.Model.add_var_array`) hands around
        instead of :class:`Variable` objects.
        """
        if self.values is None:
            raise ModelError(f"no solution available (status={self.status.value})")
        if isinstance(item, Variable):
            return float(self.values[item.index])
        if isinstance(item, (int, np.integer)):
            return float(self.values[item])
        if isinstance(item, LinExpr):
            total = item.const
            for idx, coef in item.terms.items():
                total += coef * float(self.values[idx])
            return total
        raise ModelError(f"cannot evaluate {type(item).__name__}")

    def require_solution(self) -> "SolveResult":
        """Return self, raising if the solve produced no usable point."""
        from repro.errors import InfeasibleError

        if not self.status.has_solution or self.values is None:
            raise InfeasibleError(
                f"solver returned {self.status.value}: {self.message}",
                status=self.status.value)
        return self
