"""Solve results and status mapping."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.solver.expr import LinExpr, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve, normalised across LP/MILP backends."""

    OPTIMAL = "optimal"
    #: Feasible incumbent accepted under a relative-gap early stop.
    GAP_LIMIT = "gap_limit"
    #: Feasible incumbent returned at the time/node limit.
    TIME_LIMIT = "time_limit"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.GAP_LIMIT,
                        SolveStatus.TIME_LIMIT)


@dataclass
class SolveResult:
    """The outcome of :meth:`repro.solver.model.Model.solve`.

    Attributes:
        status: normalised solver status.
        objective: objective value of the returned point (``None`` if no
            feasible point was found).
        values: primal values indexed by variable index.
        solve_time: wall-clock seconds spent inside the backend.
        mip_gap: relative primal-dual gap reported by the backend
            (0.0 for LPs and proven-optimal MILPs, ``None`` if unknown).
        message: backend message, useful for diagnostics.
    """

    status: SolveStatus
    objective: float | None
    values: np.ndarray | None
    solve_time: float
    mip_gap: float | None = None
    message: str = ""
    stats: dict = field(default_factory=dict)
    #: row duals / simplex basis, when the backend reports them (the scipy
    #: HiGHS wrappers do not; see :class:`WarmStart`).
    duals: np.ndarray | None = None
    col_basis: np.ndarray | None = None
    row_basis: np.ndarray | None = None

    def value(self, item: Variable | LinExpr | int | np.integer) -> float:
        """Evaluate a variable, raw column index, or expression at the
        returned primal point.

        Raw indices are what the bulk construction path
        (:meth:`repro.solver.model.Model.add_var_array`) hands around
        instead of :class:`Variable` objects.
        """
        if self.values is None:
            raise ModelError(f"no solution available (status={self.status.value})")
        if isinstance(item, Variable):
            return float(self.values[item.index])
        if isinstance(item, (int, np.integer)):
            return float(self.values[item])
        if isinstance(item, LinExpr):
            total = item.const
            for idx, coef in item.terms.items():
                total += coef * float(self.values[idx])
            return total
        raise ModelError(f"cannot evaluate {type(item).__name__}")

    def require_solution(self) -> "SolveResult":
        """Return self, raising if the solve produced no usable point."""
        from repro.errors import InfeasibleError

        if not self.status.has_solution or self.values is None:
            raise InfeasibleError(
                f"solver returned {self.status.value}: {self.message}",
                status=self.status.value)
        return self

    def warm_start(self) -> "WarmStart | None":
        """Snapshot this solve as a :class:`WarmStart` donor.

        Returns ``None`` when the solve produced no primal point (an
        infeasible or errored result cannot seed anything).
        """
        if self.values is None:
            return None
        return WarmStart(values=np.array(self.values, dtype=float, copy=True),
                         objective=self.objective,
                         duals=self.duals, col_basis=self.col_basis,
                         row_basis=self.row_basis)


@dataclass
class WarmStart:
    """A reusable snapshot of one solve: primal point plus, when the backend
    reports them, duals and a simplex basis.

    The scipy/HiGHS backend currently surfaces only the primal point (its
    ``linprog`` HiGHS methods accept no ``x0`` and ``milp`` no incumbent), so
    ``duals``/``col_basis``/``row_basis`` stay ``None`` there; the fields
    exist so a capable backend can round-trip a full basis through the same
    API. Even without backend support the snapshot carries real value: the
    incremental re-solve engine uses it as a feasibility certificate, an
    objective bound for horizon searches, and the donor payload of the
    planner's near-fingerprint cache.
    """

    values: np.ndarray
    objective: float | None = None
    duals: np.ndarray | None = None
    col_basis: np.ndarray | None = None
    row_basis: np.ndarray | None = None

    @staticmethod
    def from_result(result: SolveResult | None) -> "WarmStart | None":
        """Capture a donor from a result (``None``-tolerant convenience)."""
        if result is None:
            return None
        return result.warm_start()

    @property
    def num_vars(self) -> int:
        return len(self.values)

    def padded(self, num_vars: int) -> np.ndarray:
        """The primal point resized to ``num_vars`` columns.

        A model grown by :meth:`repro.solver.model.Model.extend` appends
        columns after the donor's, so zero-padding is exactly "the prior
        solution with the new epochs idle". Truncation (a *smaller* target)
        is rejected — there is no sound projection in general.
        """
        if num_vars < len(self.values):
            raise ModelError(
                f"cannot shrink a warm start from {len(self.values)} to "
                f"{num_vars} variables")
        if num_vars == len(self.values):
            return np.asarray(self.values, dtype=float)
        out = np.zeros(num_vars)
        out[:len(self.values)] = self.values
        return out
