"""Linear expressions over solver variables.

This is the algebra half of the modeling layer that stands in for the paper's
use of ``gurobipy``: :class:`Variable` handles are created by
:class:`repro.solver.model.Model`, and arithmetic on them produces
:class:`LinExpr` objects that the model compiles to sparse matrices for HiGHS.

The representation is deliberately simple — a ``dict`` from variable index to
coefficient plus a float constant — because TE-CCL formulations build hundreds
of thousands of small expressions and the dominant cost is Python-level
bookkeeping.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable
from typing import Union

from repro.errors import ModelError

Number = Union[int, float]
ExprLike = Union["Variable", "LinExpr", int, float]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Sense(enum.Enum):
    """Optimization direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


class Relation(enum.Enum):
    """Constraint relation, normalised as ``expr REL 0``."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Variable:
    """A handle to a decision variable owned by a :class:`Model`.

    Variables are value objects identified by ``(model id, index)``; all
    arithmetic promotes them to :class:`LinExpr`.
    """

    __slots__ = ("index", "name", "vtype", "lb", "ub", "_model_id")

    def __init__(self, index: int, name: str, vtype: VarType,
                 lb: float, ub: float, model_id: int):
        self.index = index
        self.name = name
        self.vtype = vtype
        self.lb = lb
        self.ub = ub
        self._model_id = model_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"

    def __hash__(self) -> int:
        return hash((self._model_id, self.index))

    def __eq__(self, other: object):  # type: ignore[override]
        # ``==`` builds a constraint, mirroring gurobipy/pulp ergonomics.
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self.to_expr().__eq__(other)
        return NotImplemented

    def to_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0, self._model_id)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (-self.to_expr()) + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self.to_expr() * other

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "LinExpr":
        return self.to_expr() / other

    def __neg__(self) -> "LinExpr":
        return -self.to_expr()

    # -- relations ---------------------------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return self.to_expr() <= other

    def __ge__(self, other: ExprLike) -> "Constraint":
        return self.to_expr() >= other


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + const``.

    Expressions remember which model their variables belong to
    (``model_id``): combining variables of two different models raises
    immediately, and :meth:`repro.solver.model.Model.add_constr` rejects
    expressions owned by a foreign model even when every index happens to be
    in range (a variable from a *smaller* model would otherwise silently
    alias a same-index variable here). Constant expressions carry no owner
    (``model_id is None``) and combine with anything.
    """

    __slots__ = ("terms", "const", "model_id")

    def __init__(self, terms: dict[int, float] | None = None, const: float = 0.0,
                 model_id: int | None = None):
        self.terms: dict[int, float] = terms if terms is not None else {}
        self.const = float(const)
        self.model_id = model_id

    def _merge_owner(self, model_id: int | None) -> None:
        if model_id is None:
            return
        if self.model_id is None:
            self.model_id = model_id
        elif self.model_id != model_id:
            raise ModelError(
                "cannot combine variables from two different models")

    # -- construction helpers ---------------------------------------------
    @staticmethod
    def _coerce(value: ExprLike) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise ModelError(f"cannot use {type(value).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.const, self.model_id)

    # -- in-place accumulation (used by quicksum for speed) ----------------
    def _iadd_expr(self, other: "LinExpr", scale: float = 1.0) -> None:
        self._merge_owner(other.model_id)
        terms = self.terms
        for idx, coef in other.terms.items():
            new = terms.get(idx, 0.0) + scale * coef
            if new == 0.0:
                terms.pop(idx, None)
            else:
                terms[idx] = new
        self.const += scale * other.const

    def add_term(self, var: Variable, coef: float) -> None:
        """Accumulate ``coef * var`` in place."""
        self._merge_owner(var._model_id)
        new = self.terms.get(var.index, 0.0) + coef
        if new == 0.0:
            self.terms.pop(var.index, None)
        else:
            self.terms[var.index] = new

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        result = self.copy()
        result._iadd_expr(self._coerce(other))
        return result

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> "LinExpr":
        result = self.copy()
        result._iadd_expr(self._coerce(other), scale=-1.0)
        return result

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        result = self._coerce(other).copy()
        result._iadd_expr(self, scale=-1.0)
        return result

    def __mul__(self, other: Number) -> "LinExpr":
        if not isinstance(other, (int, float)):
            raise ModelError("expressions can only be scaled by numbers "
                             "(the model is linear)")
        scale = float(other)
        if scale == 0.0:
            return LinExpr({}, 0.0)
        return LinExpr({i: c * scale for i, c in self.terms.items()},
                       self.const * scale, self.model_id)

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "LinExpr":
        if not isinstance(other, (int, float)) or other == 0:
            raise ModelError("expressions can only be divided by nonzero numbers")
        return self * (1.0 / other)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- relations ----------------------------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - self._coerce(other), Relation.LE)

    def __ge__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - self._coerce(other), Relation.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint(self - self._coerce(other), Relation.EQ)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    # -- inspection ----------------------------------------------------------
    def is_constant(self) -> bool:
        return not self.terms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c:+g}*x{i}" for i, c in sorted(self.terms.items())]
        if self.const or not parts:
            parts.append(f"{self.const:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class Constraint:
    """A linear constraint normalised to ``expr REL 0``."""

    __slots__ = ("expr", "relation", "name")

    def __init__(self, expr: LinExpr, relation: Relation, name: str = ""):
        if expr.is_constant():
            # Constant constraints are either trivially true or a modeling bug;
            # we keep them and let the model decide (it raises on violation).
            if not _constant_holds(expr.const, relation):
                raise ModelError(
                    f"constraint is constant and violated: {expr.const} {relation.value} 0")
        self.expr = expr
        self.relation = relation
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint({self.expr!r} {self.relation.value} 0, name={self.name!r})"


def _constant_holds(const: float, relation: Relation) -> bool:
    tol = 1e-9
    if relation is Relation.LE:
        return const <= tol
    if relation is Relation.GE:
        return const >= -tol
    return math.isclose(const, 0.0, abs_tol=tol)


def quicksum(items: Iterable[ExprLike]) -> LinExpr:
    """Sum expressions efficiently (avoids quadratic dict copying).

    The name follows the gurobipy convention the paper's implementation uses.
    """
    total = LinExpr()
    for item in items:
        if isinstance(item, Variable):
            total.add_term(item, 1.0)
        elif isinstance(item, LinExpr):
            total._iadd_expr(item)
        elif isinstance(item, (int, float)):
            total.const += float(item)
        else:
            raise ModelError(f"cannot sum {type(item).__name__}")
    return total
