"""Solver configuration.

Mirrors the knobs the paper uses on Gurobi: a wall-clock time limit (the paper
stops Gurobi after 2 hours and takes the incumbent), a relative MIP gap for
"early stop" (the paper uses 30% for ALLGATHER), and verbosity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class SolverOptions:
    """Options forwarded to the HiGHS backend.

    Attributes:
        time_limit: wall-clock limit in seconds (``None`` = no limit). If the
            limit is hit with an incumbent, the incumbent is returned with
            status ``TIME_LIMIT``.
        mip_gap: relative primal-dual gap at which the MILP may stop early.
            ``0.3`` reproduces the paper's "early stop at 30%" mode.
        node_limit: branch-and-bound node limit (``None`` = no limit).
        verbose: emit HiGHS log output.
        presolve: let HiGHS presolve the model (on by default).
        lp_method: HiGHS algorithm for pure LPs. ``"auto"`` picks the
            interior-point method for large models (it is an order of
            magnitude faster on TE-CCL's time-expanded LPs, mirroring the
            paper's ``method = 2`` Gurobi setting for large ALLTOALLs) and
            the default simplex otherwise; or force ``"highs"``,
            ``"highs-ds"``, ``"highs-ipm"``.
        construction: which model-construction path the formulation
            builders use. ``"auto"`` (default) takes the vectorized COO
            bulk path whenever the instance supports it (everything except
            the A* round models) and falls back to the gurobipy-style
            expression path otherwise; ``"coo"`` requires the bulk path
            (raises if the instance needs expression-only features);
            ``"expr"`` forces the legacy expression path. The two paths
            compile to identical matrices — see
            ``tests/test_model_equivalence.py``.
        symmetry: whether the LP/MILP solves may exploit fabric
            automorphisms (``repro.core.symmetry``). ``"auto"`` (default)
            attempts a reduction on large models only; ``"on"`` always
            attempts it; ``"off"`` disables it. Reductions are always
            replay-vetted by the conformance oracle with cold fallback, so
            the knob trades detection overhead against solve time — it
            never changes what a correct result looks like.
    """

    time_limit: float | None = None
    mip_gap: float = 0.0
    node_limit: int | None = None
    verbose: bool = False
    presolve: bool = True
    lp_method: str = "auto"
    construction: str = "auto"
    symmetry: str = "auto"

    #: model size at which "auto" switches the LP algorithm to IPM
    AUTO_IPM_THRESHOLD = 20_000

    def __post_init__(self) -> None:
        if self.time_limit is not None and self.time_limit <= 0:
            raise ModelError("time_limit must be positive")
        if not 0.0 <= self.mip_gap < 1.0:
            raise ModelError("mip_gap must be in [0, 1)")
        if self.node_limit is not None and self.node_limit <= 0:
            raise ModelError("node_limit must be positive")
        if self.lp_method not in ("auto", "highs", "highs-ds", "highs-ipm"):
            raise ModelError(f"unknown lp_method {self.lp_method!r}")
        if self.construction not in ("auto", "coo", "expr"):
            raise ModelError(f"unknown construction {self.construction!r}")
        if self.symmetry not in ("auto", "on", "off"):
            raise ModelError(f"unknown symmetry mode {self.symmetry!r}")

    def resolve_lp_method(self, num_vars: int) -> str:
        if self.lp_method != "auto":
            return self.lp_method
        return "highs-ipm" if num_vars >= self.AUTO_IPM_THRESHOLD \
            else "highs"

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "time_limit": (None if self.time_limit is None
                           else float(self.time_limit)),
            "mip_gap": float(self.mip_gap),
            "node_limit": (None if self.node_limit is None
                           else int(self.node_limit)),
            "verbose": bool(self.verbose),
            "presolve": bool(self.presolve),
            "lp_method": self.lp_method,
            "construction": self.construction,
            "symmetry": self.symmetry,
        }

    @staticmethod
    def from_dict(data: dict) -> "SolverOptions":
        """Parse the :meth:`to_dict` representation."""
        try:
            return SolverOptions(
                time_limit=(None if data.get("time_limit") is None
                            else float(data["time_limit"])),
                mip_gap=float(data.get("mip_gap", 0.0)),
                node_limit=(None if data.get("node_limit") is None
                            else int(data["node_limit"])),
                verbose=bool(data.get("verbose", False)),
                presolve=bool(data.get("presolve", True)),
                lp_method=str(data.get("lp_method", "auto")),
                construction=str(data.get("construction", "auto")),
                symmetry=str(data.get("symmetry", "auto")))
        except (TypeError, ValueError) as exc:
            raise ModelError(
                f"malformed solver options document: {exc}") from exc

    def to_scipy(self) -> dict:
        """Translate to the ``options`` dict of :func:`scipy.optimize.milp`."""
        options: dict = {"disp": self.verbose, "presolve": self.presolve}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        if self.mip_gap > 0.0:
            options["mip_rel_gap"] = float(self.mip_gap)
        if self.node_limit is not None:
            options["node_limit"] = int(self.node_limit)
        return options


#: Defaults used across the package when the caller does not care.
DEFAULT_OPTIONS = SolverOptions()

#: The paper's ALLGATHER "early stop" configuration (§6.1): accept any
#: incumbent proven within 30% of optimal.
EARLY_STOP_30 = SolverOptions(mip_gap=0.3)
