"""LP/MILP modeling layer (the repo's stand-in for gurobipy).

Public surface::

    Model, Sense, VarType, Variable, LinExpr, Constraint, quicksum
    SolverOptions, DEFAULT_OPTIONS, EARLY_STOP_30
    SolveResult, SolveStatus, WarmStart
"""

from repro.solver.expr import (Constraint, LinExpr, Relation, Sense, Variable,
                               VarType, quicksum)
from repro.solver.io import lp_statistics, save_lp, write_lp
from repro.solver.model import CompiledModel, Model, compiled_equal
from repro.solver.options import DEFAULT_OPTIONS, EARLY_STOP_30, SolverOptions
from repro.solver.result import SolveResult, SolveStatus, WarmStart

__all__ = [
    "Model", "CompiledModel", "compiled_equal",
    "Sense", "VarType", "Variable", "LinExpr", "Constraint",
    "Relation", "quicksum",
    "SolverOptions", "DEFAULT_OPTIONS", "EARLY_STOP_30",
    "SolveResult", "SolveStatus", "WarmStart",
    "write_lp", "save_lp", "lp_statistics",
]
