"""Model export in CPLEX LP format.

Debugging a mis-behaving formulation usually means looking at the actual
constraints; every industrial solver (Gurobi included — the paper's tooling)
writes ``.lp`` files for that. This module does the same for our models so a
TE-CCL instance can be inspected by eye or loaded into any external solver.

Only the features the modeling layer produces are emitted: a linear
objective, (in)equality rows, finite bounds, binary/general integer markers.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import ModelError
from repro.solver.expr import Relation, Sense, VarType
from repro.solver.model import Model

_INF = float("inf")

_NAME_RE = re.compile(r"[^A-Za-z0-9_]")


def _lp_name(raw: str, index: int) -> str:
    """LP-format identifiers cannot contain brackets/commas; sanitise."""
    cleaned = _NAME_RE.sub("_", raw).strip("_")
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"x{index}_{cleaned}" if cleaned else f"x{index}"
    return cleaned


def _terms(expr_terms: dict[int, float], names: list[str]) -> str:
    parts = []
    for idx in sorted(expr_terms):
        coef = expr_terms[idx]
        if coef == 0:
            continue
        sign = "-" if coef < 0 else "+"
        magnitude = abs(coef)
        if parts or sign == "-":
            parts.append(f"{sign} {magnitude:g} {names[idx]}")
        else:
            parts.append(f"{magnitude:g} {names[idx]}")
    return " ".join(parts) if parts else "0 " + names[0]


def write_lp(model: Model) -> str:
    """Serialise the model as LP-format text."""
    if not model._vars:
        raise ModelError("cannot export a model with no variables")
    names = [_lp_name(v.name, v.index) for v in model._vars]
    if len(set(names)) != len(names):  # collisions after sanitising
        names = [f"{n}_{i}" for i, n in enumerate(names)]

    lines = [f"\\ {model.name}"]
    lines.append("Maximize" if model.sense is Sense.MAXIMIZE else "Minimize")
    lines.append(" obj: " + _terms(model._objective.terms, names))
    lines.append("Subject To")
    for row, constraint in enumerate(model._constraints):
        rhs = -constraint.expr.const
        op = {Relation.LE: "<=", Relation.GE: ">=",
              Relation.EQ: "="}[constraint.relation]
        label = _lp_name(constraint.name, row) if constraint.name \
            else f"c{row}"
        lines.append(f" {label}: "
                     f"{_terms(constraint.expr.terms, names)} {op} {rhs:g}")
    lines.append("Bounds")
    for var, name in zip(model._vars, names):
        if var.vtype is VarType.BINARY:
            continue  # implied 0/1
        lower = f"{var.lb:g}" if var.lb != -_INF else "-inf"
        upper = f"{var.ub:g}" if var.ub != _INF else "+inf"
        if var.lb == 0.0 and var.ub == _INF:
            continue  # the LP-format default
        lines.append(f" {lower} <= {name} <= {upper}")
    binaries = [name for var, name in zip(model._vars, names)
                if var.vtype is VarType.BINARY]
    if binaries:
        lines.append("Binaries")
        lines.extend(f" {name}" for name in binaries)
    generals = [name for var, name in zip(model._vars, names)
                if var.vtype is VarType.INTEGER]
    if generals:
        lines.append("Generals")
        lines.extend(f" {name}" for name in generals)
    lines.append("End")
    return "\n".join(lines) + "\n"


def save_lp(model: Model, path: str | Path) -> None:
    """Write the model to an ``.lp`` file."""
    Path(path).write_text(write_lp(model), encoding="utf-8")


def lp_statistics(document: str) -> dict:
    """Parse an LP document's coarse structure (used by round-trip tests).

    Returns counts of constraints, binaries, generals, and the objective
    sense — enough to verify an export matches its model without a full LP
    parser.
    """
    lines = [line.strip() for line in document.splitlines() if line.strip()]
    if not lines or not lines[-1].startswith("End"):
        raise ModelError("not a complete LP document")
    sense = None
    sections: dict[str, list[str]] = {}
    current = None
    for line in lines:
        if line in ("Maximize", "Minimize"):
            sense = line.lower()
            current = "objective"
            sections[current] = []
        elif line in ("Subject To", "Bounds", "Binaries", "Generals", "End"):
            current = line
            sections.setdefault(current, [])
        elif current is not None:
            sections[current].append(line)
    if sense is None:
        raise ModelError("LP document lacks an objective sense")
    return {
        "sense": sense,
        "num_constraints": len(sections.get("Subject To", [])),
        "num_binaries": len(sections.get("Binaries", [])),
        "num_generals": len(sections.get("Generals", [])),
        "num_bounds": len(sections.get("Bounds", [])),
    }
