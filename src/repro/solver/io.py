"""Model export in CPLEX LP format.

Debugging a mis-behaving formulation usually means looking at the actual
constraints; every industrial solver (Gurobi included — the paper's tooling)
writes ``.lp`` files for that. This module does the same for our models so a
TE-CCL instance can be inspected by eye or loaded into any external solver.

Only the features the modeling layer produces are emitted: a linear
objective, (in)equality rows, finite bounds, binary/general integer markers.
Rows are read back from the compiled COO buffers, so models built through
the bulk path (:meth:`Model.add_constr_coo`) export the same way as
expression-built ones; two-sided (ranged) rows are split into a ``<=`` and a
``>=`` line sharing a label stem.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import ModelError
from repro.solver.expr import Sense, VarType
from repro.solver.model import Model

_INF = float("inf")

_NAME_RE = re.compile(r"[^A-Za-z0-9_]")


def _lp_name(raw: str, index: int) -> str:
    """LP-format identifiers cannot contain brackets/commas; sanitise."""
    cleaned = _NAME_RE.sub("_", raw).strip("_")
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"x{index}_{cleaned}" if cleaned else f"x{index}"
    return cleaned


def _terms(expr_terms: dict[int, float], names: list[str]) -> str:
    parts = []
    for idx in sorted(expr_terms):
        coef = expr_terms[idx]
        if coef == 0:
            continue
        sign = "-" if coef < 0 else "+"
        magnitude = abs(coef)
        if parts or sign == "-":
            parts.append(f"{sign} {magnitude:g} {names[idx]}")
        else:
            parts.append(f"{magnitude:g} {names[idx]}")
    return " ".join(parts) if parts else "0 " + names[0]


def _row_lines(row: int, name: str, terms: dict[int, float],
               lower: float, upper: float, names: list[str]) -> list[str]:
    label = _lp_name(name, row) if name else f"c{row}"
    body = _terms(terms, names)
    if lower == upper:
        return [f" {label}: {body} = {lower:g}"]
    lines = []
    if upper < _INF:
        lines.append(f" {label}: {body} <= {upper:g}")
    if lower > -_INF:
        suffix = "_lo" if upper < _INF else ""
        lines.append(f" {label}{suffix}: {body} >= {lower:g}")
    if not lines:  # free row: keep it visible rather than dropping it
        lines.append(f" {label}: {body} >= -inf")
    return lines


def write_lp(model: Model) -> str:
    """Serialise the model as LP-format text."""
    if not model.num_vars:
        raise ModelError("cannot export a model with no variables")
    variables = list(model.variables())
    names = [_lp_name(v.name, v.index) for v in variables]
    if len(set(names)) != len(names):  # collisions after sanitising
        names = [f"{n}_{i}" for i, n in enumerate(names)]

    lines = [f"\\ {model.name}"]
    lines.append("Maximize" if model.sense is Sense.MAXIMIZE else "Minimize")
    obj_terms, _ = model.objective_terms()
    lines.append(" obj: " + _terms(obj_terms, names))
    lines.append("Subject To")
    for row, (name, terms, lower, upper) in enumerate(model.rows()):
        lines.extend(_row_lines(row, name, terms, lower, upper, names))
    lines.append("Bounds")
    for var, name in zip(variables, names):
        if var.vtype is VarType.BINARY:
            continue  # implied 0/1
        lower = f"{var.lb:g}" if var.lb != -_INF else "-inf"
        upper = f"{var.ub:g}" if var.ub != _INF else "+inf"
        if var.lb == 0.0 and var.ub == _INF:
            continue  # the LP-format default
        lines.append(f" {lower} <= {name} <= {upper}")
    binaries = [name for var, name in zip(variables, names)
                if var.vtype is VarType.BINARY]
    if binaries:
        lines.append("Binaries")
        lines.extend(f" {name}" for name in binaries)
    generals = [name for var, name in zip(variables, names)
                if var.vtype is VarType.INTEGER]
    if generals:
        lines.append("Generals")
        lines.extend(f" {name}" for name in generals)
    lines.append("End")
    return "\n".join(lines) + "\n"


def save_lp(model: Model, path: str | Path) -> None:
    """Write the model to an ``.lp`` file."""
    Path(path).write_text(write_lp(model), encoding="utf-8")


def lp_statistics(document: str) -> dict:
    """Parse an LP document's coarse structure (used by round-trip tests).

    Returns counts of constraints, binaries, generals, and the objective
    sense — enough to verify an export matches its model without a full LP
    parser.
    """
    lines = [line.strip() for line in document.splitlines() if line.strip()]
    if not lines or not lines[-1].startswith("End"):
        raise ModelError("not a complete LP document")
    sense = None
    sections: dict[str, list[str]] = {}
    current = None
    for line in lines:
        if line in ("Maximize", "Minimize"):
            sense = line.lower()
            current = "objective"
            sections[current] = []
        elif line in ("Subject To", "Bounds", "Binaries", "Generals", "End"):
            current = line
            sections.setdefault(current, [])
        elif current is not None:
            sections[current].append(line)
    if sense is None:
        raise ModelError("LP document lacks an objective sense")
    return {
        "sense": sense,
        "num_constraints": len(sections.get("Subject To", [])),
        "num_binaries": len(sections.get("Binaries", [])),
        "num_generals": len(sections.get("Generals", [])),
        "num_bounds": len(sections.get("Bounds", [])),
    }
