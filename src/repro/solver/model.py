"""A small LP/MILP modeling layer compiled to HiGHS.

The paper implements TE-CCL with ``gurobipy``; this module is the offline
substitute. It offers the subset of the gurobipy surface the formulations
need — named variables, linear constraints, a linear objective, time limits
and relative-gap early stop — and compiles to sparse matrices consumed by
:func:`scipy.optimize.milp` (the HiGHS branch-and-bound solver). Pure LPs are
routed through :func:`scipy.optimize.linprog` (HiGHS simplex/IPM), which is
noticeably faster for the LP formulation of §4.1.

Example:
    >>> from repro.solver import Model, Sense, VarType
    >>> m = Model("toy", sense=Sense.MAXIMIZE)
    >>> x = m.add_var(name="x", ub=4)
    >>> y = m.add_var(name="y", ub=4)
    >>> _ = m.add_constr(x + 2 * y <= 6, name="cap")
    >>> m.set_objective(x + y)
    >>> result = m.solve()
    >>> round(result.objective, 6)
    5.0
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Iterable, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from repro.errors import ModelError
from repro.solver.expr import (Constraint, LinExpr, Relation, Sense, Variable,
                               VarType, quicksum)
from repro.solver.options import DEFAULT_OPTIONS, SolverOptions
from repro.solver.result import SolveResult, SolveStatus

_MODEL_COUNTER = itertools.count()

_INF = float("inf")


class Model:
    """A linear optimization model.

    Variables and constraints are appended incrementally; :meth:`solve`
    compiles the model once into sparse matrix form and invokes HiGHS.
    """

    def __init__(self, name: str = "model", sense: Sense = Sense.MINIMIZE):
        self.name = name
        self.sense = sense
        self._model_id = next(_MODEL_COUNTER)
        self._vars: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self._vars if v.vtype is not VarType.CONTINUOUS)

    def add_var(self, lb: float = 0.0, ub: float = _INF,
                vtype: VarType = VarType.CONTINUOUS,
                name: str | None = None) -> Variable:
        """Create a decision variable.

        Args:
            lb: lower bound (default 0, matching flow variables).
            ub: upper bound (default +inf; binaries are clamped to [0, 1]).
            vtype: variable domain.
            name: optional unique name (auto-generated when omitted).
        """
        if vtype is VarType.BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        if lb > ub:
            raise ModelError(f"variable {name!r}: lower bound {lb} > upper bound {ub}")
        index = len(self._vars)
        if name is None:
            name = f"x{index}"
        var = Variable(index, name, vtype, float(lb), float(ub), self._model_id)
        self._vars.append(var)
        return var

    def add_vars(self, keys: Iterable, lb: float = 0.0, ub: float = _INF,
                 vtype: VarType = VarType.CONTINUOUS,
                 name: str = "x") -> dict:
        """Create one variable per key, named ``name[key]`` (gurobipy-style)."""
        return {key: self.add_var(lb=lb, ub=ub, vtype=vtype,
                                  name=f"{name}[{key}]")
                for key in keys}

    def add_constr(self, constraint: Constraint, name: str | None = None) -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constr expects a Constraint (build one with <=, >= or ==); "
                f"got {type(constraint).__name__}")
        self._check_ownership(constraint.expr)
        if name:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], name: str = "") -> list[Constraint]:
        """Register a batch of constraints; names get a running suffix."""
        added = []
        for i, constraint in enumerate(constraints):
            added.append(self.add_constr(
                constraint, name=f"{name}[{i}]" if name else None))
        return added

    def set_objective(self, expr: LinExpr | Variable | float,
                      sense: Sense | None = None) -> None:
        """Set the (linear) objective; replaces any previous objective."""
        if isinstance(expr, Variable):
            expr = expr.to_expr()
        elif isinstance(expr, (int, float)):
            expr = LinExpr({}, float(expr))
        if not isinstance(expr, LinExpr):
            raise ModelError(f"objective must be linear, got {type(expr).__name__}")
        self._check_ownership(expr)
        self._objective = expr
        if sense is not None:
            self.sense = sense

    def _check_ownership(self, expr: LinExpr) -> None:
        n = len(self._vars)
        for idx in expr.terms:
            if idx >= n:
                raise ModelError("expression references a variable from another model")

    # ------------------------------------------------------------------
    # compilation + solve
    # ------------------------------------------------------------------
    def _compile_constraints(self) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
        """Stack all constraints into ``lb <= A x <= ub`` form."""
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        lower = np.empty(len(self._constraints))
        upper = np.empty(len(self._constraints))
        for r, constraint in enumerate(self._constraints):
            expr = constraint.expr
            rhs = -expr.const
            if constraint.relation is Relation.LE:
                lower[r], upper[r] = -_INF, rhs
            elif constraint.relation is Relation.GE:
                lower[r], upper[r] = rhs, _INF
            else:
                lower[r], upper[r] = rhs, rhs
            for idx, coef in expr.terms.items():
                rows.append(r)
                cols.append(idx)
                data.append(coef)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(self._constraints), len(self._vars)))
        return matrix, lower, upper

    def _objective_vector(self) -> np.ndarray:
        c = np.zeros(len(self._vars))
        for idx, coef in self._objective.terms.items():
            c[idx] = coef
        if self.sense is Sense.MAXIMIZE:
            c = -c
        return c

    def solve(self, options: SolverOptions = DEFAULT_OPTIONS) -> SolveResult:
        """Compile and solve; never raises on infeasibility (check status)."""
        if not self._vars:
            raise ModelError("model has no variables")
        start = time.perf_counter()
        if self.num_integer_vars:
            result = self._solve_milp(options)
        else:
            result = self._solve_lp(options)
        result.solve_time = time.perf_counter() - start
        result.stats.setdefault("num_vars", self.num_vars)
        result.stats.setdefault("num_constraints", self.num_constraints)
        result.stats.setdefault("num_integer_vars", self.num_integer_vars)
        return result

    def _solve_milp(self, options: SolverOptions) -> SolveResult:
        c = self._objective_vector()
        integrality = np.array(
            [0 if v.vtype is VarType.CONTINUOUS else 1 for v in self._vars])
        bounds = Bounds(np.array([v.lb for v in self._vars]),
                        np.array([v.ub for v in self._vars]))
        constraints = None
        if self._constraints:
            matrix, lower, upper = self._compile_constraints()
            constraints = LinearConstraint(matrix, lower, upper)
        res = milp(c, constraints=constraints, integrality=integrality,
                   bounds=bounds, options=options.to_scipy())
        return self._wrap(res, options, is_mip=True)

    def _solve_lp(self, options: SolverOptions) -> SolveResult:
        c = self._objective_vector()
        a_ub_rows, b_ub, a_eq_rows, b_eq = [], [], [], []
        ub_idx, eq_idx = [], []
        for r, constraint in enumerate(self._constraints):
            expr = constraint.expr
            rhs = -expr.const
            if constraint.relation is Relation.LE:
                a_ub_rows.append((expr.terms, 1.0))
                b_ub.append(rhs)
                ub_idx.append(r)
            elif constraint.relation is Relation.GE:
                a_ub_rows.append((expr.terms, -1.0))
                b_ub.append(-rhs)
                ub_idx.append(r)
            else:
                a_eq_rows.append((expr.terms, 1.0))
                b_eq.append(rhs)
                eq_idx.append(r)

        def build(rows: list) -> sparse.csr_matrix | None:
            if not rows:
                return None
            ri, ci, di = [], [], []
            for r, (terms, sign) in enumerate(rows):
                for idx, coef in terms.items():
                    ri.append(r)
                    ci.append(idx)
                    di.append(sign * coef)
            return sparse.csr_matrix((di, (ri, ci)),
                                     shape=(len(rows), len(self._vars)))

        lp_options: dict = {"disp": options.verbose,
                            "presolve": options.presolve}
        if options.time_limit is not None:
            lp_options["time_limit"] = float(options.time_limit)
        res = linprog(c, A_ub=build(a_ub_rows),
                      b_ub=np.array(b_ub) if b_ub else None,
                      A_eq=build(a_eq_rows),
                      b_eq=np.array(b_eq) if b_eq else None,
                      bounds=[(v.lb, None if v.ub == _INF else v.ub)
                              for v in self._vars],
                      method=options.resolve_lp_method(len(self._vars)),
                      options=lp_options)
        return self._wrap(res, options, is_mip=False)

    def _wrap(self, res, options: SolverOptions, is_mip: bool) -> SolveResult:
        values = np.asarray(res.x) if res.x is not None else None
        objective = None
        if values is not None:
            objective = self._objective.const + sum(
                coef * float(values[idx])
                for idx, coef in self._objective.terms.items())
        gap = getattr(res, "mip_gap", None)
        if gap is not None:
            gap = float(gap)
        status = _map_status(res.status, values is not None,
                             is_mip=is_mip, gap=gap, options=options)
        return SolveResult(status=status, objective=objective, values=values,
                           solve_time=0.0, mip_gap=gap,
                           message=str(getattr(res, "message", "")),
                           stats={"backend_status": int(res.status)})

    # ------------------------------------------------------------------
    # debugging helpers
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line description of the model size (useful in logs)."""
        return (f"{self.name}: {self.num_vars} vars "
                f"({self.num_integer_vars} integer), "
                f"{self.num_constraints} constraints, {self.sense.value}")


def _map_status(code: int, has_values: bool, *, is_mip: bool,
                gap: float | None, options: SolverOptions) -> SolveStatus:
    """Map scipy/HiGHS status codes onto :class:`SolveStatus`.

    scipy code 0 = optimal, 1 = iteration/time/node limit, 2 = infeasible,
    3 = unbounded, 4 = other.
    """
    if code == 0:
        # HiGHS reports code 0 when it stops at the requested mip_rel_gap too;
        # distinguish a genuine proof from a gap-limited stop for callers that
        # care (the paper reports "early stop" results separately).
        if is_mip and gap is not None and options.mip_gap > 0 and gap > 1e-9:
            return SolveStatus.GAP_LIMIT
        return SolveStatus.OPTIMAL
    if code == 1:
        return SolveStatus.TIME_LIMIT if has_values else SolveStatus.ERROR
    if code == 2:
        return SolveStatus.INFEASIBLE
    if code == 3:
        return SolveStatus.UNBOUNDED
    return SolveStatus.ERROR


__all__ = ["Model", "Sense", "VarType", "Variable", "LinExpr", "Constraint",
           "quicksum", "SolverOptions", "SolveResult", "SolveStatus"]
