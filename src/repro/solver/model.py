"""A small LP/MILP modeling layer compiled to HiGHS.

The paper implements TE-CCL with ``gurobipy``; this module is the offline
substitute. It offers the subset of the gurobipy surface the formulations
need — named variables, linear constraints, a linear objective, time limits
and relative-gap early stop — and compiles to sparse matrices consumed by
:func:`scipy.optimize.milp` (the HiGHS branch-and-bound solver). Pure LPs are
routed through :func:`scipy.optimize.linprog` (HiGHS simplex/IPM), which is
noticeably faster for the LP formulation of §4.1.

Two construction paths feed the same compiled form:

* the **expression path** (:meth:`Model.add_var`, :meth:`Model.add_constr`)
  builds gurobipy-style :class:`LinExpr` objects — convenient, used by the
  small/ablation models and the A* round models;
* the **bulk path** (:meth:`Model.add_var_array`,
  :meth:`Model.add_constr_coo`, :meth:`Model.set_objective_array`) appends
  NumPy COO triplets straight into the compiled-matrix buffers with no
  per-term Python objects — the fast path the LP/MILP formulations use on
  large instances.

Both paths append *row blocks* in call order; :meth:`Model.compile` stacks
the blocks once and caches the result, so repeated solves of an unchanged
model do not re-stack constraints.

For the incremental re-solve engine the model is also *extendable*:
:meth:`Model.extend` freezes the current stacked matrix as an immutable
prefix, after which new variables/row blocks append and
:meth:`Model.add_coo_terms` may patch coefficients into already-stacked rows
(epoch-tagged constraint families gaining terms as the horizon grows). The
next compile stacks only the suffix onto the cached prefix instead of
re-stacking everything. :meth:`Model.set_var_bounds` mutates bounds without
touching the matrix cache at all, and :meth:`Model.solve` accepts a
:class:`WarmStart` captured from a prior :class:`SolveResult`.

Example:
    >>> from repro.solver import Model, Sense, VarType
    >>> m = Model("toy", sense=Sense.MAXIMIZE)
    >>> x = m.add_var(name="x", ub=4)
    >>> y = m.add_var(name="y", ub=4)
    >>> _ = m.add_constr(x + 2 * y <= 6, name="cap")
    >>> m.set_objective(x + y)
    >>> result = m.solve()
    >>> round(result.objective, 6)
    5.0
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from repro.errors import ModelError
from repro.obs.trace import span as _obs_span
from repro.solver.expr import (Constraint, LinExpr, Relation, Sense, Variable,
                               VarType, quicksum)
from repro.solver.options import DEFAULT_OPTIONS, SolverOptions
from repro.solver.result import SolveResult, SolveStatus, WarmStart

_MODEL_COUNTER = itertools.count()

_INF = float("inf")

#: linprog methods that consume an ``x0`` primal seed. The HiGHS methods do
#: not (scipy removed the only one that did, ``revised simplex``, in 1.11);
#: the set stays so a capable method is picked up automatically if scipy
#: grows one.
_LINPROG_X0_METHODS = frozenset({"revised simplex"})


@dataclass(frozen=True)
class _RowBlock:
    """One batch of compiled constraint rows in ``lb <= A x <= ub`` form.

    ``rows`` holds block-local row ids; duplicate ``(row, col)`` entries sum,
    matching :meth:`LinExpr.add_term` accumulation semantics. A *patch*
    block (``global_rows=True``) introduces no rows of its own: its row ids
    are global indices into already-stacked rows, and its entries sum into
    them — how an epoch-tagged constraint family gains terms when the
    horizon grows (:meth:`Model.add_coo_terms`).
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    names: list[str] | None = None
    global_rows: bool = False

    @property
    def num_rows(self) -> int:
        return len(self.lower)


@dataclass(frozen=True)
class CompiledModel:
    """The matrix form of a model: ``row_lower <= A x <= row_upper``.

    ``c``/``obj_const`` describe the objective as written (sense **not**
    applied — minimisation backends negate for MAXIMIZE themselves).
    """

    A: sparse.csr_matrix
    row_lower: np.ndarray
    row_upper: np.ndarray
    c: np.ndarray
    obj_const: float
    col_lower: np.ndarray
    col_upper: np.ndarray
    integrality: np.ndarray
    sense: Sense

    def canonical(self) -> tuple:
        """A normalised tuple for structural comparison of two models.

        Duplicate COO entries are summed and explicit zeros dropped on both
        sides, so the expression path and the bulk path compare equal when
        they describe the same mathematical model.
        """
        matrix = self.A.copy()
        matrix.sum_duplicates()
        matrix.eliminate_zeros()
        matrix.sort_indices()
        return (matrix.shape, matrix.indptr, matrix.indices, matrix.data,
                self.row_lower, self.row_upper, self.c, self.obj_const,
                self.col_lower, self.col_upper, self.integrality,
                self.sense)


def compiled_equal(a: "CompiledModel", b: "CompiledModel") -> bool:
    """Exact structural equality of two compiled models."""
    for x, y in zip(a.canonical(), b.canonical()):
        if isinstance(x, np.ndarray) or isinstance(y, np.ndarray):
            if not np.array_equal(np.asarray(x), np.asarray(y)):
                return False
        elif x != y:
            return False
    return True


class Model:
    """A linear optimization model.

    Variables and constraints are appended incrementally; :meth:`solve`
    compiles the model into sparse matrix form (cached between solves) and
    invokes HiGHS.
    """

    def __init__(self, name: str = "model", sense: Sense = Sense.MINIMIZE):
        self.name = name
        self.sense = sense
        self._model_id = next(_MODEL_COUNTER)
        # column stores (one entry per variable; the single source of truth)
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._vtype: list[VarType] = []
        self._num_integer = 0
        self._var_names: dict[int, str] = {}  # explicit names only
        # row stores: finalized COO blocks + not-yet-flushed expression rows
        self._blocks: list[_RowBlock] = []
        self._num_rows = 0
        self._pending: list[Constraint] = []
        # objective: exactly one of the two representations is active
        self._objective: LinExpr = LinExpr()
        self._obj_array: tuple[np.ndarray, np.ndarray, float] | None = None
        # compile cache, keyed on (num rows, num blocks, num vars)
        self._matrix_cache: tuple[tuple[int, int, int],
                                  sparse.csr_matrix,
                                  np.ndarray, np.ndarray] | None = None
        # frozen compile prefix set by extend(): (num blocks, num rows,
        # num vars, stacked CSR, row lower, row upper)
        self._prefix: tuple[int, int, int, sparse.csr_matrix,
                            np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self._lb)

    @property
    def num_constraints(self) -> int:
        return self._num_rows + len(self._pending)

    @property
    def num_integer_vars(self) -> int:
        return self._num_integer

    def add_var(self, lb: float = 0.0, ub: float = _INF,
                vtype: VarType = VarType.CONTINUOUS,
                name: str | None = None) -> Variable:
        """Create a decision variable.

        Args:
            lb: lower bound (default 0, matching flow variables).
            ub: upper bound (default +inf; binaries are clamped to [0, 1]).
            vtype: variable domain.
            name: optional unique name (auto-generated when omitted).
        """
        if vtype is VarType.BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        if lb > ub:
            raise ModelError(f"variable {name!r}: lower bound {lb} > upper bound {ub}")
        index = len(self._lb)
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._vtype.append(vtype)
        if vtype is not VarType.CONTINUOUS:
            self._num_integer += 1
        if name is None:
            name = f"x{index}"
        else:
            self._var_names[index] = name
        self._matrix_cache = None  # matrix width changed
        return Variable(index, name, vtype, float(lb), float(ub),
                        self._model_id)

    def add_vars(self, keys: Iterable, lb: float = 0.0, ub: float = _INF,
                 vtype: VarType = VarType.CONTINUOUS,
                 name: str = "x") -> dict:
        """Create one variable per key, named ``name[key]`` (gurobipy-style)."""
        return {key: self.add_var(lb=lb, ub=ub, vtype=vtype,
                                  name=f"{name}[{key}]")
                for key in keys}

    def add_var_array(self, shape: int | tuple[int, ...],
                      lb: float | np.ndarray = 0.0,
                      ub: float | np.ndarray = _INF,
                      vtype: VarType = VarType.CONTINUOUS,
                      name: str = "x") -> np.ndarray:
        """Create a block of variables; returns their indices as an ndarray.

        No :class:`Variable` objects are built — the returned index array is
        meant for :meth:`add_constr_coo` / :meth:`set_objective_array` index
        arithmetic. ``lb``/``ub`` broadcast against ``shape``. ``name`` is a
        debugging prefix (``name[i]``), not materialised per variable.
        """
        count = int(np.prod(shape)) if isinstance(shape, tuple) else int(shape)
        if count < 0:
            raise ModelError(f"negative variable count {count}")
        start = len(self._lb)
        lb_arr = np.broadcast_to(np.asarray(lb, dtype=float), (count,))
        ub_arr = np.broadcast_to(np.asarray(ub, dtype=float), (count,))
        if vtype is VarType.BINARY:
            lb_arr = np.maximum(lb_arr, 0.0)
            ub_arr = np.minimum(ub_arr, 1.0)
        if np.any(lb_arr > ub_arr):
            bad = int(np.argmax(lb_arr > ub_arr))
            raise ModelError(
                f"variable block {name!r}[{bad}]: lower bound "
                f"{lb_arr[bad]} > upper bound {ub_arr[bad]}")
        self._lb.extend(lb_arr.tolist())
        self._ub.extend(ub_arr.tolist())
        self._vtype.extend([vtype] * count)
        if vtype is not VarType.CONTINUOUS:
            self._num_integer += count
        self._matrix_cache = None
        indices = np.arange(start, start + count, dtype=np.int64)
        return indices.reshape(shape) if isinstance(shape, tuple) else indices

    def var(self, index: int) -> Variable:
        """Materialise a :class:`Variable` handle for any index (bulk vars
        included)."""
        index = int(index)
        if not 0 <= index < len(self._lb):
            raise ModelError(f"variable index {index} out of range")
        return Variable(index, self.var_name(index), self._vtype[index],
                        self._lb[index], self._ub[index], self._model_id)

    def var_name(self, index: int) -> str:
        return self._var_names.get(index, f"x{index}")

    def variables(self) -> Iterable[Variable]:
        """Iterate handle objects for every variable (debug/export use)."""
        return (self.var(i) for i in range(len(self._lb)))

    def add_constr(self, constraint: Constraint, name: str | None = None) -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constr expects a Constraint (build one with <=, >= or ==); "
                f"got {type(constraint).__name__}")
        self._check_ownership(constraint.expr)
        if name:
            constraint.name = name
        self._pending.append(constraint)
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], name: str = "") -> list[Constraint]:
        """Register a batch of constraints; names get a running suffix."""
        added = []
        for i, constraint in enumerate(constraints):
            added.append(self.add_constr(
                constraint, name=f"{name}[{i}]" if name else None))
        return added

    def add_constr_coo(self, rows: Sequence | np.ndarray,
                       cols: Sequence | np.ndarray,
                       data: Sequence | np.ndarray,
                       lb: float | Sequence | np.ndarray,
                       ub: float | Sequence | np.ndarray,
                       num_rows: int | None = None,
                       names: list[str] | None = None) -> int:
        """Append a block of rows as COO triplets: ``lb <= A x <= ub``.

        ``rows`` are block-local (0-based); the block is placed after every
        previously added row. Duplicate ``(row, col)`` entries **sum**,
        matching :meth:`LinExpr.add_term`. A row with no entries is a valid
        all-zero row (the analogue of a constant expression constraint).
        Equality rows use ``lb == ub``; one-sided rows use ``±inf``.

        Returns the global index of the block's first row.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        data = np.asarray(data, dtype=float).ravel()
        if not (len(rows) == len(cols) == len(data)):
            raise ModelError(
                f"COO triplet lengths differ: {len(rows)}/{len(cols)}/"
                f"{len(data)}")
        lower = np.atleast_1d(np.asarray(lb, dtype=float)).ravel()
        upper = np.atleast_1d(np.asarray(ub, dtype=float)).ravel()
        if num_rows is None:
            num_rows = max(len(lower), len(upper),
                           int(rows.max()) + 1 if len(rows) else 0)
        lower = np.broadcast_to(lower, (num_rows,)) if len(lower) != num_rows \
            else lower
        upper = np.broadcast_to(upper, (num_rows,)) if len(upper) != num_rows \
            else upper
        if np.any(lower > upper):
            bad = int(np.argmax(lower > upper))
            raise ModelError(
                f"COO row {bad}: lower bound {lower[bad]} > upper bound "
                f"{upper[bad]}")
        if len(rows) and (rows.min() < 0 or rows.max() >= num_rows):
            raise ModelError("COO row index out of block range")
        if len(cols) and (cols.min() < 0 or cols.max() >= len(self._lb)):
            raise ModelError(
                "COO column index out of range (variable of another model?)")
        self._flush_pending()
        first_row = self._num_rows
        self._blocks.append(_RowBlock(
            rows=rows, cols=cols, data=data,
            lower=np.ascontiguousarray(lower, dtype=float),
            upper=np.ascontiguousarray(upper, dtype=float),
            names=names))
        self._num_rows += num_rows
        self._matrix_cache = None
        return first_row

    def add_coo_terms(self, rows: Sequence | np.ndarray,
                      cols: Sequence | np.ndarray,
                      data: Sequence | np.ndarray) -> None:
        """Sum COO entries into *existing* rows, addressed by global index.

        The extension mechanism for constraint families that span the
        horizon: when a model grows from K to K' epochs, a demand-met row or
        a capacity row at an old epoch gains terms from newly eligible
        variables instead of being rebuilt. Row bounds are untouched;
        duplicate ``(row, col)`` entries sum, as everywhere else.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        data = np.asarray(data, dtype=float).ravel()
        if not (len(rows) == len(cols) == len(data)):
            raise ModelError(
                f"COO triplet lengths differ: {len(rows)}/{len(cols)}/"
                f"{len(data)}")
        if not len(rows):
            return
        self._flush_pending()
        if rows.min() < 0 or rows.max() >= self._num_rows:
            raise ModelError(
                "patch row index out of range (rows must already exist)")
        if cols.min() < 0 or cols.max() >= len(self._lb):
            raise ModelError(
                "patch column index out of range "
                "(variable of another model?)")
        self._blocks.append(_RowBlock(
            rows=rows, cols=cols, data=data,
            lower=np.empty(0), upper=np.empty(0), global_rows=True))
        self._matrix_cache = None

    def set_var_bounds(self, indices: Sequence | np.ndarray,
                       lb: float | Sequence | np.ndarray | None = None,
                       ub: float | Sequence | np.ndarray | None = None,
                       ) -> None:
        """Mutate bounds of existing variables in bulk.

        Bounds live outside the stacked constraint matrix, so this never
        invalidates the compile cache — the mechanism behind bound-restricted
        feasibility probes (fix the late-epoch variables to zero, solve,
        restore) in the incremental horizon search.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if not len(indices):
            return
        if indices.min() < 0 or indices.max() >= len(self._lb):
            raise ModelError("variable index out of range")
        if lb is not None:
            lb_arr = np.broadcast_to(np.asarray(lb, dtype=float),
                                     indices.shape)
            for idx, value in zip(indices.tolist(), lb_arr.tolist()):
                self._lb[idx] = value
        if ub is not None:
            ub_arr = np.broadcast_to(np.asarray(ub, dtype=float),
                                     indices.shape)
            for idx, value in zip(indices.tolist(), ub_arr.tolist()):
                self._ub[idx] = value
        for idx in indices.tolist():
            if self._lb[idx] > self._ub[idx]:
                raise ModelError(
                    f"variable {self.var_name(idx)}: lower bound "
                    f"{self._lb[idx]} > upper bound {self._ub[idx]}")

    def extend(self) -> int:
        """Freeze the current stacked matrix as a reusable compile prefix.

        After this call the model keeps accepting appended variables, row
        blocks and :meth:`add_coo_terms` patches, but the next compile
        stacks only the *new* blocks onto the frozen prefix (columns are
        zero-padded) instead of re-stacking every block from scratch —
        growing a horizon-K model to K' pays for the delta, not the whole
        model. Returns the number of rows in the frozen prefix.
        """
        matrix, lower, upper = self._stacked_matrix()
        self._prefix = (len(self._blocks), self._num_rows, len(self._lb),
                        matrix, lower, upper)
        return self._num_rows

    def set_objective(self, expr: LinExpr | Variable | float,
                      sense: Sense | None = None) -> None:
        """Set the (linear) objective; replaces any previous objective."""
        if isinstance(expr, Variable):
            expr = expr.to_expr()
        elif isinstance(expr, (int, float)):
            expr = LinExpr({}, float(expr))
        if not isinstance(expr, LinExpr):
            raise ModelError(f"objective must be linear, got {type(expr).__name__}")
        self._check_ownership(expr)
        self._objective = expr
        self._obj_array = None
        if sense is not None:
            self.sense = sense

    def set_objective_array(self, indices: Sequence | np.ndarray,
                            coefs: Sequence | np.ndarray,
                            const: float = 0.0,
                            sense: Sense | None = None) -> None:
        """Set the objective from parallel index/coefficient arrays.

        Duplicate indices sum (matching repeated :meth:`LinExpr.add_term`).
        Replaces any previously set objective.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        coefs = np.asarray(coefs, dtype=float).ravel()
        if len(indices) != len(coefs):
            raise ModelError(
                f"objective index/coef lengths differ: {len(indices)}/"
                f"{len(coefs)}")
        if len(indices) and (indices.min() < 0
                             or indices.max() >= len(self._lb)):
            raise ModelError("objective index out of range")
        self._obj_array = (indices, coefs, float(const))
        self._objective = LinExpr()
        if sense is not None:
            self.sense = sense

    def _check_ownership(self, expr: LinExpr) -> None:
        if expr.model_id is not None and expr.model_id != self._model_id:
            raise ModelError("expression references a variable from another model")
        n = len(self._lb)
        for idx in expr.terms:
            if idx >= n:
                raise ModelError("expression references a variable from another model")

    # ------------------------------------------------------------------
    # compilation + solve
    # ------------------------------------------------------------------
    def _flush_pending(self) -> None:
        """Convert queued expression constraints into one COO block."""
        if not self._pending:
            return
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        n = len(self._pending)
        lower = np.empty(n)
        upper = np.empty(n)
        names: list[str] = []
        for r, constraint in enumerate(self._pending):
            expr = constraint.expr
            rhs = -expr.const
            if constraint.relation is Relation.LE:
                lower[r], upper[r] = -_INF, rhs
            elif constraint.relation is Relation.GE:
                lower[r], upper[r] = rhs, _INF
            else:
                lower[r], upper[r] = rhs, rhs
            names.append(constraint.name)
            for idx, coef in expr.terms.items():
                rows.append(r)
                cols.append(idx)
                data.append(coef)
        self._blocks.append(_RowBlock(
            rows=np.asarray(rows, dtype=np.int64),
            cols=np.asarray(cols, dtype=np.int64),
            data=np.asarray(data, dtype=float),
            lower=lower, upper=upper, names=names))
        self._num_rows += n
        self._pending = []
        self._matrix_cache = None

    @staticmethod
    def _stack_blocks(blocks: list[_RowBlock], start_row: int,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray, np.ndarray]:
        """COO triplets + bounds for a run of blocks, rows offset in call
        order from ``start_row`` (patch blocks keep their global rows)."""
        row_parts, col_parts, dat_parts = [], [], []
        lo_parts, up_parts = [], []
        offset = start_row
        for block in blocks:
            if block.global_rows:
                row_parts.append(block.rows)
            else:
                row_parts.append(block.rows + offset)
                lo_parts.append(block.lower)
                up_parts.append(block.upper)
                offset += block.num_rows
            col_parts.append(block.cols)
            dat_parts.append(block.data)
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0)
        return (np.concatenate(row_parts) if row_parts else empty_i,
                np.concatenate(col_parts) if col_parts else empty_i,
                np.concatenate(dat_parts) if dat_parts else empty_f,
                np.concatenate(lo_parts) if lo_parts else empty_f,
                np.concatenate(up_parts) if up_parts else empty_f)

    def _stacked_matrix(self) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
        """Stack all row blocks into one ``lb <= A x <= ub`` system (cached).

        With an :meth:`extend` prefix frozen, only the blocks appended since
        are stacked; the prefix matrix is zero-padded to the grown shape and
        the suffix (including patches into prefix rows) is summed on top.
        """
        self._flush_pending()
        key = (self._num_rows, len(self._blocks), len(self._lb))
        if self._matrix_cache is not None and self._matrix_cache[0] == key:
            return self._matrix_cache[1], self._matrix_cache[2], \
                self._matrix_cache[3]
        shape = (self._num_rows, len(self._lb))
        if self._prefix is not None:
            nblocks, nrows, _nvars, pmat, plo, pup = self._prefix
            rows, cols, data, lo, up = self._stack_blocks(
                self._blocks[nblocks:], nrows)
            matrix = pmat.copy()
            matrix.resize(shape)
            if len(rows):
                matrix = (matrix + sparse.csr_matrix(
                    (data, (rows, cols)), shape=shape)).tocsr()
            matrix.sum_duplicates()
            lower = np.concatenate([plo, lo])
            upper = np.concatenate([pup, up])
        else:
            rows, cols, data, lower, upper = self._stack_blocks(
                self._blocks, 0)
            matrix = sparse.csr_matrix((data, (rows, cols)), shape=shape)
            matrix.sum_duplicates()
        self._matrix_cache = (key, matrix, lower, upper)
        return matrix, lower, upper

    def _objective_arrays(self) -> tuple[np.ndarray, np.ndarray, float]:
        if self._obj_array is not None:
            return self._obj_array
        terms = self._objective.terms
        return (np.fromiter(terms.keys(), dtype=np.int64, count=len(terms)),
                np.fromiter(terms.values(), dtype=float, count=len(terms)),
                self._objective.const)

    def _objective_vector(self) -> np.ndarray:
        indices, coefs, _ = self._objective_arrays()
        c = np.zeros(len(self._lb))
        np.add.at(c, indices, coefs)
        if self.sense is Sense.MAXIMIZE:
            c = -c
        return c

    def compile(self) -> CompiledModel:
        """Compile to the canonical matrix form (sense not applied to ``c``).

        The constraint stack is cached across calls; only newly added rows
        trigger a re-stack. This is also the comparison point for the
        differential tests: two models describing the same mathematics
        compile to :meth:`CompiledModel.canonical`-equal tuples regardless
        of which construction path built them.
        """
        with _obs_span("solver.compile", vars=self.num_vars,
                       rows=self.num_constraints):
            matrix, lower, upper = self._stacked_matrix()
            indices, coefs, const = self._objective_arrays()
            c = np.zeros(len(self._lb))
            np.add.at(c, indices, coefs)
            return CompiledModel(
                A=matrix, row_lower=lower, row_upper=upper, c=c,
                obj_const=const,
                col_lower=np.asarray(self._lb, dtype=float),
                col_upper=np.asarray(self._ub, dtype=float),
                integrality=np.fromiter(
                    (0 if v is VarType.CONTINUOUS else 1
                     for v in self._vtype),
                    dtype=np.int64, count=len(self._vtype)),
                sense=self.sense)

    def solve(self, options: SolverOptions = DEFAULT_OPTIONS,
              warm_start: WarmStart | None = None) -> SolveResult:
        """Compile and solve; never raises on infeasibility (check status).

        ``warm_start`` seeds the backend with a prior solution *where the
        backend supports it*; otherwise it is recorded in
        ``result.stats["warm_start"]`` as ``"unsupported"`` and the solve
        proceeds cold (the scipy HiGHS wrappers accept no primal seed — the
        incremental engine's savings come from model reuse instead).
        """
        if not self._lb:
            raise ModelError("model has no variables")
        start = time.perf_counter()
        if self._num_integer:
            result = self._solve_milp(options, warm_start)
        else:
            result = self._solve_lp(options, warm_start)
        result.solve_time = time.perf_counter() - start
        result.stats.setdefault("num_vars", self.num_vars)
        result.stats.setdefault("num_constraints", self.num_constraints)
        result.stats.setdefault("num_integer_vars", self.num_integer_vars)
        return result

    def check_point(self, values: np.ndarray, tol: float = 1e-6) -> bool:
        """Is ``values`` feasible for the current model (within ``tol``)?

        Used to vet a warm-start donor before trusting it as a feasibility
        certificate; costs one sparse mat-vec, not a solve.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self._lb),):
            return False
        if np.any(values < np.asarray(self._lb) - tol) \
                or np.any(values > np.asarray(self._ub) + tol):
            return False
        matrix, lower, upper = self._stacked_matrix()
        if not matrix.shape[0]:
            return True
        row_values = matrix @ values
        return bool(np.all(row_values >= lower - tol)
                    and np.all(row_values <= upper + tol))

    def _solve_milp(self, options: SolverOptions,
                    warm_start: WarmStart | None = None) -> SolveResult:
        c = self._objective_vector()
        compiled = self.compile()
        constraints = None
        if self.num_constraints:
            matrix, lower, upper = self._stacked_matrix()
            constraints = LinearConstraint(matrix, lower, upper)
        with _obs_span("solver.backend", backend="highs-milp",
                       vars=self.num_vars, rows=self.num_constraints) as sp:
            res = milp(c, constraints=constraints,
                       integrality=compiled.integrality,
                       bounds=Bounds(compiled.col_lower, compiled.col_upper),
                       options=options.to_scipy())
            sp.set_attr(status=int(res.status))
        wrapped = self._wrap(res, options, is_mip=True)
        if warm_start is not None:
            # scipy.optimize.milp accepts no incumbent seed.
            wrapped.stats["warm_start"] = "unsupported"
        return wrapped

    def _solve_lp(self, options: SolverOptions,
                  warm_start: WarmStart | None = None) -> SolveResult:
        with _obs_span("solver.prepare", vars=self.num_vars,
                       rows=self.num_constraints):
            c = self._objective_vector()
            matrix, lower, upper = self._stacked_matrix()
            # linprog wants A_ub/b_ub and A_eq/b_eq; split two-sided rows.
            finite_lo = lower > -_INF
            finite_up = upper < _INF
            eq_mask = finite_lo & finite_up & (lower == upper)
            up_mask = finite_up & ~eq_mask
            lo_mask = finite_lo & ~eq_mask
            a_ub = b_ub = a_eq = b_eq = None
            if np.any(up_mask) or np.any(lo_mask):
                parts = []
                rhs_parts = []
                if np.any(up_mask):
                    parts.append(matrix[up_mask])
                    rhs_parts.append(upper[up_mask])
                if np.any(lo_mask):
                    parts.append(-matrix[lo_mask])
                    rhs_parts.append(-lower[lo_mask])
                a_ub = sparse.vstack(parts, format="csr") \
                    if len(parts) > 1 else parts[0]
                b_ub = np.concatenate(rhs_parts)
            if np.any(eq_mask):
                a_eq = matrix[eq_mask]
                b_eq = lower[eq_mask]
            lp_options: dict = {"disp": options.verbose,
                                "presolve": options.presolve}
            if options.time_limit is not None:
                lp_options["time_limit"] = float(options.time_limit)
            method = options.resolve_lp_method(len(self._lb))
            x0 = None
            warm_status = None
            if warm_start is not None:
                if method in _LINPROG_X0_METHODS:
                    x0 = warm_start.padded(len(self._lb))
                    warm_status = "applied"
                else:
                    warm_status = "unsupported"
        with _obs_span("solver.backend", backend=f"highs-lp:{method}",
                       vars=self.num_vars, rows=self.num_constraints) as sp:
            res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                          bounds=np.column_stack([
                              np.asarray(self._lb),
                              np.asarray(self._ub)]),
                          method=method, x0=x0,
                          options=lp_options)
            sp.set_attr(status=int(res.status))
        wrapped = self._wrap(res, options, is_mip=False)
        if warm_status is not None:
            wrapped.stats["warm_start"] = warm_status
        return wrapped

    def _wrap(self, res, options: SolverOptions, is_mip: bool) -> SolveResult:
        values = np.asarray(res.x) if res.x is not None else None
        objective = None
        if values is not None:
            indices, coefs, const = self._objective_arrays()
            objective = const + float(coefs @ values[indices]) \
                if len(indices) else const
        gap = getattr(res, "mip_gap", None)
        if gap is not None:
            gap = float(gap)
        status = _map_status(res.status, values is not None,
                             is_mip=is_mip, gap=gap, options=options)
        return SolveResult(status=status, objective=objective, values=values,
                           solve_time=0.0, mip_gap=gap,
                           message=str(getattr(res, "message", "")),
                           stats={"backend_status": int(res.status)})

    # ------------------------------------------------------------------
    # debugging helpers
    # ------------------------------------------------------------------
    def rows(self) -> Iterable[tuple[str, dict[int, float], float, float]]:
        """Iterate rows as ``(name, terms, lower, upper)`` across all blocks.

        Reconstructs per-row term dicts from the COO buffers (patch blocks
        folded into the rows they target) — meant for export/inspection,
        not hot paths.
        """
        self._flush_pending()
        terms: list[dict[int, float]] = [dict()
                                         for _ in range(self._num_rows)]
        names = [""] * self._num_rows
        lower = np.empty(self._num_rows)
        upper = np.empty(self._num_rows)
        offset = 0
        for block in self._blocks:
            base = 0 if block.global_rows else offset
            for r, col, coef in zip(block.rows.tolist(),
                                    block.cols.tolist(),
                                    block.data.tolist()):
                terms[base + r][col] = terms[base + r].get(col, 0.0) + coef
            if not block.global_rows:
                lower[offset:offset + block.num_rows] = block.lower
                upper[offset:offset + block.num_rows] = block.upper
                if block.names:
                    names[offset:offset + block.num_rows] = block.names
                offset += block.num_rows
        for r in range(self._num_rows):
            yield names[r], terms[r], float(lower[r]), float(upper[r])

    def objective_terms(self) -> tuple[dict[int, float], float]:
        """The objective as ``(terms, const)`` regardless of how it was set."""
        indices, coefs, const = self._objective_arrays()
        terms: dict[int, float] = {}
        for idx, coef in zip(indices.tolist(), coefs.tolist()):
            terms[idx] = terms.get(idx, 0.0) + coef
        return terms, const

    def summary(self) -> str:
        """One-line description of the model size (useful in logs)."""
        return (f"{self.name}: {self.num_vars} vars "
                f"({self.num_integer_vars} integer), "
                f"{self.num_constraints} constraints, {self.sense.value}")


def _map_status(code: int, has_values: bool, *, is_mip: bool,
                gap: float | None, options: SolverOptions) -> SolveStatus:
    """Map scipy/HiGHS status codes onto :class:`SolveStatus`.

    scipy code 0 = optimal, 1 = iteration/time/node limit, 2 = infeasible,
    3 = unbounded, 4 = other.
    """
    if code == 0:
        # HiGHS reports code 0 when it stops at the requested mip_rel_gap too;
        # distinguish a genuine proof from a gap-limited stop for callers that
        # care (the paper reports "early stop" results separately).
        if is_mip and gap is not None and options.mip_gap > 0 and gap > 1e-9:
            return SolveStatus.GAP_LIMIT
        return SolveStatus.OPTIMAL
    if code == 1:
        return SolveStatus.TIME_LIMIT if has_values else SolveStatus.ERROR
    if code == 2:
        return SolveStatus.INFEASIBLE
    if code == 3:
        return SolveStatus.UNBOUNDED
    return SolveStatus.ERROR


__all__ = ["Model", "CompiledModel", "compiled_equal", "Sense", "VarType",
           "Variable", "LinExpr", "Constraint", "quicksum", "SolverOptions",
           "SolveResult", "SolveStatus", "WarmStart"]
