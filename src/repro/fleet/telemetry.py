"""Link-metric telemetry: the fleet control plane's sensory input.

A telemetry source is anything that yields :class:`LinkSample` records —
per-link achieved bandwidth, latency, and loss, the shape a netconf-style
collector emits. The control plane never asks *why* a link is slow; it only
folds samples into the estimator and lets hysteresis decide what is real.

Two sources ship here:

* :class:`SyntheticTelemetry` — a seeded generator over the declared
  fabric, combining slow random-walk drift
  (:class:`repro.simulate.DriftModel`, the perturbation module's scenario
  generator), measurement noise, and scripted :class:`LinkEvent`\\ s
  (degradations, failures, flaps). This is the test double every
  adaptation experiment in the repo replays from a seed.
* :class:`TraceTelemetry` — replays a recorded list of samples, grouped by
  collection timestamp; the bridge to real collector dumps.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass

from repro.errors import FleetError
from repro.simulate.perturb import DriftModel, drift_step
from repro.topology.topology import Topology


@dataclass(frozen=True)
class LinkSample:
    """One measurement of one directed link.

    Attributes:
        link: the ``(src, dst)`` pair the sample describes.
        time: collection timestamp in seconds (scenario time, not wall
            clock — the whole control plane is clocked by sample times so
            experiments replay deterministically).
        bandwidth: achieved bytes/second.
        latency: observed one-way latency in seconds.
        loss: fraction of probes lost in the interval; ``1.0`` marks a
            link that answered nothing (down, as far as telemetry can see).
    """

    link: tuple[int, int]
    time: float
    bandwidth: float
    latency: float = 0.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        # finiteness first: NaN slips through ordinary comparisons and
        # would poison the estimator's EWMA for the link permanently
        for name in ("time", "bandwidth", "latency", "loss"):
            if not math.isfinite(getattr(self, name)):
                raise FleetError(f"sample for link {self.link}: "
                                 f"{name} must be finite")
        if self.bandwidth < 0:
            raise FleetError(f"sample for link {self.link}: "
                             "bandwidth must be non-negative")
        if not 0.0 <= self.loss <= 1.0:
            raise FleetError(f"sample for link {self.link}: "
                             "loss must be in [0, 1]")

    def to_dict(self) -> dict:
        return {"src": self.link[0], "dst": self.link[1],
                "time": self.time, "bandwidth": self.bandwidth,
                "latency": self.latency, "loss": self.loss}

    @staticmethod
    def from_dict(data: dict) -> "LinkSample":
        try:
            return LinkSample(
                link=(int(data["src"]), int(data["dst"])),
                time=float(data["time"]),
                bandwidth=float(data["bandwidth"]),
                latency=float(data.get("latency", 0.0)),
                loss=float(data.get("loss", 0.0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed link sample: {exc}") from exc


class TelemetrySource(abc.ABC):
    """A pluggable stream of link samples.

    ``poll()`` advances one collection interval and returns its samples;
    an empty list means the stream is (currently) dry, which the fleet
    daemon treats as "nothing changed".
    """

    @abc.abstractmethod
    def poll(self) -> list[LinkSample]:
        """Collect the next interval's samples."""


@dataclass(frozen=True)
class LinkEvent:
    """A scripted fabric event for synthetic scenarios.

    Attributes:
        at: scenario time the event takes effect.
        link: the directed link it affects.
        factor: achieved-bandwidth multiplier while active (``0.5`` =
            the link runs at half its declared capacity). Ignored when
            ``down``.
        down: the link stops answering entirely (bandwidth 0, loss 1).
        until: end of the event (``None`` = permanent). A flap is one
            event with a short ``[at, until)`` window — or several.
    """

    at: float
    link: tuple[int, int]
    factor: float = 1.0
    down: bool = False
    until: float | None = None

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise FleetError("event factor must be positive")
        if self.until is not None and self.until <= self.at:
            raise FleetError("event must end after it starts")

    def active_at(self, time: float) -> bool:
        return self.at <= time and (self.until is None or time < self.until)


class SyntheticTelemetry(TelemetrySource):
    """Seeded synthetic telemetry over a declared fabric.

    Every ``poll()`` emits one sample per link at ``step × period``
    scenario seconds: declared capacity, shaped by the random-walk drift
    (when a :class:`~repro.simulate.DriftModel` is given), scaled by every
    active scripted event, and blurred by multiplicative Gaussian
    measurement noise. Two instances built with the same arguments and
    seed produce identical streams.

    Args:
        topology: the declared fabric to sample.
        period: seconds between collections.
        drift: optional slow capacity drift (``None`` = stable fabric).
        noise: std-dev of the multiplicative measurement noise.
        events: scripted degradations/failures/flaps.
        seed: seeds the internal generator; ignored when ``rng`` is given.
        rng: an explicit generator, threaded through drift and noise.
    """

    def __init__(self, topology: Topology, *, period: float = 1.0,
                 drift: DriftModel | None = None, noise: float = 0.0,
                 events: tuple[LinkEvent, ...] | list[LinkEvent] = (),
                 seed: int = 0, rng: random.Random | None = None) -> None:
        if period <= 0:
            raise FleetError("telemetry period must be positive")
        if noise < 0:
            raise FleetError("telemetry noise must be non-negative")
        for event in events:
            if event.link not in topology.links:
                raise FleetError(
                    f"scripted event targets unknown link {event.link}")
        self.topology = topology
        self.period = period
        self.drift = drift
        self.noise = noise
        self.events = tuple(events)
        self._rng = rng if rng is not None else random.Random(seed)
        self._factors = {key: 1.0 for key in topology.links}
        self._step = 0

    @property
    def now(self) -> float:
        """Scenario time of the next collection."""
        return self._step * self.period

    def poll(self) -> list[LinkSample]:
        time = self.now
        if self.drift is not None:
            self._factors = drift_step(self._factors, self.drift, self._rng)
        samples = []
        for key in sorted(self.topology.links):
            link = self.topology.links[key]
            down = False
            factor = self._factors[key]
            for event in self.events:
                if event.link == key and event.active_at(time):
                    down = down or event.down
                    factor *= event.factor
            if down:
                samples.append(LinkSample(link=key, time=time, bandwidth=0.0,
                                          latency=link.alpha, loss=1.0))
                continue
            bandwidth = link.capacity * factor
            if self.noise > 0:
                bandwidth *= max(0.0, self._rng.gauss(1.0, self.noise))
            samples.append(LinkSample(link=key, time=time,
                                      bandwidth=bandwidth,
                                      latency=link.alpha, loss=0.0))
        self._step += 1
        return samples


class TraceTelemetry(TelemetrySource):
    """Replay a recorded sample list, one collection timestamp per poll."""

    def __init__(self, samples: list[LinkSample]) -> None:
        self._samples = sorted(samples, key=lambda s: (s.time, s.link))
        self._cursor = 0

    def poll(self) -> list[LinkSample]:
        if self._cursor >= len(self._samples):
            return []
        time = self._samples[self._cursor].time
        batch = []
        while (self._cursor < len(self._samples)
               and self._samples[self._cursor].time == time):
            batch.append(self._samples[self._cursor])
            self._cursor += 1
        return batch

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._samples)
