"""The adaptation daemon: estimator transitions → cost-gated replans.

This closes the paper's loop (§2, §5.4): the planner can *react* to
failures, congestion, and heterogeneous bandwidth instead of shipping one
fixed algorithm — but only if something watches the fabric and decides when
a re-solve pays. That something is the :class:`AdaptationController`:

1. poll telemetry, fold it into the :class:`~repro.fleet.FabricEstimator`;
2. on a health transition, *predict* what the live fabric does to each
   job's active schedule (a dead link breaks it; a degraded link stretches
   it by the worst capacity ratio along its used links);
3. gate replan-vs-keep on cost: the predicted finish-time regression,
   amortised over the iterations a plan serves, must outweigh the
   predicted re-solve cost (the prior solve time is the estimate);
4. route replans through the :class:`~repro.service.Planner` — warm-seeded
   by each job's active schedule (``warm_from=``), batched so a fabric
   event fans out across the solve pool;
5. vet every adapted schedule through the conformance oracle *before*
   activation; a failed replay rolls back to the incumbent. The registry
   enforces the invariant: a non-conformant schedule can never activate.

The model of a "job" here is a recurring collective (one training step's
ALLREDUCE, say): adaptation replans *future* iterations; rescuing the
iteration in flight is :func:`repro.failures.repair_schedule`'s business.
"""

from __future__ import annotations

import enum
import threading
import time as _time
from collections import deque
from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.schedule import Schedule
from repro.core.solve import Method, SynthesisResult
from repro.errors import FleetError
from repro.fleet.estimate import (FabricEstimator, LinkHealth,
                                  LinkTransition)
from repro.fleet.wal import WriteAheadLog
from repro.obs import recorder as _flight
from repro.obs import trace as _obs
from repro.obs.alerts import Alert, AlertEngine, AlertRule
from repro.obs.metrics import MetricsRegistry
from repro.fleet.telemetry import TelemetrySource
from repro.service.cache import make_envelope, open_envelope
from repro.service.fingerprint import fingerprint_canonical
from repro.service.planner import Planner
from repro.service.schema import (REGISTRY_STATE_VERSION, PlanRequest,
                                  check_registry_state)
from repro.topology.topology import Topology


@dataclass
class FleetJob:
    """One recurring collective the fleet keeps planned.

    Attributes:
        name: registry key; unique per controller.
        demand: the collective's demand matrix.
        config: synthesis knobs (chunk size, switch model, ...).
        method: formulation override (AUTO = the paper's selection rule).
        priority: relative weight for capacity shares (the orchestrator's
            admission uses it; the controller itself treats jobs equally).
    """

    name: str
    demand: Demand
    config: TecclConfig
    method: Method = Method.AUTO
    priority: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("a fleet job needs a name")
        if self.priority <= 0:
            raise FleetError(f"job {self.name!r}: priority must be positive")

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {"name": self.name, "demand": self.demand.to_dict(),
                "config": self.config.to_dict(),
                "method": self.method.value, "priority": self.priority}

    @staticmethod
    def from_dict(data: dict) -> "FleetJob":
        try:
            return FleetJob(
                name=str(data["name"]),
                demand=Demand.from_dict(data["demand"]),
                config=TecclConfig.from_dict(data["config"]),
                method=Method(data.get("method", Method.AUTO.value)),
                priority=float(data.get("priority", 1.0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed fleet job document: {exc}") from exc


@dataclass(frozen=True)
class CostGate:
    """Replan-vs-keep: is the predicted regression worth a re-solve?

    A plan serves ``amortize_iterations`` runs of its collective, so a
    finish-time regression of ``r`` seconds costs ``r × iterations``
    wall-clock before the next natural re-plan — replan when that exceeds
    the predicted solve cost. Regressions under ``min_regression``
    (relative) are ignored outright: re-fingerprinting the fleet for noise
    is how a control plane melts its own solver pool.
    """

    min_regression: float = 0.05
    amortize_iterations: float = 1000.0

    def __post_init__(self) -> None:
        if self.min_regression < 0:
            raise FleetError("min_regression must be non-negative")
        if self.amortize_iterations <= 0:
            raise FleetError("amortize_iterations must be positive")

    def should_replan(self, *, predicted: float, active: float,
                      solve_cost: float) -> bool:
        if predicted == float("inf"):
            return True  # the active schedule uses a dead link
        regression = predicted - active
        if regression <= self.min_regression * active:
            return False
        return regression * self.amortize_iterations >= solve_cost


def links_used_by(result: SynthesisResult,
                  declared: Topology) -> set[tuple[int, int]] | None:
    """Links a result's schedule occupies, in declared-fabric ids.

    ``None`` when the schedule lives in a transformed (hyper-edge) node
    space or references links outside the declared fabric — callers must
    then assume the whole fabric is in play.
    """
    schedule = result.schedule
    if isinstance(schedule, Schedule):
        used = set(schedule.links_used())
    else:
        used = {(i, j) for (_, i, j, _) in schedule.flows}
    if result.hyper is not None \
            or any(link not in declared.links for link in used):
        return None
    return used


def predicted_finish(result: SynthesisResult, declared: Topology,
                     live: Topology) -> float:
    """What the live fabric does to an existing schedule, without solving.

    ``inf`` when the schedule uses a link the live view dropped. Otherwise
    the finish time stretched by the worst declared→live capacity ratio
    over the links the schedule actually uses — exact for a schedule
    bottlenecked on the degraded link, conservative otherwise (β scales
    with 1/capacity; α is unchanged by degradation). Schedules in a
    transformed (hyper-edge) node space fall back to scanning the whole
    fabric, which is more conservative still.
    """
    used = links_used_by(result, declared)
    if used is None:
        used = set(declared.links)
    worst = 1.0
    for link in used:
        if link not in live.links:
            return float("inf")
        worst = min(worst,
                    live.links[link].capacity / declared.links[link].capacity)
    if worst <= 0:
        return float("inf")
    return result.finish_time / worst


class ScheduleStatus(enum.Enum):
    """Lifecycle of one schedule in the registry."""

    PENDING = "pending"
    ACTIVE = "active"
    ROLLED_BACK = "rolled_back"
    RETIRED = "retired"


@dataclass
class RegistryEntry:
    """One schedule the registry has seen, with its vetting verdict.

    ``fabric`` is the live view the schedule was planned against — the
    baseline for later regression predictions (predicting against the
    declared fabric would double-count degradation the plan already paid
    for).
    """

    job: str
    result: SynthesisResult
    status: ScheduleStatus
    time: float
    conformance_ok: bool | None = None
    note: str = ""
    fabric: Topology | None = None
    #: registry-assigned identity; WAL lifecycle records reference it
    seq: int = 0

    def to_dict(self) -> dict:
        """Status-display summary (lossy by design; the WAL uses
        :meth:`to_wire`, which round-trips the full entry)."""
        return {"job": self.job, "status": self.status.value,
                "time": self.time, "conformance_ok": self.conformance_ok,
                "finish_time": self.result.finish_time,
                "solve_time": self.result.solve_time,
                "method": self.result.method.value, "note": self.note}

    def to_wire(self) -> dict:
        """Full-fidelity document (round-trips via :meth:`from_wire`).

        The schedule payload rides inside the disk cache's versioned
        envelope, so a WAL snapshot written by an older package version
        is invalidated by the same rule as a stale cache entry.
        """
        payload = self.result.to_dict()
        return {
            "seq": self.seq,
            "job": self.job,
            "status": self.status.value,
            "time": self.time,
            "conformance_ok": self.conformance_ok,
            "note": self.note,
            "result": make_envelope(fingerprint_canonical(payload), payload,
                                    {"kind": "fleet-registry-entry"}),
            "fabric": (None if self.fabric is None
                       else self.fabric.to_dict()),
        }

    @staticmethod
    def from_wire(data: dict) -> "RegistryEntry":
        try:
            payload = open_envelope(data["result"])
            if payload is None:
                raise FleetError(
                    f"registry entry for job {data.get('job')!r}: schedule "
                    "envelope is stale or malformed (version or package "
                    "mismatch)")
            return RegistryEntry(
                job=str(data["job"]),
                result=SynthesisResult.from_dict(payload),
                status=ScheduleStatus(data["status"]),
                time=float(data["time"]),
                conformance_ok=(None if data.get("conformance_ok") is None
                                else bool(data["conformance_ok"])),
                note=str(data.get("note", "")),
                fabric=(None if data.get("fabric") is None
                        else Topology.from_dict(data["fabric"])),
                seq=int(data.get("seq", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(
                f"malformed registry entry document: {exc}") from exc


class ScheduleRegistry:
    """Active/pending/rollback bookkeeping with one hard invariant.

    Every schedule enters as PENDING via :meth:`propose`; it becomes
    ACTIVE only through :meth:`activate`, which *refuses* entries whose
    conformance verdict is not an explicit pass — the acceptance
    criterion "zero non-conformant schedules ever activate" is enforced
    here, in one place, rather than by every caller remembering to check.
    """

    def __init__(self, history_limit: int = 1000,
                 journal=None) -> None:
        self._active: dict[str, RegistryEntry] = {}
        # bounded: a long-running daemon proposes schedules indefinitely;
        # active entries stay reachable through _active regardless
        self.history: deque[RegistryEntry] = deque(maxlen=history_limit)
        self._lock = threading.Lock()
        self._seq = 0
        # write-ahead hook: called as journal(kind, data) *before* the
        # matching state mutation; a raise (a fenced WAL) aborts the
        # transition, so a fenced daemon can never activate anything
        self._journal = journal

    def _log(self, kind: str, data: dict) -> None:
        if self._journal is not None:
            self._journal(kind, data)

    def propose(self, job: str, result: SynthesisResult, time: float,
                fabric: Topology | None = None) -> RegistryEntry:
        with self._lock:
            self._seq += 1
            entry = RegistryEntry(job=job, result=result,
                                  status=ScheduleStatus.PENDING, time=time,
                                  fabric=fabric, seq=self._seq)
            self._log("propose", entry.to_wire())
            self.history.append(entry)
        return entry

    def activate(self, entry: RegistryEntry) -> RegistryEntry:
        if entry.conformance_ok is not True:
            raise FleetError(
                f"refusing to activate schedule for job {entry.job!r}: "
                f"conformance verdict is {entry.conformance_ok!r}, not a "
                "pass")
        with self._lock:
            self._log("activate", {"job": entry.job, "seq": entry.seq,
                                   "conformance_ok": True})
            incumbent = self._active.get(entry.job)
            if incumbent is not None:
                incumbent.status = ScheduleStatus.RETIRED
            entry.status = ScheduleStatus.ACTIVE
            self._active[entry.job] = entry
        return entry

    def rollback(self, entry: RegistryEntry, reason: str) -> RegistryEntry:
        with self._lock:
            self._log("rollback", {"job": entry.job, "seq": entry.seq,
                                   "reason": reason})
            entry.status = ScheduleStatus.ROLLED_BACK
            entry.note = reason
        return entry

    def retire(self, job: str) -> None:
        """Drop a job's active schedule (the job left the fleet)."""
        with self._lock:
            entry = self._active.get(job)
            if entry is not None:
                self._log("retire", {"job": job, "seq": entry.seq})
                del self._active[job]
                entry.status = ScheduleStatus.RETIRED

    # ------------------------------------------------------------------
    # recovery (no journaling: the WAL is the *source* here)
    # ------------------------------------------------------------------
    def restore(self, entries: list[RegistryEntry],
                active: dict[str, int], seq: int) -> None:
        """Rehydrate from recovered state, bypassing the journal.

        ``entries`` arrive in seq order (the history window); ``active``
        maps job name to the seq of its incumbent. Every incumbent must
        already carry an explicit conformance pass — recovery re-vets
        before calling this, and the invariant holds across restarts.
        """
        by_seq = {entry.seq: entry for entry in entries}
        for job, entry_seq in active.items():
            entry = by_seq.get(entry_seq)
            if entry is None:
                raise FleetError(
                    f"cannot restore job {job!r}: active entry seq "
                    f"{entry_seq} is not in the recovered window")
            if entry.conformance_ok is not True:
                raise FleetError(
                    f"refusing to restore job {job!r} without a "
                    "conformance pass")
        with self._lock:
            self.history.clear()
            self.history.extend(entries)
            self._active = {job: by_seq[entry_seq]
                            for job, entry_seq in active.items()}
            self._seq = max(seq, self._seq)

    def seq(self) -> int:
        with self._lock:
            return self._seq

    def active(self, job: str) -> RegistryEntry | None:
        with self._lock:
            return self._active.get(job)

    def active_jobs(self) -> list[str]:
        with self._lock:
            return sorted(self._active)

    def counts(self) -> dict[str, int]:
        """Status counts over the retained history window."""
        with self._lock:
            counts = {status.value: 0 for status in ScheduleStatus}
            for entry in self.history:
                counts[entry.status.value] += 1
        return counts

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "active": {job: entry.to_dict()
                           for job, entry in sorted(self._active.items())},
                "history": [entry.to_dict() for entry in self.history],
            }


@dataclass(frozen=True)
class AdaptationDecision:
    """One job's outcome for one fabric event (what ``step`` returns)."""

    job: str
    time: float
    action: str  # "replan" | "keep" | "rollback" | "failed"
    reason: str
    predicted: float | None = None
    active_finish: float | None = None
    new_finish: float | None = None
    solve_time: float | None = None

    def __str__(self) -> str:
        parts = [f"[t={self.time:g}] {self.job}: {self.action}"]
        if self.action == "replan" and self.new_finish is not None:
            parts.append(f"finish {self.active_finish:.3g} -> "
                         f"{self.new_finish:.3g}s")
        parts.append(f"({self.reason})")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`).

        ``predicted`` may legitimately be ``inf`` (a dead used link);
        it is encoded as ``None``-safe JSON via Python's non-strict
        ``Infinity`` literal, which :func:`json.loads` parses back.
        """
        return {"job": self.job, "time": self.time, "action": self.action,
                "reason": self.reason, "predicted": self.predicted,
                "active_finish": self.active_finish,
                "new_finish": self.new_finish,
                "solve_time": self.solve_time}

    @staticmethod
    def from_dict(data: dict) -> "AdaptationDecision":
        def _opt(key):
            return None if data.get(key) is None else float(data[key])

        try:
            return AdaptationDecision(
                job=str(data["job"]), time=float(data["time"]),
                action=str(data["action"]), reason=str(data["reason"]),
                predicted=_opt("predicted"),
                active_finish=_opt("active_finish"),
                new_finish=_opt("new_finish"),
                solve_time=_opt("solve_time"))
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(
                f"malformed adaptation decision document: {exc}") from exc


class AdaptationController:
    """The online adaptation daemon over one planner and one fabric.

    Args:
        topology: the declared fabric.
        source: the telemetry stream to poll.
        planner: the serving layer replans route through.
        estimator: a pre-configured estimator (default: fresh, default
            thresholds).
        gate: the replan-vs-keep cost gate.
        fabric_view: optional per-job view of the live fabric — the
            orchestrator injects priority capacity shares here. Called as
            ``fabric_view(job, live_topology) -> Topology``.
        sink: enable process-wide tracing into this sink (a path makes a
            JSONL file) for the controller's lifetime — daemon-thread
            spans and the replans they fan out land there.
        wal: a :class:`~repro.fleet.wal.WriteAheadLog`. Every registry
            lifecycle transition, decision, and estimator cool-down clock
            is durably appended *before* it is applied; :meth:`recover`
            rehydrates from it after a crash. ``None`` keeps the control
            plane in-memory (the pre-WAL behaviour).
        compact_every: fold the WAL into a snapshot once this many
            records accumulate since the last compaction.
        alert_rules: SLO rules for the in-process alert engine
            (default: :func:`repro.obs.alerts.builtin_rules`). Evaluated
            at the tail of every step over the merged planner +
            controller metrics snapshot; firing alerts surface in
            :meth:`status` and newly-firing ones trigger a
            flight-recorder dump.
    """

    #: integer stats keys, in the legacy ``stats()`` dict order
    _COUNT_KEYS = ("polls", "samples", "transitions", "replans", "kept",
                   "rollbacks", "failed", "errors")

    def __init__(self, topology: Topology, source: TelemetrySource,
                 planner: Planner, *,
                 estimator: FabricEstimator | None = None,
                 gate: CostGate | None = None,
                 fabric_view=None,
                 sink: str | _obs.Sink | None = None,
                 wal: WriteAheadLog | None = None,
                 compact_every: int = 256,
                 alert_rules: list[AlertRule] | None = None) -> None:
        self.topology = topology
        self.source = source
        self.planner = planner
        self.estimator = estimator if estimator is not None \
            else FabricEstimator(topology)
        if self.estimator.topology is not topology:
            raise FleetError(
                "estimator and controller must share one declared fabric")
        self.gate = gate if gate is not None else CostGate()
        self.fabric_view = fabric_view
        if compact_every < 1:
            raise FleetError("compact_every must be at least 1")
        self.wal = wal
        self.compact_every = compact_every
        self._last_compact_records = 0
        #: recovery provenance (``None`` until :meth:`recover` ran)
        self.recovery: dict | None = None
        self.registry = ScheduleRegistry(
            journal=None if wal is None else self._journal)
        self.jobs: dict[str, FleetJob] = {}
        # jobs is mutated by admission/retirement threads while the daemon
        # thread iterates it; mutate and snapshot under this lock.
        self._jobs_lock = threading.Lock()
        #: recent decisions (bounded: the daemon emits them indefinitely)
        self.decisions: deque[AdaptationDecision] = deque(maxlen=500)
        self.now = 0.0
        # Stats live on a per-controller metrics registry (``metrics`` —
        # ``registry`` is the schedule registry); stats() keeps the
        # legacy flat-dict shape (regression-pinned) on top of it.
        self.metrics = MetricsRegistry()
        self._stat_counters = {
            key: self.metrics.counter(
                f"fleet_{key}_total", f"fleet {key} (cumulative)")
            for key in self._COUNT_KEYS}
        self._stat_counters["adaptation_solve_time"] = \
            self.metrics.counter(
                "fleet_adaptation_solve_seconds_total",
                "wall-clock spent in adaptation replans (cumulative)")
        # durability counters live on the metrics registry only — the
        # legacy stats() dict shape is regression-pinned and stays as-is
        self._wal_records = self.metrics.counter(
            "fleet_wal_records_total",
            "records durably appended to the write-ahead log")
        self._recoveries = self.metrics.counter(
            "fleet_recoveries_total",
            "successful crash recoveries from the WAL")
        self._recovery_dropped = self.metrics.counter(
            "fleet_recovery_dropped_total",
            "recovered schedules dropped (failed conformance or stale)")
        self._wal_append_latency = self.metrics.histogram(
            "fleet_wal_append_seconds",
            "durable WAL append latency per record")
        # the SLO alert engine (repro.obs.alerts): evaluated at the tail
        # of every step over the merged planner+controller snapshot
        self.alert_engine = AlertEngine(alert_rules)
        self._alerts: list[Alert] = []
        self._owns_tracer = sink is not None
        if sink is not None:
            _obs.configure(sink)
        #: last exception the daemon loop swallowed (None = healthy)
        self.last_error: str | None = None
        self._stats_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # serialises control-plane operations (step / admission /
        # retirement / recovery): a sync step() can never interleave with
        # a daemon tick, and stop() joining the thread implies the last
        # step ran to completion
        self._op_lock = threading.Lock()
        self._step_index = 0

    # ------------------------------------------------------------------
    # the write-ahead log
    # ------------------------------------------------------------------
    def _journal(self, kind: str, data: dict | None = None) -> None:
        """Durably record one transition before it happens (write-ahead).

        Raises when the WAL is fenced — the caller's transition is then
        aborted, which is what makes takeover safe: a fenced generation
        cannot persist, and therefore cannot activate, anything.
        """
        if self.wal is None:
            return
        start = _time.perf_counter()
        self.wal.append(kind, data, now=self.now)
        self._wal_append_latency.observe(_time.perf_counter() - start)
        self._wal_records.inc()

    def _journal_abort(self, op: str, job: str | None = None) -> None:
        """Best-effort abort marker for a failed operation.

        Without it, the operation's records would sit in front of the
        next successful commit and recovery would replay them as if they
        had happened (a ghost admission, a half-applied step). The append
        may itself fail — a fenced WAL is one of the very reasons the
        operation aborted — which is tolerable: recovery also discards
        any ``begin`` that is never matched by a ``commit``.
        """
        data = {"op": op}
        if job is not None:
            data["job"] = job
        try:
            self._journal("abort", data)
        except (FleetError, OSError):
            pass

    def _maybe_compact(self) -> None:
        if self.wal is None:
            return
        grown = self.wal.records_written - self._last_compact_records
        if grown < self.compact_every:
            return
        with _obs.rspan("fleet.wal_compact", records=grown):
            self.wal.compact(self.registry_state())
        self._last_compact_records = self.wal.records_written

    def registry_state(self) -> dict:
        """The compaction snapshot: full control-plane state, as data.

        Shape-checked by :func:`repro.service.schema.check_registry_state`
        (the registry-state wire schema), so an unparseable snapshot is
        refused at write time rather than at the recovery that needed it.
        """
        entries: dict[int, RegistryEntry] = {}
        with self.registry._lock:
            for entry in self.registry.history:
                entries[entry.seq] = entry
            for entry in self.registry._active.values():
                entries[entry.seq] = entry
            active = {job: entry.seq
                      for job, entry in self.registry._active.items()}
            seq = self.registry._seq
        estimator = {
            f"{src}->{dst}": {
                "health": est.health.value, "ewma": est.ewma,
                "last_transition": est.last_transition,
                "samples": est.samples}
            for (src, dst), est in sorted(self.estimator._links.items())}
        state = {
            "registry_state_version": REGISTRY_STATE_VERSION,
            "now": self.now,
            "steps_completed": self._step_index,
            "entry_seq": seq,
            "jobs": {name: job.to_dict()
                     for name, job in sorted(self._jobs_snapshot().items())},
            "entries": [entries[s].to_wire() for s in sorted(entries)],
            "active": active,
            "estimator": estimator,
            "decisions": [d.to_dict() for d in self.decisions],
        }
        return check_registry_state(state)

    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------
    def _view(self, job: FleetJob, live: Topology) -> Topology:
        if self.fabric_view is None:
            return live
        return self.fabric_view(job, live)

    def _request(self, job: FleetJob, live: Topology) -> PlanRequest:
        return PlanRequest(topology=self._view(job, live),
                           demand=job.demand, config=job.config,
                           method=job.method, tag=job.name)

    def add_job(self, job: FleetJob) -> RegistryEntry:
        """Admit a job: plan it on the current live fabric and activate.

        The initial plan is vetted exactly like an adapted one — the
        registry's invariant holds from the first schedule, not just from
        the first adaptation. With a WAL the whole admission is one
        transaction: a crash mid-admission leaves no committed trace, and
        recovery sees a fleet the job never joined.
        """
        with self._op_lock:
            with self._jobs_lock:
                if job.name in self.jobs:
                    raise FleetError(f"job {job.name!r} already admitted")
                self.jobs[job.name] = job
            try:
                self._journal("begin", {"op": "admit", "job": job.name})
                self._journal("job_admit", job.to_dict())
                activated = self._plan_fresh(job, verb="admit")
                self._journal("commit", {"op": "admit", "job": job.name})
            except BaseException:
                # a failed admission must not leave a ghost job (it would
                # block re-admission and distort the orchestrator's shares
                # forever) — neither in memory (the pop) nor in the WAL
                # (the abort marker keeps recovery from replaying the
                # admission once a later operation commits)
                with self._jobs_lock:
                    self.jobs.pop(job.name, None)
                self._journal_abort("admit", job.name)
                raise
            self._maybe_compact()
            return activated

    def _plan_fresh(self, job: FleetJob, *, verb: str) -> RegistryEntry:
        """Plan ``job`` cold on the live fabric, vet, and activate.

        The shared tail of admission and :meth:`plan_missing`; callers
        hold ``_op_lock`` and bracket this in a WAL transaction.
        """
        live = self.estimator.live_topology()
        response = self.planner.plan(self._request(job, live))
        entry = self.registry.propose(job.name, response.result,
                                      self.now, fabric=live)
        entry.conformance_ok = self._vet(response.result)
        if entry.conformance_ok is not True:
            self.registry.rollback(entry,
                                   "initial plan failed conformance")
            self._bump(rollbacks=1)
            _obs.event("fleet.rollback", job=job.name, seq=entry.seq,
                       reason="initial-conformance")
            _flight.auto_dump("fleet-rollback")
            raise FleetError(
                f"initial plan for job {job.name!r} failed "
                f"conformance replay; refusing to {verb}")
        return self.registry.activate(entry)

    def plan_missing(self, names: list[str] | None = None,
                     ) -> dict[str, RegistryEntry]:
        """Fresh-plan admitted jobs that have no active schedule.

        Recovery can leave a job admitted but scheduleless: its
        recovered incumbent failed conformance re-vetting and was
        dropped. Nothing in the adaptation loop replans such a job —
        the cost gate and :meth:`replan_all` both iterate incumbents —
        so this is the path back to a schedule: each one is planned cold
        on the current live fabric, vetted, and activated, journaled as
        its own transaction. ``names`` restricts the sweep (default:
        every admitted job without an active entry); jobs that already
        have an incumbent are skipped, so the sweep is idempotent.
        """
        with self._op_lock:
            snapshot = self._jobs_snapshot()
            planned: dict[str, RegistryEntry] = {}
            for name in sorted(snapshot if names is None else names):
                job = snapshot.get(name)
                if job is None or self.registry.active(name) is not None:
                    continue
                try:
                    self._journal("begin", {"op": "plan", "job": name})
                    planned[name] = self._plan_fresh(job, verb="activate")
                    self._journal("commit", {"op": "plan", "job": name})
                except BaseException:
                    self._journal_abort("plan", name)
                    raise
            self._maybe_compact()
            return planned

    def remove_job(self, name: str) -> None:
        with self._op_lock:
            with self._jobs_lock:
                job = self.jobs.get(name)
                if job is None:
                    raise FleetError(f"no job {name!r}")
            try:
                # write-ahead, like add_job: journal the removal *before*
                # mutating memory, so a refused append (a fenced WAL)
                # leaves both the in-memory and the durable fleet with
                # the job still present
                self._journal("begin", {"op": "remove", "job": name})
                self._journal("job_remove", {"job": name})
                with self._jobs_lock:
                    self.jobs.pop(name, None)
                self.registry.retire(name)
                self._journal("commit", {"op": "remove", "job": name})
            except BaseException:
                with self._jobs_lock:
                    self.jobs.setdefault(name, job)
                self._journal_abort("remove", name)
                raise

    def _jobs_snapshot(self) -> dict[str, FleetJob]:
        with self._jobs_lock:
            return dict(self.jobs)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def step(self) -> list[AdaptationDecision]:
        """One daemon tick: poll → estimate → (maybe) adapt.

        With a WAL, a step is one transaction (``begin`` … ``commit``):
        recovery discards an interrupted step wholesale and the restarted
        daemon re-executes it from committed state, so a crash can never
        half-apply a tick.
        """
        with self._op_lock:
            return self._step_locked()

    def _step_locked(self) -> list[AdaptationDecision]:
        with _obs.rspan("fleet.step") as step_sp:
            index = self._step_index
            self._journal("begin", {"op": "step", "index": index})
            try:
                with _obs.rspan("fleet.poll"):
                    samples = self.source.poll()
                self._bump(polls=1, samples=len(samples))
                if samples:
                    self.now = max(self.now, max(s.time for s in samples))
                with _obs.rspan("fleet.estimate", samples=len(samples)):
                    transitions = self.estimator.observe_all(samples)
                step_sp.set_attr(samples=len(samples),
                                 transitions=len(transitions))
                decisions: list[AdaptationDecision] = []
                if transitions:
                    self._bump(transitions=len(transitions))
                    for transition in transitions:
                        self._journal("transition", {
                            "link": list(transition.link),
                            "time": transition.time,
                            "old": transition.old.value,
                            "new": transition.new.value,
                            "factor": transition.factor})
                    decisions = self.adapt(transitions)
                    self.decisions.extend(decisions)
                    for decision in decisions:
                        self._journal("decision", decision.to_dict())
                self._journal("commit", {"op": "step", "index": index})
            except BaseException:
                # the daemon loop swallows step errors and keeps ticking;
                # without the abort marker this step's records would sit
                # in front of the next tick's commit and recovery would
                # replay half a step
                self._journal_abort("step")
                raise
            self._step_index = index + 1
            self._maybe_compact()
            self.evaluate_alerts()
            return decisions

    def evaluate_alerts(self) -> list[Alert]:
        """One alert-engine pass over the merged metrics snapshot.

        Runs at the tail of every step; callable directly for status
        tooling. An alert transitioning from quiet to firing triggers a
        flight-recorder dump (once per transition, not per poll) — the
        point of the recorder is that the evidence is already in the ring
        when the alert notices the symptom.
        """
        firing = self.alert_engine.evaluate(self.alert_snapshot())
        self._alerts = firing
        if self.alert_engine.newly_fired:
            _obs.event("fleet.alerts_fired",
                       alerts=self.alert_engine.newly_fired)
            _flight.auto_dump("alert")
        return firing

    def alert_snapshot(self) -> dict:
        """Controller metrics merged over the planner's alert snapshot."""
        return {**self.planner.alert_snapshot(), **self.metrics.snapshot()}

    def adapt(self, transitions: list[LinkTransition],
              ) -> list[AdaptationDecision]:
        """React to fabric transitions: gate each job, fan out replans.

        Regressions (a link got worse) replan the jobs whose schedules the
        change actually hurts, gated on amortised cost. Recoveries (a link
        got better) *speculatively* warm-replan every job — an improved
        fabric cannot be exploited by a schedule that was planned to avoid
        the sick link — but the fresh schedule only activates if it
        actually beats the incumbent, so recovery can never cause churn.
        """
        live = self.estimator.live_topology()
        rank = {LinkHealth.HEALTHY: 0, LinkHealth.DEGRADED: 1,
                LinkHealth.DOWN: 2}
        worsened = {t.link for t in transitions
                    if rank[t.new] > rank[t.old]}
        recovered = any(rank[t.new] < rank[t.old] for t in transitions)
        to_replan: list[tuple[FleetJob, RegistryEntry, float, bool]] = []
        decisions: list[AdaptationDecision] = []
        jobs = self._jobs_snapshot()
        gate_sp = _obs.rspan("fleet.cost_gate", jobs=len(jobs),
                            transitions=len(transitions))
        with gate_sp:
            self._gate_jobs(jobs, live, worsened, recovered,
                            to_replan, decisions)
            gate_sp.set_attr(replans=len(to_replan))
        decisions.extend(self._replan(
            [job for job, _, _, _ in to_replan], live,
            priors=[e for _, e, _, _ in to_replan],
            predicted=[p for _, _, p, _ in to_replan],
            speculative=[s for _, _, _, s in to_replan]))
        return decisions

    def _gate_jobs(self, jobs: dict[str, FleetJob], live: Topology,
                   worsened: set, recovered: bool,
                   to_replan: list, decisions: list) -> None:
        """Run the cost gate over every active job (fills the two lists)."""
        for name in sorted(jobs):
            job = jobs[name]
            entry = self.registry.active(name)
            if entry is None:
                continue
            # Baseline: the fabric the incumbent was planned on. Against
            # the declared fabric a schedule that already paid for a
            # degradation would be charged for it again on every later
            # event, inflating regressions and disabling the cost gate.
            baseline = entry.fabric if entry.fabric is not None \
                else self.topology
            predicted = predicted_finish(entry.result, baseline, live)
            active = entry.result.finish_time
            hurt = predicted == float("inf") or self._uses(entry, worsened)
            if hurt and self.gate.should_replan(
                    predicted=predicted, active=active,
                    solve_cost=entry.result.solve_time):
                to_replan.append((job, entry, predicted, False))
                continue
            if recovered:
                to_replan.append((job, entry, predicted, True))
                continue
            self._bump(kept=1)
            decisions.append(AdaptationDecision(
                job=name, time=self.now, action="keep",
                reason=("cost gate: regression below the replan bar"
                        if hurt
                        else "schedule does not use the changed links"),
                predicted=predicted, active_finish=active))

    def _uses(self, entry: RegistryEntry, changed: set) -> bool:
        used = links_used_by(entry.result, self.topology)
        if used is None:
            return True  # transformed node space: assume affected
        return bool(used & changed)

    def _replan(self, jobs: list[FleetJob], live: Topology, *,
                priors: list[RegistryEntry],
                predicted: list[float],
                speculative: list[bool] | None = None,
                ) -> list[AdaptationDecision]:
        """Warm-replan a batch of jobs through the planner's solve pool.

        A ``speculative`` replan (recovery probing) only activates when it
        strictly improves on the incumbent's finish; a mandatory one
        (regression) activates any conformant result.
        """
        if not jobs:
            return []
        if speculative is None:
            speculative = [False] * len(jobs)
        requests = [self._request(job, live) for job in jobs]
        with _obs.rspan("fleet.replan", jobs=len(jobs)):
            responses = self.planner.plan_batch(
                requests, warm_from=[p.result for p in priors])
        decisions = []
        for job, prior, pred, probe, response in zip(jobs, priors,
                                                     predicted,
                                                     speculative,
                                                     responses):
            if not response.ok:
                self._bump(failed=1)
                decisions.append(AdaptationDecision(
                    job=job.name, time=self.now, action="failed",
                    reason=f"replan failed: {response.error}",
                    predicted=pred,
                    active_finish=prior.result.finish_time))
                continue
            result = response.result
            self._bump(adaptation_solve_time=result.solve_time)
            if probe and result.finish_time >= prior.result.finish_time:
                self._bump(kept=1)
                decisions.append(AdaptationDecision(
                    job=job.name, time=self.now, action="keep",
                    reason="recovery probe did not beat the incumbent",
                    predicted=pred,
                    active_finish=prior.result.finish_time,
                    new_finish=result.finish_time,
                    solve_time=result.solve_time))
                continue
            entry = self.registry.propose(job.name, result, self.now,
                                          fabric=live)
            entry.conformance_ok = self._vet(result)
            if entry.conformance_ok is not True:
                self.registry.rollback(
                    entry, "adapted schedule failed conformance replay")
                self._bump(rollbacks=1)
                _obs.event("fleet.rollback", job=job.name, seq=entry.seq,
                           reason="conformance")
                _flight.auto_dump("fleet-rollback")
                decisions.append(AdaptationDecision(
                    job=job.name, time=self.now, action="rollback",
                    reason="adapted schedule failed conformance replay; "
                           "incumbent stays active",
                    predicted=pred,
                    active_finish=prior.result.finish_time,
                    new_finish=result.finish_time,
                    solve_time=result.solve_time))
                continue
            self.registry.activate(entry)
            _obs.event("fleet.activate", job=job.name,
                       finish_time=result.finish_time)
            self._bump(replans=1)
            decisions.append(AdaptationDecision(
                job=job.name, time=self.now, action="replan",
                reason=("recovery probe beat the incumbent" if probe
                        else "warm replan on the live fabric"),
                predicted=pred, active_finish=prior.result.finish_time,
                new_finish=result.finish_time,
                solve_time=result.solve_time))
        return decisions

    def replan_all(self, reason: str,
                   names: list[str] | None = None,
                   ) -> list[AdaptationDecision]:
        """Re-plan jobs on the current live view (admission changes).

        ``names`` restricts the batch (default: every job with an active
        schedule); the replans are warm-seeded and fanned out through the
        solve pool exactly like degradation-driven ones.
        """
        with self._op_lock:
            self._journal("begin", {"op": "replan_all", "reason": reason})
            try:
                live = self.estimator.live_topology()
                snapshot = self._jobs_snapshot()
                jobs, priors = [], []
                for name in sorted(snapshot if names is None else names):
                    entry = self.registry.active(name)
                    if entry is None or name not in snapshot:
                        continue
                    jobs.append(snapshot[name])
                    priors.append(entry)
                decisions = self._replan(
                    jobs, live, priors=priors,
                    predicted=[p.result.finish_time for p in priors])
                self.decisions.extend(decisions)
                for decision in decisions:
                    self._journal("decision", decision.to_dict())
                self._journal("commit",
                              {"op": "replan_all", "reason": reason})
            except BaseException:
                self._journal_abort("replan_all")
                raise
            self._maybe_compact()
            return decisions

    def _vet(self, result: SynthesisResult) -> bool:
        """Conformance-replay one result (the activation gate)."""
        from repro.simulate import check_result

        with _obs.span("fleet.vet") as sp:
            ok = bool(check_result(result).ok)
            sp.set_attr(ok=ok)
            return ok

    # ------------------------------------------------------------------
    # daemon mode
    # ------------------------------------------------------------------
    def start(self, interval: float = 1.0) -> None:
        """Run ``step`` on a daemon thread every ``interval`` seconds."""
        if self._thread is not None:
            raise FleetError("controller daemon already running")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, args=(interval,),
                                        name="teccl-fleet", daemon=True)
        self._thread.start()

    def _loop(self, interval: float) -> None:
        # Event.wait, never time.sleep: stop() setting the event wakes the
        # loop immediately instead of burning the rest of the interval.
        while not self._stop.wait(interval):
            if self.wal is not None and self.wal.fenced():
                # A newer generation took the lease. Yield gracefully: the
                # fence is only checked *between* steps, so an in-flight
                # step always finishes — and had it tried to activate
                # after the takeover, the WAL append itself would have
                # refused (write-ahead: no record, no activation).
                self.last_error = (
                    f"fenced: generation {self.wal.generation} lost the "
                    "lease; daemon yielded")
                break
            try:
                self.step()
            except Exception as exc:  # noqa: BLE001 - daemon must survive
                # A dead daemon thread is worse than a skipped tick: record
                # the error where stats()/status() surface it and keep
                # polling (the next tick may see a healed fabric).
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._bump(errors=1)

    def stop(self) -> None:
        """Stop the daemon thread.

        Returns promptly — the loop waits on an :class:`threading.Event`,
        so setting it wakes a sleeping loop immediately rather than after
        the rest of the interval — and never interleaves with a
        half-finished step: ``join`` only returns once the loop exited,
        and any in-flight ``step`` holds ``_op_lock`` until it completes.
        """
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        if self._owns_tracer:
            self._owns_tracer = False
            _obs.disable()

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> dict:
        """Rehydrate the control plane from the WAL; returns provenance.

        Loads the compaction snapshot (if any), replays every *committed*
        transaction on top, and discards aborted or unfinished ones —
        the crash-interrupted tail, and any operation that failed mid-way
        and was compensated (the resumed daemon re-executes what still
        matters). Every recovered incumbent is re-vetted through the
        conformance oracle **before** re-activation: a recovery can never
        silently activate a schedule the oracle would refuse — failed
        replays are logged, counted, and dropped. Estimator cool-down
        clocks resume where they stood, so a flap that straddles the
        crash still yields at most one transition per window.

        Must run on a fresh controller (no jobs admitted, no steps
        taken); call it right after construction, before ``start()``.
        """
        if self.wal is None:
            raise FleetError("recover() needs a WAL "
                             "(AdaptationController(wal=...))")
        with self._op_lock, _obs.rspan("fleet.recover") as sp:
            if self._jobs_snapshot() or self._step_index:
                raise FleetError(
                    "recover() must run on a fresh controller, before any "
                    "admission or step")
            wal_state = self.wal.load()
            parsed = _parse_wal(wal_state)
            dropped: list[dict] = []
            active: dict[str, int] = {}
            for job, seq in parsed.active.items():
                entry = parsed.entries.get(seq)
                if entry is None:
                    dropped.append({"job": job, "seq": seq,
                                    "reason": "stale schedule envelope"})
                    continue
                if self._vet(entry.result):
                    # an explicit re-vet *now*, not trust in the logged
                    # verdict: solver or oracle semantics may have moved
                    # under the persisted schedule
                    entry.conformance_ok = True
                    entry.status = ScheduleStatus.ACTIVE
                    active[job] = seq
                else:
                    entry.conformance_ok = False
                    entry.status = ScheduleStatus.ROLLED_BACK
                    entry.note = "failed conformance replay on recovery"
                    dropped.append({"job": job, "seq": seq,
                                    "reason": "failed conformance replay"})
                    _obs.event("fleet.recovery_drop", job=job, seq=seq)
                    _flight.auto_dump("recovery-drop")
            self.registry.restore(
                [parsed.entries[s] for s in sorted(parsed.entries)],
                active, parsed.entry_seq)
            with self._jobs_lock:
                self.jobs = dict(parsed.jobs)
            for link, state in parsed.estimator.items():
                ewma = state["ewma"]
                if ewma is None and state.get("factor") is not None:
                    # transition records persist the factor; the declared
                    # capacity turns it back into the smoothed estimate
                    ewma = (float(state["factor"])
                            * self.estimator.estimate(link).capacity)
                samples = int(state["samples"])
                if state.get("from_transition"):
                    # a link that transitioned had cleared min_samples
                    samples = max(samples, self.estimator.min_samples)
                self.estimator.restore(
                    link, health=LinkHealth(state["health"]),
                    ewma=ewma,
                    last_transition=state["last_transition"],
                    samples=samples)
            self.now = parsed.now
            self._step_index = parsed.steps_completed
            self.decisions.extend(parsed.decisions)
            self._recoveries.inc()
            self._recovery_dropped.inc(len(dropped))
            self.recovery = {
                "recovered": True,
                "generation": self.wal.generation,
                "snapshot": wal_state.snapshot is not None,
                "records_replayed": len(wal_state.records),
                "records_discarded": len(wal_state.uncommitted),
                "torn_bytes": wal_state.torn_bytes,
                "steps_completed": parsed.steps_completed,
                "jobs": sorted(parsed.jobs),
                "entries_recovered": len(active),
                "entries_dropped": dropped,
            }
            sp.set_attr(jobs=len(parsed.jobs), recovered=len(active),
                        dropped=len(dropped))
            # fold everything into a fresh snapshot: replaying the same
            # log twice must not exist as a failure mode
            self.wal.compact(self.registry_state())
            self._last_compact_records = self.wal.records_written
            return self.recovery

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _bump(self, **deltas) -> None:
        with self._stats_lock:
            for key, delta in deltas.items():
                self._stat_counters[key].inc(delta)

    def stats(self) -> dict:
        with self._stats_lock:
            out: dict = {key: int(self._stat_counters[key].value)
                         for key in self._COUNT_KEYS}
            out["adaptation_solve_time"] = \
                self._stat_counters["adaptation_solve_time"].value
            return out

    def status(self) -> dict:
        """JSON-ready fleet status (``teccl fleet status`` renders this)."""
        status = {
            "jobs": {name: {"priority": job.priority,
                            "method": job.method.value}
                     for name, job in sorted(self._jobs_snapshot().items())},
            "fabric": self.estimator.snapshot(),
            "registry": self.registry.to_dict(),
            "stats": self.stats(),
            "serve_latency": self.planner.serve_latency(),
            "last_error": self.last_error,
            "decisions": [str(d) for d in self.decisions],
            "recovery": self.recovery,
            # the last alert-engine evaluation (additive: the pinned
            # contract covers stats()'s key list, not status()'s)
            "alerts": [alert.to_dict() for alert in self._alerts],
        }
        if self.wal is not None:
            status["wal"] = {
                "path": str(self.wal.path),
                "generation": self.wal.generation,
                "records_written": self.wal.records_written,
                "compactions": self.wal.compactions,
                "fenced": self.wal.fenced(),
            }
        return status


@dataclass
class _ParsedWal:
    """Control-plane state reconstructed from snapshot + committed log."""

    jobs: dict[str, FleetJob] = field(default_factory=dict)
    entries: dict[int, RegistryEntry] = field(default_factory=dict)
    active: dict[str, int] = field(default_factory=dict)
    estimator: dict[tuple[int, int], dict] = field(default_factory=dict)
    decisions: list[AdaptationDecision] = field(default_factory=list)
    now: float = 0.0
    steps_completed: int = 0
    entry_seq: int = 0


def _parse_link_key(key: str) -> tuple[int, int]:
    src, _, dst = key.partition("->")
    return int(src), int(dst)


def _parse_wal(wal_state) -> _ParsedWal:
    """Snapshot + committed records → recovered state.

    Stale schedule envelopes (older package or cache-format version) are
    skipped here; if one was the incumbent, :meth:`AdaptationController
    .recover` reports it dropped rather than resurrecting a schedule the
    current code base never produced.
    """
    from repro.errors import ServiceError

    parsed = _ParsedWal()
    snapshot = wal_state.snapshot
    if snapshot is not None:
        try:
            check_registry_state(snapshot)
        except ServiceError as exc:
            raise FleetError(f"cannot recover: {exc}") from exc
        for name, doc in snapshot["jobs"].items():
            parsed.jobs[name] = FleetJob.from_dict(doc)
        for doc in snapshot["entries"]:
            try:
                entry = RegistryEntry.from_wire(doc)
            except FleetError:
                continue  # stale envelope: the entry did not survive
            parsed.entries[entry.seq] = entry
        parsed.active = {job: int(seq)
                         for job, seq in snapshot["active"].items()}
        for key, state in snapshot["estimator"].items():
            parsed.estimator[_parse_link_key(key)] = dict(state)
        parsed.decisions = [AdaptationDecision.from_dict(doc)
                            for doc in snapshot["decisions"]]
        parsed.now = float(snapshot["now"])
        parsed.steps_completed = int(snapshot["steps_completed"])
        parsed.entry_seq = int(snapshot["entry_seq"])

    for record in wal_state.records:
        kind = record.get("kind")
        data = record.get("data", {})
        if "now" in record:
            parsed.now = max(parsed.now, float(record["now"]))
        if kind == "job_admit":
            job = FleetJob.from_dict(data)
            parsed.jobs[job.name] = job
        elif kind == "job_remove":
            parsed.jobs.pop(data["job"], None)
        elif kind == "propose":
            try:
                entry = RegistryEntry.from_wire(data)
            except FleetError:
                continue
            parsed.entries[entry.seq] = entry
            parsed.entry_seq = max(parsed.entry_seq, entry.seq)
        elif kind == "activate":
            job, seq = data["job"], int(data["seq"])
            incumbent = parsed.active.get(job)
            if incumbent is not None and incumbent in parsed.entries:
                parsed.entries[incumbent].status = ScheduleStatus.RETIRED
            if seq in parsed.entries:
                parsed.entries[seq].status = ScheduleStatus.ACTIVE
                # the propose record predates vetting (write-ahead), so it
                # carries no verdict; the activate record *is* the verdict
                # — the registry refuses to journal one without a pass
                parsed.entries[seq].conformance_ok = True
            parsed.active[job] = seq
            parsed.entry_seq = max(parsed.entry_seq, seq)
        elif kind == "rollback":
            seq = int(data["seq"])
            if seq in parsed.entries:
                parsed.entries[seq].status = ScheduleStatus.ROLLED_BACK
                parsed.entries[seq].note = str(data.get("reason", ""))
                # the controller only rolls back on a failed replay
                parsed.entries[seq].conformance_ok = False
        elif kind == "retire":
            parsed.active.pop(data["job"], None)
            seq = int(data["seq"])
            if seq in parsed.entries:
                parsed.entries[seq].status = ScheduleStatus.RETIRED
        elif kind == "transition":
            link = tuple(data["link"])
            prev = parsed.estimator.get(link, {})
            parsed.estimator[link] = {
                "health": data["new"],
                "ewma": None,  # recover() rebuilds it from the factor
                "factor": float(data["factor"]),
                "last_transition": float(data["time"]),
                "samples": int(prev.get("samples", 0)),
                "from_transition": True,
            }
        elif kind == "decision":
            parsed.decisions.append(AdaptationDecision.from_dict(data))
        elif kind == "commit":
            if data.get("op") == "step":
                parsed.steps_completed = max(parsed.steps_completed,
                                             int(data["index"]) + 1)
        # "begin" markers carry no state ("abort"ed operations never get
        # here: _split_uncommitted already discarded them); unknown kinds
        # are ignored so a newer writer's extra record types do not brick
        # recovery
    return parsed
