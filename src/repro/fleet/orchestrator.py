"""Multi-job admission over a shared fabric: priority capacity shares.

The §5 multi-tenant formulation merges demands into *one* solve with
weighted completion times — the right tool when tenants share one
synthesis. A fleet is the other regime: many independent recurring jobs,
admitted and retired at different times, each wanting its own schedule
*now*. The orchestrator splits the fabric instead of the objective: each
admitted job plans against the live fabric scaled to its priority share
(reusing :func:`repro.topology.transforms.scale_capacity`), so no job's
plan assumes bandwidth another job was promised, and a job's admission
only re-fingerprints — never re-formulates — its neighbours.

Degradation handling rides on the :class:`~repro.fleet.controller
.AdaptationController`: one fabric event fans warm replans out across
every affected job through the planner's solve pool in a single batch.
"""

from __future__ import annotations

from repro.errors import FleetError
from repro.fleet.controller import (AdaptationController, AdaptationDecision,
                                    CostGate, FleetJob, RegistryEntry)
from repro.fleet.estimate import FabricEstimator
from repro.fleet.telemetry import TelemetrySource
from repro.fleet.wal import WriteAheadLog
from repro.service.planner import Planner
from repro.topology.topology import Topology
from repro.topology.transforms import scale_capacity


class FleetOrchestrator:
    """Admission + capacity shares over one adaptation controller.

    Args:
        topology: the declared shared fabric.
        source: the telemetry stream.
        planner: the serving layer all jobs' solves route through.
        estimator / gate / wal / compact_every: forwarded to the
            controller (``wal`` makes every admission, retirement, and
            adaptation durable; see :mod:`repro.fleet.wal`).

    Shares are plain priority proportions: job *j* sees the live fabric
    with every capacity scaled by ``priority_j / Σ priorities``. With one
    job admitted the scale is 1.0 and the orchestrator is exactly the
    controller.
    """

    def __init__(self, topology: Topology, source: TelemetrySource,
                 planner: Planner, *,
                 estimator: FabricEstimator | None = None,
                 gate: CostGate | None = None,
                 wal: WriteAheadLog | None = None,
                 compact_every: int = 256) -> None:
        self.controller = AdaptationController(
            topology, source, planner, estimator=estimator, gate=gate,
            fabric_view=self._job_view, wal=wal,
            compact_every=compact_every)

    def recover(self) -> dict:
        """Rehydrate from the WAL (delegates to the controller)."""
        return self.controller.recover()

    def plan_missing(self, names: list[str] | None = None,
                     ) -> dict[str, RegistryEntry]:
        """Fresh-plan admitted jobs whose schedule was dropped (e.g. a
        recovered incumbent that failed conformance re-vetting); plans
        run against each job's capacity share (delegates)."""
        return self.controller.plan_missing(names)

    # ------------------------------------------------------------------
    # capacity shares
    # ------------------------------------------------------------------
    def share(self, name: str) -> float:
        """Job ``name``'s current fraction of every link's capacity."""
        jobs = self.controller._jobs_snapshot()
        if name not in jobs:
            raise FleetError(f"no job {name!r} admitted")
        total = sum(job.priority for job in jobs.values())
        return jobs[name].priority / total

    def _job_view(self, job: FleetJob, live: Topology) -> Topology:
        factor = self.share(job.name)
        if factor == 1.0:
            return live
        return scale_capacity(live, factor,
                              name=f"{live.name}-{job.name}")

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, job: FleetJob) -> RegistryEntry:
        """Admit a job: plan it on its share, shrink the incumbents'.

        The new job is planned first (its share must be feasible before
        anyone else is disturbed); then every incumbent is warm-replanned
        onto its reduced share in one batch through the solve pool.
        """
        incumbents = self.controller.registry.active_jobs()
        entry = self.controller.add_job(job)
        if incumbents:
            self._replan_incumbents(
                incumbents, f"admission of {job.name!r} rescaled shares")
        return entry

    def retire(self, name: str) -> None:
        """Retire a job and grow the survivors onto the freed share."""
        self.controller.remove_job(name)
        survivors = self.controller.registry.active_jobs()
        if survivors:
            self._replan_incumbents(
                survivors, f"retirement of {name!r} rescaled shares")

    def _replan_incumbents(self, names: list[str],
                           reason: str) -> list[AdaptationDecision]:
        return self.controller.replan_all(reason, names=names)

    # ------------------------------------------------------------------
    # the loop (delegated)
    # ------------------------------------------------------------------
    def step(self) -> list[AdaptationDecision]:
        return self.controller.step()

    def start(self, interval: float = 1.0) -> None:
        self.controller.start(interval)

    def stop(self) -> None:
        self.controller.stop()

    @property
    def registry(self):
        return self.controller.registry

    @property
    def estimator(self):
        return self.controller.estimator

    def stats(self) -> dict:
        return self.controller.stats()

    def status(self) -> dict:
        status = self.controller.status()
        status["shares"] = {name: self.share(name)
                            for name in sorted(status["jobs"])}
        return status
