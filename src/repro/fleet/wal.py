"""Write-ahead persistence for the fleet control plane.

The control plane's state — which schedule is active for which job, which
probes are pending, where each link's flap-suppression clock stands — used
to live only in daemon memory: a crash lost every active schedule, which
is disqualifying for a long-lived serving tier. TACCL and Cloud
Collectives treat synthesized schedules as durable artifacts; this module
makes the *control state around them* durable too:

* :class:`WriteAheadLog` — an append-only JSONL log. Every record is
  framed as ``<length><crc32> <json>\\n`` and fsync'd before the state
  transition it describes is applied (write-ahead, not write-behind), so
  a hard kill can lose at most the transition that had not happened yet.
  On open, a torn tail — a partial final write from a crash — is detected
  by the framing and truncated away.
* **Transactions** — records between a ``begin`` and its ``commit`` form
  one control-plane operation (one daemon ``step``, one admission).
  Recovery applies only committed operations; an operation that ended in
  an ``abort`` (the writer failed and compensated), or that never ended
  at all (a crash, or a fenced writer), is discarded wholesale no matter
  where in the log it sits, and is re-executed by the restarted daemon —
  which is what makes recovery idempotent.
* **Compaction** — the log is periodically folded into a snapshot
  (:meth:`WriteAheadLog.compact`) so it cannot grow without bound. Each
  schedule inside the snapshot is wrapped in the *same* versioned envelope
  the on-disk schedule cache uses (:func:`repro.service.cache
  .make_envelope`), so stale-version schedules are invalidated by the
  same rule in both stores.
* :class:`GenerationLease` — generation-numbered daemon fencing. A new
  daemon taking over bumps the generation; the old generation's next WAL
  append is refused, so a fenced daemon can finish in-flight computation
  but can never persist — and therefore never activate — another
  schedule.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import FleetError

#: bump when the record or snapshot layout changes incompatibly
WAL_FORMAT_VERSION = 1


def atomic_write_json(path: str | Path, doc: dict) -> None:
    """Write ``doc`` as JSON so readers never observe a partial file.

    The document lands in a sibling temp file first, is flushed and
    fsync'd, then renamed over the target — ``os.replace`` is atomic on
    POSIX, so a concurrent reader (or a crash mid-dump) sees either the
    old complete file or the new complete file, never a truncated one.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _pid_alive(pid: int | None) -> bool:
    if not pid:
        return False
    try:
        os.kill(int(pid), 0)
    except (OSError, ValueError):
        return False
    return True


class GenerationLease:
    """A generation-numbered lease file: at most one live daemon writes.

    The lease records ``{generation, pid}``. Acquiring bumps the
    generation; a holder checks ownership before every durable write, so
    the moment a new generation acquires (``takeover=True``), the old
    generation is *fenced*: its appends raise and its activations are
    structurally impossible. An ordinary acquire refuses while the
    recorded holder process is still alive — takeover is an explicit
    operator decision, not a race.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.generation: int | None = None

    def _read(self) -> dict | None:
        try:
            return json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def acquire(self, *, takeover: bool = False) -> int:
        doc = self._read() or {}
        holder = doc.get("pid")
        if (doc and not takeover and holder != os.getpid()
                and _pid_alive(holder)):
            raise FleetError(
                f"lease {self.path} is held by live pid {holder} "
                f"(generation {doc.get('generation')}); pass takeover=True "
                "(teccl fleet run --takeover) to fence it")
        generation = int(doc.get("generation", 0)) + 1
        atomic_write_json(self.path, {"generation": generation,
                                      "pid": os.getpid()})
        self.generation = generation
        return generation

    def check(self) -> bool:
        """Does this holder still own the lease?"""
        if self.generation is None:
            return False
        doc = self._read()
        return bool(doc) and doc.get("generation") == self.generation

    def holder(self) -> dict | None:
        """The current lease document (whoever owns it), or ``None``."""
        return self._read()

    def release(self) -> None:
        if self.check():
            self.path.unlink(missing_ok=True)
        self.generation = None


@dataclass
class WalState:
    """What :meth:`WriteAheadLog.load` recovered from disk."""

    snapshot: dict | None
    #: committed records, in append order, transaction markers included
    records: list[dict]
    #: records of discarded operations: aborted, or begun but never
    #: committed (the crash-interrupted tail included)
    uncommitted: list[dict] = field(default_factory=list)
    #: bytes of torn tail truncated away on open
    torn_bytes: int = 0


# framing: 8 hex chars length + 8 hex chars crc32 + space + body + newline
_HEADER_LEN = 17


def _frame(body: bytes) -> bytes:
    return (f"{len(body):08x}{zlib.crc32(body) & 0xFFFFFFFF:08x} "
            .encode("ascii") + body + b"\n")


class WriteAheadLog:
    """Append-only, checksum-framed, fsync'd JSONL log with snapshots.

    Args:
        path: the log file; ``<path>.snapshot`` holds the compacted state
            and ``<path>.lease`` the generation lease.
        lease: optional :class:`GenerationLease` to check before every
            append (fencing). :meth:`attach_lease` wires the conventional
            sibling path.
        fsync: fsync after every append (the durability guarantee; tests
            may disable it to run crash sweeps faster than the disk).
    """

    def __init__(self, path: str | Path, *,
                 lease: GenerationLease | None = None,
                 fsync: bool = True) -> None:
        self.path = Path(path)
        self.snapshot_path = self.path.with_name(self.path.name
                                                 + ".snapshot")
        self.lease = lease
        self._fsync = fsync
        self._file = None
        self._seq = 0
        self.records_written = 0
        self.compactions = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lease / fencing
    # ------------------------------------------------------------------
    def attach_lease(self, *, takeover: bool = False) -> int:
        """Acquire the sibling ``<path>.lease`` and fence via it."""
        self.lease = GenerationLease(
            self.path.with_name(self.path.name + ".lease"))
        return self.lease.acquire(takeover=takeover)

    def fenced(self) -> bool:
        """True when another generation took the lease away from us."""
        return self.lease is not None and not self.lease.check()

    @property
    def generation(self) -> int | None:
        return None if self.lease is None else self.lease.generation

    # ------------------------------------------------------------------
    # reading (recovery)
    # ------------------------------------------------------------------
    def has_state(self) -> bool:
        """Anything durable on disk worth recovering?"""
        for candidate in (self.path, self.snapshot_path):
            try:
                if candidate.stat().st_size > 0:
                    return True
            except OSError:
                continue
        return False

    def load(self) -> WalState:
        """Read snapshot + log, validating frames; torn tail reported.

        Does not mutate the file — truncation happens when the log is
        next opened for appending (:meth:`_open`), so a read-only
        inspection (``teccl fleet status``) never rewrites history.
        """
        snapshot = None
        if self.snapshot_path.exists():
            try:
                snapshot = json.loads(
                    self.snapshot_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise FleetError(
                    f"unreadable WAL snapshot {self.snapshot_path}: {exc}"
                ) from exc
        records, _good_bytes, torn = self._scan()
        committed, uncommitted = _split_uncommitted(records)
        return WalState(snapshot=snapshot, records=committed,
                        uncommitted=uncommitted, torn_bytes=torn)

    def _scan(self) -> tuple[list[dict], int, int]:
        """Parse every well-framed record; returns (records, good_bytes,
        torn_bytes). Parsing stops at the first bad frame: everything
        after it is untrustworthy (a torn tail, or bitrot mid-file)."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return [], 0, 0
        records: list[dict] = []
        offset = 0
        while offset < len(raw):
            end = raw.find(b"\n", offset)
            if end < 0:
                break  # no terminator: a torn final write
            line = raw[offset:end]
            if len(line) < _HEADER_LEN:
                break
            try:
                length = int(line[:8], 16)
                crc = int(line[8:16], 16)
            except ValueError:
                break
            body = line[_HEADER_LEN:]
            if len(body) != length \
                    or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
                break
            try:
                records.append(json.loads(body.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            offset = end + 1
        return records, offset, len(raw) - offset

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _open(self):
        if self._file is not None:
            return self._file
        self.path.parent.mkdir(parents=True, exist_ok=True)
        records, good_bytes, torn = self._scan()
        if torn:
            # crash mid-append: drop the torn tail so the log is again a
            # clean sequence of whole records
            with open(self.path, "r+b") as handle:
                handle.truncate(good_bytes)
        self._seq = max((r.get("seq", 0) for r in records), default=0)
        self._file = open(self.path, "ab")
        return self._file

    def _raise_fenced(self) -> None:
        raise FleetError(
            f"WAL {self.path} is fenced: generation "
            f"{self.generation} lost the lease to "
            f"{(self.lease.holder() or {}).get('generation')}")

    def append(self, kind: str, data: dict | None = None, *,
               now: float | None = None) -> int:
        """Durably append one record *before* the caller applies it.

        Raises :class:`~repro.errors.FleetError` when fenced — the
        caller's state transition must then not happen, which is exactly
        the write-ahead contract: no durable record, no transition.

        Fencing is checked twice, both times under the lock: once before
        the write, and again after the fsync. A takeover that lands
        inside that window is detected by the re-check, and the record —
        already durable — is truncated back off before the raise, so the
        superseded generation leaves no trace (the truncation is skipped
        if another writer already appended past us; the record is then an
        orphan inside a transaction that can never commit, which recovery
        discards anyway).
        """
        record = {"seq": 0, "kind": str(kind), "data": data or {}}
        if now is not None:
            record["now"] = float(now)
        if self.generation is not None:
            record["gen"] = self.generation
        with self._lock:
            if self.fenced():
                self._raise_fenced()
            handle = self._open()
            self._seq += 1
            record["seq"] = self._seq
            frame = _frame(json.dumps(record,
                                      separators=(",", ":"),
                                      sort_keys=True).encode("utf-8"))
            start = os.fstat(handle.fileno()).st_size
            handle.write(frame)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
            if self.fenced():
                end = os.fstat(handle.fileno()).st_size
                if end == start + len(frame):
                    # nothing landed after us: unwrite the record
                    handle.truncate(start)
                    handle.flush()
                    if self._fsync:
                        os.fsync(handle.fileno())
                self._seq -= 1
                self._raise_fenced()
            self.records_written += 1
        return record["seq"]

    def compact(self, state: dict) -> None:
        """Fold the log into a snapshot and truncate it.

        ``state`` must pass :func:`repro.service.schema
        .check_registry_state` — the registry-state wire schema — so a
        future recovery can trust its shape. The snapshot is written
        atomically *first*; only then is the log truncated, so a crash
        between the two leaves a snapshot plus a (harmlessly) replayable
        log, never neither.
        """
        from repro.service.schema import check_registry_state

        if self.fenced():
            raise FleetError("refusing to compact a fenced WAL")
        check_registry_state(state)
        with self._lock:
            if self.fenced():  # re-check now that no append can race us
                raise FleetError("refusing to compact a fenced WAL")
            atomic_write_json(self.snapshot_path, state)
            handle = self._open()
            handle.truncate(0)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
            self.compactions += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _split_uncommitted(records: list[dict]
                       ) -> tuple[list[dict], list[dict]]:
    """Split the log into committed history and discarded records.

    Transaction-aware, not just tail-aware: an operation's records only
    enter the committed history when its ``commit`` marker arrives. An
    operation that ended in an ``abort`` (the writer failed mid-way and
    compensated), or whose ``begin`` is never matched by either marker
    (a crash — or a fenced writer that could not even append its abort
    record, detectable because the next operation's ``begin`` or the end
    of the log arrives first), is discarded wholesale *even when later
    operations committed after it* — replaying a buried aborted admission
    would resurrect a ghost job the daemon already compensated away.
    Records outside any transaction pass through as committed.
    """
    committed: list[dict] = []
    discarded: list[dict] = []
    pending: list[dict] | None = None
    for record in records:
        kind = record.get("kind")
        if kind == "begin":
            if pending is not None:
                discarded.extend(pending)  # begun, never resolved
            pending = [record]
        elif kind == "commit":
            if pending is not None:
                committed.extend(pending)
                pending = None
            committed.append(record)
        elif kind == "abort":
            if pending is not None:
                discarded.extend(pending)
                pending = None
            discarded.append(record)
        elif pending is not None:
            pending.append(record)
        else:
            committed.append(record)
    if pending is not None:
        discarded.extend(pending)
    return committed, discarded
