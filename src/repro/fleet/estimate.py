"""Fabric-state estimation: telemetry samples → a live ``Topology`` view.

The estimator keeps one EWMA of achieved bandwidth per link and classifies
each link as healthy, degraded (with a capacity factor), or down. Two
mechanisms keep transient noise from thrashing the planner:

* **margin hysteresis** — leaving a bad state needs the estimate to clear
  the entry threshold by ``recover_margin``, so an estimate hovering at
  the boundary cannot oscillate;
* **a transition cool-down** — after any transition a link's state is
  frozen for ``cooldown`` scenario-seconds, so a flapping link yields at
  most one transition (and hence at most one replan) per window.

Transitions — not states — are the control plane's events: ``observe``
returns a :class:`LinkTransition` exactly when a link's classification
changes, and the controller reacts to those.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.errors import FleetError
from repro.fleet.telemetry import LinkSample
from repro.topology.topology import Topology
from repro.topology.transforms import with_capacity_overrides


class LinkHealth(enum.Enum):
    """The estimator's per-link verdict."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DOWN = "down"


@dataclass
class LinkEstimate:
    """Live state of one link.

    Attributes:
        capacity: declared bytes/s (the fabric's advertised rate).
        ewma: smoothed achieved bandwidth; ``None`` before any sample.
        health: current classification.
        samples: observations folded in so far.
        last_transition: scenario time of the last classification change.
    """

    capacity: float
    ewma: float | None = None
    health: LinkHealth = LinkHealth.HEALTHY
    samples: int = 0
    last_transition: float | None = None

    @property
    def factor(self) -> float:
        """Estimated fraction of declared capacity the link delivers."""
        if self.ewma is None:
            return 1.0
        return self.ewma / self.capacity

    def to_dict(self) -> dict:
        return {"capacity": self.capacity, "ewma": self.ewma,
                "health": self.health.value, "factor": self.factor,
                "samples": self.samples,
                "last_transition": self.last_transition}


@dataclass(frozen=True)
class LinkTransition:
    """One classification change — the event the controller reacts to."""

    link: tuple[int, int]
    time: float
    old: LinkHealth
    new: LinkHealth
    factor: float

    def __str__(self) -> str:
        return (f"link {self.link[0]}->{self.link[1]} "
                f"{self.old.value} -> {self.new.value} "
                f"(factor {self.factor:.2f}) at t={self.time:g}")


class FabricEstimator:
    """EWMA + hysteresis fabric-state estimator over one declared fabric.

    Args:
        topology: the declared fabric; samples for unknown links are
            rejected (they mean crossed wires, not news).
        smoothing: EWMA weight of the newest sample (1.0 = trust the last
            sample entirely).
        degraded_below: factor below which a link counts as degraded.
        down_below: factor below which a link counts as down (lost probes
            — ``loss >= 1`` — force this regardless of bandwidth).
        recover_margin: extra factor a link must clear *above* a
            threshold to leave the worse state (margin hysteresis).
        cooldown: scenario-seconds after a transition during which the
            link's classification is frozen (flap suppression).
        min_samples: observations required before the first transition —
            one outlier cannot reclassify a link.
    """

    def __init__(self, topology: Topology, *, smoothing: float = 0.5,
                 degraded_below: float = 0.8, down_below: float = 0.05,
                 recover_margin: float = 0.1, cooldown: float = 0.0,
                 min_samples: int = 2) -> None:
        if not 0 < smoothing <= 1:
            raise FleetError("smoothing must be in (0, 1]")
        if not 0 < down_below < degraded_below < 1:
            raise FleetError(
                "need 0 < down_below < degraded_below < 1")
        if recover_margin < 0 or cooldown < 0:
            raise FleetError(
                "recover_margin and cooldown must be non-negative")
        if degraded_below + recover_margin >= 1:
            raise FleetError(
                "degraded_below + recover_margin must stay below 1, or a "
                "healed link could never re-classify as healthy (the EWMA "
                "only approaches declared capacity asymptotically)")
        if min_samples < 1:
            raise FleetError("min_samples must be at least 1")
        self.topology = topology
        self.smoothing = smoothing
        self.degraded_below = degraded_below
        self.down_below = down_below
        self.recover_margin = recover_margin
        self.cooldown = cooldown
        self.min_samples = min_samples
        self._links: dict[tuple[int, int], LinkEstimate] = {
            key: LinkEstimate(capacity=link.capacity)
            for key, link in topology.links.items()}
        #: recent transitions (bounded: a daemon observes indefinitely)
        self.transitions: deque[LinkTransition] = deque(maxlen=1000)

    # ------------------------------------------------------------------
    # folding samples in
    # ------------------------------------------------------------------
    def observe(self, sample: LinkSample) -> LinkTransition | None:
        """Fold one sample in; returns the transition it caused, if any."""
        estimate = self._links.get(sample.link)
        if estimate is None:
            raise FleetError(
                f"sample for link {sample.link} not in "
                f"{self.topology.name}")
        if sample.loss >= 1.0:
            # Every probe lost is a hard signal — the smoothed history is
            # stale, not a counterweight. (min_samples and the cool-down
            # still guard against a single blip replanning the fleet.)
            estimate.ewma = 0.0
        elif estimate.ewma is None:
            estimate.ewma = sample.bandwidth
        else:
            estimate.ewma = (self.smoothing * sample.bandwidth
                             + (1 - self.smoothing) * estimate.ewma)
        estimate.samples += 1

        target = self._classify(estimate)
        if target is estimate.health:
            return None
        if estimate.samples < self.min_samples:
            return None
        if (estimate.last_transition is not None
                and sample.time - estimate.last_transition < self.cooldown):
            return None  # flap suppression: state frozen inside the window
        transition = LinkTransition(link=sample.link, time=sample.time,
                                    old=estimate.health, new=target,
                                    factor=estimate.factor)
        estimate.health = target
        estimate.last_transition = sample.time
        self.transitions.append(transition)
        return transition

    def restore(self, link: tuple[int, int], *, health: LinkHealth,
                ewma: float | None, last_transition: float | None,
                samples: int) -> None:
        """Rehydrate one link's estimate after a daemon restart.

        The fleet WAL replays recorded transitions through this hook so a
        recovered daemon resumes with the same classification *and* the
        same flap-suppression clock: a link that transitioned just before
        the crash stays frozen for the remainder of its cool-down window
        instead of getting a fresh window (which would let a flap that
        straddles the crash trigger a second replan).
        """
        estimate = self._links.get(link)
        if estimate is None:
            raise FleetError(
                f"cannot restore link {link}: not in {self.topology.name}")
        if ewma is not None and (ewma < 0 or ewma != ewma):
            raise FleetError(f"cannot restore link {link}: bad ewma {ewma}")
        estimate.health = health
        estimate.ewma = ewma
        estimate.last_transition = last_transition
        estimate.samples = max(int(samples), 0)

    def observe_all(self, samples: list[LinkSample]) -> list[LinkTransition]:
        """Fold a whole collection interval in; returns its transitions."""
        out = []
        for sample in samples:
            transition = self.observe(sample)
            if transition is not None:
                out.append(transition)
        return out

    def _classify(self, estimate: LinkEstimate) -> LinkHealth:
        """Threshold classification with asymmetric (hysteresis) exits."""
        factor = estimate.factor
        current = estimate.health
        down_exit = self.down_below + self.recover_margin
        degraded_exit = self.degraded_below + self.recover_margin
        if factor < self.down_below:
            return LinkHealth.DOWN
        if current is LinkHealth.DOWN and factor < down_exit:
            return LinkHealth.DOWN
        if factor < self.degraded_below:
            return LinkHealth.DEGRADED
        if (current in (LinkHealth.DEGRADED, LinkHealth.DOWN)
                and factor < degraded_exit):
            return LinkHealth.DEGRADED
        return LinkHealth.HEALTHY

    # ------------------------------------------------------------------
    # the live view
    # ------------------------------------------------------------------
    def estimate(self, link: tuple[int, int]) -> LinkEstimate:
        try:
            return self._links[link]
        except KeyError:
            raise FleetError(f"no link {link} in {self.topology.name}") \
                from None

    def degraded_links(self) -> dict[tuple[int, int], float]:
        """Degraded links and their estimated capacity factors.

        Factors are clamped to ``[down_below, 1]``: a cooldown-frozen
        DEGRADED link whose latest probes were all lost has EWMA 0 but
        must keep positive live capacity until the estimator may declare
        it down, and one whose EWMA wandered above declared capacity must
        not advertise bandwidth the fabric does not have.
        """
        return {key: min(1.0, max(e.factor, self.down_below))
                for key, e in sorted(self._links.items())
                if e.health is LinkHealth.DEGRADED}

    def down_links(self) -> list[tuple[int, int]]:
        return sorted(key for key, e in self._links.items()
                      if e.health is LinkHealth.DOWN)

    def live_topology(self, name: str | None = None) -> Topology:
        """The fabric as estimated: degraded capacities, dead links cut.

        Healthy links keep their *declared* capacity — trusting small EWMA
        wobbles would re-fingerprint every plan request on every poll.
        """
        return with_capacity_overrides(
            self.topology, self.degraded_links(), drop=self.down_links(),
            name=name or f"{self.topology.name}-live")

    def snapshot(self) -> dict:
        """JSON-ready summary for ``teccl fleet status`` and dashboards."""
        counts = {health.value: 0 for health in LinkHealth}
        for estimate in self._links.values():
            counts[estimate.health.value] += 1
        return {
            "topology": self.topology.name,
            "links": len(self._links),
            "health": counts,
            "degraded": {f"{s}->{d}": round(f, 4)
                         for (s, d), f in self.degraded_links().items()},
            "down": [f"{s}->{d}" for s, d in self.down_links()],
            "transitions": len(self.transitions),
        }
