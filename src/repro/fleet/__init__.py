"""The fleet control plane: telemetry → estimate → replan, online.

Everything below the planner service is offline machinery — solvers,
caches, warm starts, a conformance oracle. This package is the loop that
*drives* them from observed fabric state, turning the repo from a solver
library into a serving system:

* :mod:`~repro.fleet.telemetry` — pluggable link-metric streams
  (synthetic seeded scenarios, recorded traces);
* :mod:`~repro.fleet.estimate` — EWMA + hysteresis fabric estimation,
  producing a live :class:`~repro.topology.Topology` view;
* :mod:`~repro.fleet.controller` — the adaptation daemon: cost-gated warm
  replans through the :class:`~repro.service.Planner`, every activation
  vetted by the conformance oracle, with an active/pending/rollback
  schedule registry;
* :mod:`~repro.fleet.orchestrator` — multi-job admission with priority
  capacity shares and batched replan fan-out;
* :mod:`~repro.fleet.wal` — write-ahead persistence: a checksummed,
  fsync'd JSONL log of every lifecycle transition, snapshot compaction,
  crash recovery (:meth:`AdaptationController.recover`), and
  generation-lease fencing for graceful daemon handoff.

Quickstart::

    from repro import collectives, topology
    from repro.core import TecclConfig
    from repro.fleet import (AdaptationController, FleetJob, LinkEvent,
                             SyntheticTelemetry)
    from repro.service import Planner

    topo = topology.ring(8, capacity=1.0)
    source = SyntheticTelemetry(
        topo, events=[LinkEvent(at=2.0, link=(0, 1), factor=0.5)])
    with Planner(executor="inline") as planner:
        daemon = AdaptationController(topo, source, planner)
        daemon.add_job(FleetJob(name="alltoall",
                                demand=collectives.alltoall(topo.gpus, 1),
                                config=TecclConfig(chunk_bytes=1.0)))
        for _ in range(6):
            for decision in daemon.step():
                print(decision)
"""

from repro.fleet.controller import (AdaptationController, AdaptationDecision,
                                    CostGate, FleetJob, RegistryEntry,
                                    ScheduleRegistry, ScheduleStatus,
                                    links_used_by, predicted_finish)
from repro.fleet.estimate import (FabricEstimator, LinkEstimate, LinkHealth,
                                  LinkTransition)
from repro.fleet.orchestrator import FleetOrchestrator
from repro.fleet.telemetry import (LinkEvent, LinkSample, SyntheticTelemetry,
                                   TelemetrySource, TraceTelemetry)
from repro.fleet.wal import (GenerationLease, WalState, WriteAheadLog,
                             atomic_write_json)

__all__ = [
    "LinkSample", "LinkEvent", "TelemetrySource", "SyntheticTelemetry",
    "TraceTelemetry",
    "FabricEstimator", "LinkEstimate", "LinkHealth", "LinkTransition",
    "AdaptationController", "AdaptationDecision", "CostGate", "FleetJob",
    "RegistryEntry", "ScheduleRegistry", "ScheduleStatus",
    "predicted_finish", "links_used_by",
    "FleetOrchestrator",
    "WriteAheadLog", "GenerationLease", "WalState", "atomic_write_json",
]
