"""TE-CCL reproduction: collective communication as multi-commodity flow.

Quickstart::

    from repro import topology, collectives
    from repro.core import TecclConfig, solve_milp

    topo = topology.dgx1()
    demand = collectives.allgather(topo.gpus, chunks_per_gpu=1)
    outcome = solve_milp(topo, demand, TecclConfig(chunk_bytes=25e3))
    print(outcome.schedule, outcome.finish_time)
"""

__version__ = "1.1.0"

from repro import (analysis, baselines, collectives, core, failures, msccl,
                   obs, service, simulate, solver, toposearch, topology)
from repro.errors import (DemandError, ExportError, InfeasibleError,
                          ModelError, ObservabilityError, ReproError,
                          ScheduleError, ServiceError, TopologyError)

__all__ = [
    "collectives", "core", "obs", "service", "simulate", "solver",
    "topology", "analysis", "baselines", "failures", "msccl", "toposearch",
    "ReproError", "TopologyError", "DemandError", "ModelError",
    "InfeasibleError", "ScheduleError", "ExportError", "ServiceError",
    "ObservabilityError", "__version__",
]
