"""Whole-training-step synthesis: schedule every collective a job issues.

Takes a :class:`~repro.collectives.workloads.Workload` and synthesizes each
of its calls on one fabric, deduplicating identical (demand, chunk-size)
calls — a bucketed ALLREDUCE issues dozens of *identical* collectives per
step, and the schedule for one bucket is the schedule for all of them. The
result aggregates the numbers an operator actually budgets: per-call and
per-phase communication time, and the step's total.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.collectives.workloads import CollectiveCall, Workload
from repro.core.config import TecclConfig
from repro.core.solve import Method, SynthesisResult, synthesize
from repro.errors import DemandError
from repro.topology.topology import Topology


@dataclass
class ScheduledCall:
    """One workload call with its synthesized schedule.

    ``reused`` marks calls that shared another call's synthesis (identical
    demand and chunk size) — their solve cost was paid once.
    """

    call: CollectiveCall
    synthesis: SynthesisResult
    reused: bool

    @property
    def finish_time(self) -> float:
        return self.synthesis.finish_time


@dataclass
class StepReport:
    """Every collective of one training step, scheduled on one fabric."""

    workload_name: str
    scheduled: list[ScheduledCall]

    @property
    def total_time(self) -> float:
        """Serial communication time of the step (calls back to back).

        An upper bound: overlapping independent calls (e.g. bucket i+1's
        reduce-scatter behind bucket i's allgather) needs the multi-tenant
        merge, which :func:`synthesize_workload` deliberately leaves to the
        caller — buckets arrive over time, not at once.
        """
        return sum(s.finish_time for s in self.scheduled)

    @property
    def solve_time(self) -> float:
        """Total solver investment (deduplicated calls paid once)."""
        return sum(s.synthesis.solve_time
                   for s in self.scheduled if not s.reused)

    def phase_time(self, phase: str) -> float:
        return sum(s.finish_time for s in self.scheduled
                   if s.call.phase == phase)

    def slowest_call(self) -> ScheduledCall:
        return max(self.scheduled, key=lambda s: s.finish_time)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of calls served by a reused synthesis."""
        if not self.scheduled:
            raise DemandError("empty step report")
        reused = sum(1 for s in self.scheduled if s.reused)
        return reused / len(self.scheduled)


def _call_key(call: CollectiveCall) -> tuple:
    return (tuple(call.demand.triples()), call.chunk_bytes)


def synthesize_workload(topology: Topology, workload: Workload,
                        config: TecclConfig, *,
                        method: Method = Method.AUTO,
                        dedupe: bool = True) -> StepReport:
    """Synthesize every collective of a workload on one fabric.

    ``config.chunk_bytes`` is overridden per call (each call carries its
    own size); ``config.num_epochs`` is cleared so each call sizes its own
    horizon. With ``dedupe`` (default), calls with identical demand and
    chunk size share one synthesis.
    """
    cache: dict[tuple, SynthesisResult] = {}
    scheduled: list[ScheduledCall] = []
    for call in workload.calls:
        key = _call_key(call)
        cached = cache.get(key) if dedupe else None
        if cached is not None:
            scheduled.append(ScheduledCall(call=call, synthesis=cached,
                                           reused=True))
            continue
        call_config = replace(config, chunk_bytes=call.chunk_bytes,
                              num_epochs=None)
        synthesis = synthesize(topology, call.demand, call_config,
                               method=method)
        cache[key] = synthesis
        scheduled.append(ScheduledCall(call=call, synthesis=synthesis,
                                       reused=False))
    return StepReport(workload_name=workload.name, scheduled=scheduled)
