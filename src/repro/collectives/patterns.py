"""Standard collective communication patterns as demand matrices.

Each builder takes the participating GPUs (pass ``topology.gpus``) and a chunk
granularity and returns a :class:`~repro.collectives.demand.Demand`. Chunk ids
are per-source; what a chunk *means* differs per collective and is documented
on each builder (this mirrors SCCL/TACCL conventions, see Table 3's caption).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.collectives.demand import Demand
from repro.errors import DemandError


def _check_gpus(gpus: Sequence[int], minimum: int = 2) -> list[int]:
    gpus = list(gpus)
    if len(gpus) < minimum:
        raise DemandError(f"collective needs at least {minimum} GPUs")
    if len(set(gpus)) != len(gpus):
        raise DemandError("duplicate GPU ids")
    return gpus


def allgather(gpus: Sequence[int], chunks_per_gpu: int = 1) -> Demand:
    """Every GPU sends all its chunks to every other GPU (multicast).

    Chunk ``(s, c)`` is the c-th block of source s's input buffer; every other
    GPU wants every ``(s, c)`` — the demand that benefits most from copy.
    """
    gpus = _check_gpus(gpus)
    _check_chunks(chunks_per_gpu)
    return Demand.from_triples(
        (s, c, d)
        for s in gpus for c in range(chunks_per_gpu)
        for d in gpus if d != s)


def alltoall(gpus: Sequence[int], chunks_per_pair: int = 1) -> Demand:
    """Every GPU sends a *distinct* block to every other GPU.

    Chunk ids follow our notation from Table 7's caption: chunk
    ``(s, d_index * chunks_per_pair + r)`` is the r-th block source ``s``
    sends to the d_index-th other GPU; no chunk has two destinations, so the
    demand never benefits from copy and the LP form applies (§4.1).
    """
    gpus = _check_gpus(gpus)
    _check_chunks(chunks_per_pair)
    triples = []
    for s in gpus:
        others = [d for d in gpus if d != s]
        for d_index, d in enumerate(others):
            for r in range(chunks_per_pair):
                triples.append((s, d_index * chunks_per_pair + r, d))
    return Demand.from_triples(triples)


def broadcast(source: int, destinations: Sequence[int],
              num_chunks: int = 1) -> Demand:
    """One source multicasts its buffer to all destinations."""
    destinations = [d for d in destinations if d != source]
    if not destinations:
        raise DemandError("broadcast needs at least one destination")
    _check_chunks(num_chunks)
    return Demand.from_triples(
        (source, c, d) for c in range(num_chunks) for d in destinations)


def gather(root: int, sources: Sequence[int], chunks_per_gpu: int = 1) -> Demand:
    """Every source sends its buffer to one root."""
    sources = [s for s in sources if s != root]
    if not sources:
        raise DemandError("gather needs at least one non-root source")
    _check_chunks(chunks_per_gpu)
    return Demand.from_triples(
        (s, c, root) for s in sources for c in range(chunks_per_gpu))


def scatter(root: int, destinations: Sequence[int],
            chunks_per_dst: int = 1) -> Demand:
    """The root sends a distinct block to each destination."""
    destinations = [d for d in destinations if d != root]
    if not destinations:
        raise DemandError("scatter needs at least one destination")
    _check_chunks(chunks_per_dst)
    triples = []
    for d_index, d in enumerate(destinations):
        for r in range(chunks_per_dst):
            triples.append((root, d_index * chunks_per_dst + r, d))
    return Demand.from_triples(triples)


def reduce_scatter(gpus: Sequence[int], chunks_per_pair: int = 1) -> Demand:
    """REDUCESCATTER's traffic pattern.

    Communication-wise identical to ALLTOALL (each GPU contributes a distinct
    block toward each reducer); the arithmetic reduction itself is outside the
    paper's flow model, which we follow (see DESIGN.md deviations).
    """
    return alltoall(gpus, chunks_per_pair)


def allreduce_phases(gpus: Sequence[int],
                     chunks_per_pair: int = 1) -> tuple[Demand, Demand]:
    """ALLREDUCE as the canonical REDUCESCATTER + ALLGATHER pair.

    Returns the two phase demands; schedule each phase separately and run
    them back-to-back (the paper treats ALLREDUCE the same way, via its
    constituent collectives).
    """
    gpus = _check_gpus(gpus)
    return reduce_scatter(gpus, chunks_per_pair), allgather(gpus, 1)


def scatter_gather(root: int, gpus: Sequence[int],
                   num_chunks: int = 1) -> Demand:
    """SCATTER-GATHER (halving-doubling building block): the root scatters
    distinct blocks, then every GPU gathers all blocks — expressed as a single
    demand where every non-root GPU wants every root chunk plus its distinct
    block."""
    gpus = _check_gpus(gpus)
    if root not in gpus:
        raise DemandError("root must be one of the GPUs")
    _check_chunks(num_chunks)
    triples = []
    others = [g for g in gpus if g != root]
    for d_index, d in enumerate(others):
        for r in range(num_chunks):
            chunk = d_index * num_chunks + r
            for want in others:
                triples.append((root, chunk, want))
    return Demand.from_triples(triples)


def _check_chunks(count: int) -> None:
    if count < 1:
        raise DemandError("chunk count must be at least 1")
