"""Collective communication demands and chunk-size arithmetic."""

from repro.collectives.allreduce import (AllReduceOutcome,
                                         ring_allreduce_time,
                                         synthesize_allreduce)
from repro.collectives.chunking import (KB, MB, ChunkPlan,
                                        algorithmic_bandwidth, allgather_plan,
                                        alltoall_plan, from_transfer_size)
from repro.collectives.demand import (Demand, TenantDemand, Triple,
                                      merge_tenants)
from repro.collectives.extended import (alltoallv, halo_exchange,
                                        hierarchical_allgather)
from repro.collectives.steptime import (ScheduledCall, StepReport,
                                        synthesize_workload)
from repro.collectives.workloads import (CollectiveCall, Workload,
                                          bert_like_job, data_parallel_job,
                                          dlrm_like_job, gradient_buckets,
                                          moe_job, pipeline_job)
from repro.collectives.patterns import (allgather, allreduce_phases, alltoall,
                                        broadcast, gather, reduce_scatter,
                                        scatter, scatter_gather)

__all__ = [
    "Demand", "TenantDemand", "Triple", "merge_tenants",
    "allgather", "alltoall", "broadcast", "gather", "scatter",
    "reduce_scatter", "allreduce_phases", "scatter_gather",
    "alltoallv", "halo_exchange", "hierarchical_allgather",
    "ChunkPlan", "allgather_plan", "alltoall_plan", "from_transfer_size",
    "algorithmic_bandwidth", "KB", "MB",
    "AllReduceOutcome", "synthesize_allreduce", "ring_allreduce_time",
    "Workload", "CollectiveCall", "gradient_buckets", "data_parallel_job",
    "bert_like_job", "moe_job", "dlrm_like_job", "pipeline_job",
    "synthesize_workload", "StepReport", "ScheduledCall",
]
