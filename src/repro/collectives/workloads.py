"""Training-job workload generators: from model configs to demand matrices.

The paper's motivation is concrete jobs — BERT spending 11% of its time
idle, DeepLight 63% (§1) — but its inputs are abstract demand matrices.
This module bridges the two: given a model-shaped description (parameter
count, expert count, embedding tables), produce the collective demands and
byte sizes that job actually schedules, ready for :func:`repro.core.solve
.synthesize`. Sizes follow the standard arithmetic of each parallelism
style; every constant is a keyword so the presets stay honest rather than
magic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.collectives.demand import Demand
from repro.collectives.extended import alltoallv
from repro.collectives.patterns import allgather, alltoall, reduce_scatter
from repro.errors import DemandError

MB = 1e6


@dataclass(frozen=True)
class CollectiveCall:
    """One collective a training step issues.

    Attributes:
        name: human-readable label ("grad-bucket-3", "moe-dispatch", ...).
        demand: the demand matrix over the participating GPUs.
        chunk_bytes: bytes per demand chunk (feed to ``TecclConfig``).
        phase: which part of the step issues it ("forward", "backward",
            "optimizer").
    """

    name: str
    demand: Demand
    chunk_bytes: float
    phase: str = "backward"

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise DemandError("chunk_bytes must be positive")

    @property
    def total_bytes(self) -> float:
        """Bytes this call puts on the wire at minimum (one copy/triple)."""
        return self.demand.num_triples * self.chunk_bytes


@dataclass(frozen=True)
class Workload:
    """A training step's communication: an ordered list of collectives."""

    name: str
    calls: tuple[CollectiveCall, ...]

    def __post_init__(self) -> None:
        if not self.calls:
            raise DemandError(f"workload {self.name!r} has no collectives")

    @property
    def total_bytes(self) -> float:
        return sum(call.total_bytes for call in self.calls)

    def by_phase(self, phase: str) -> list[CollectiveCall]:
        return [c for c in self.calls if c.phase == phase]


def gradient_buckets(model_params: float, *, dtype_bytes: int = 2,
                     bucket_bytes: float = 25 * MB) -> list[float]:
    """Split a model's gradient bytes into allreduce buckets.

    DDP-style gradient bucketing: gradients are reduced in fixed-size
    buckets as backprop produces them, overlapping communication with
    compute. Returns the per-bucket byte sizes (last bucket ragged).
    """
    if model_params <= 0 or dtype_bytes <= 0 or bucket_bytes <= 0:
        raise DemandError("model size, dtype and bucket must be positive")
    total = model_params * dtype_bytes
    count = max(1, math.ceil(total / bucket_bytes))
    sizes = [bucket_bytes] * (count - 1)
    sizes.append(total - bucket_bytes * (count - 1))
    return sizes


def data_parallel_job(gpus: list[int], *, model_params: float,
                      dtype_bytes: int = 2, bucket_bytes: float = 25 * MB,
                      name: str = "data-parallel") -> Workload:
    """Data-parallel training: one bucketed ALLREDUCE per step.

    Each bucket becomes an RS + AG pair (the paper's ALLREDUCE treatment);
    per-GPU chunk size is the bucket's shard (``bucket / N``), the quantum
    a ring or a TE-CCL schedule actually moves.
    """
    if len(gpus) < 2:
        raise DemandError("data parallelism needs at least 2 GPUs")
    calls: list[CollectiveCall] = []
    for index, size in enumerate(gradient_buckets(
            model_params, dtype_bytes=dtype_bytes,
            bucket_bytes=bucket_bytes)):
        shard = size / len(gpus)
        calls.append(CollectiveCall(
            name=f"grad-bucket-{index}-rs",
            demand=reduce_scatter(gpus, 1), chunk_bytes=shard,
            phase="backward"))
        calls.append(CollectiveCall(
            name=f"grad-bucket-{index}-ag",
            demand=allgather(gpus, 1), chunk_bytes=shard,
            phase="backward"))
    return Workload(name=name, calls=tuple(calls))


def bert_like_job(gpus: list[int], *, name: str = "bert-large") -> Workload:
    """BERT-Large data-parallel training (the paper's 11%-idle example).

    340M parameters in fp16 gradients, DDP-default 25 MB buckets.
    """
    return data_parallel_job(gpus, model_params=340e6, dtype_bytes=2,
                             name=name)


def moe_job(gpus: list[int], *, tokens_per_gpu: int = 4096,
            hidden_bytes: float = 2048, capacity_factor: float = 1.25,
            skew: float = 0.0, name: str = "moe") -> Workload:
    """Mixture-of-experts: the dispatch/combine ALLTOALL(V) pair.

    Each GPU routes its tokens' activations to the expert-owning GPUs and
    receives the processed results back. ``skew`` in [0, 1) tilts token
    counts toward lower-ranked experts (hot experts — the imbalance that
    makes MoE ALLTOALLV rather than ALLTOALL); 0 gives the uniform case.
    """
    n = len(gpus)
    if n < 2:
        raise DemandError("MoE routing needs at least 2 GPUs")
    if not 0 <= skew < 1:
        raise DemandError("skew must be in [0, 1)")
    if tokens_per_gpu < n:
        raise DemandError("need at least one token per peer")
    routed = tokens_per_gpu * capacity_factor
    weights = [1.0 - skew * (rank / max(1, n - 1)) for rank in range(n)]
    total_weight = sum(weights)

    counts: dict[tuple[int, int], int] = {}
    for src_idx, src in enumerate(gpus):
        for dst_idx, dst in enumerate(gpus):
            if src == dst:
                continue
            share = routed * weights[dst_idx] / total_weight
            counts[(src, dst)] = max(1, round(share / 128))  # 128-token cells
    dispatch = alltoallv(counts)
    combine = alltoallv({(d, s): c for (s, d), c in counts.items()})
    chunk = 128 * hidden_bytes
    return Workload(name=name, calls=(
        CollectiveCall(name="moe-dispatch", demand=dispatch,
                       chunk_bytes=chunk, phase="forward"),
        CollectiveCall(name="moe-combine", demand=combine,
                       chunk_bytes=chunk, phase="forward"),
    ))


def dlrm_like_job(gpus: list[int], *, batch_per_gpu: int = 512,
                  embedding_dim: int = 128, dtype_bytes: int = 4,
                  model_params: float = 25e6,
                  name: str = "dlrm") -> Workload:
    """Recommendation-model training (the paper's DeepLight, 63% idle).

    Model-parallel embedding tables make the step ALLTOALL-heavy: each GPU
    exchanges embedding lookups for its batch shard with every table owner
    (forward) and the corresponding gradients back (backward), plus a small
    dense-MLP allreduce.
    """
    n = len(gpus)
    if n < 2:
        raise DemandError("DLRM sharding needs at least 2 GPUs")
    lookup_bytes = batch_per_gpu * embedding_dim * dtype_bytes / n
    dense_shard = model_params * dtype_bytes / n
    return Workload(name=name, calls=(
        CollectiveCall(name="emb-forward", demand=alltoall(gpus, 1),
                       chunk_bytes=lookup_bytes, phase="forward"),
        CollectiveCall(name="emb-backward", demand=alltoall(gpus, 1),
                       chunk_bytes=lookup_bytes, phase="backward"),
        CollectiveCall(name="dense-rs", demand=reduce_scatter(gpus, 1),
                       chunk_bytes=dense_shard, phase="backward"),
        CollectiveCall(name="dense-ag", demand=allgather(gpus, 1),
                       chunk_bytes=dense_shard, phase="backward"),
    ))


def pipeline_job(stages: list[int], *, microbatch_bytes: float = 4 * MB,
                 num_microbatches: int = 4,
                 name: str = "pipeline") -> Workload:
    """Pipeline parallelism: stage-to-stage activation/gradient streams.

    Stage i sends activations forward to i+1 and gradients backward to
    i−1, one chunk per microbatch — point-to-point demands with heavy
    pipelining potential (exactly where α-aware scheduling pays, Table 3).
    """
    if len(stages) < 2:
        raise DemandError("a pipeline needs at least 2 stages")
    if num_microbatches < 1:
        raise DemandError("need at least one microbatch")
    forward = Demand.from_triples(
        (stages[i], m, stages[i + 1])
        for i in range(len(stages) - 1) for m in range(num_microbatches))
    backward = Demand.from_triples(
        (stages[i + 1], m, stages[i])
        for i in range(len(stages) - 1) for m in range(num_microbatches))
    return Workload(name=name, calls=(
        CollectiveCall(name="activations", demand=forward,
                       chunk_bytes=microbatch_bytes, phase="forward"),
        CollectiveCall(name="gradients", demand=backward,
                       chunk_bytes=microbatch_bytes, phase="backward"),
    ))
