"""ALLREDUCE as a scheduled two-phase composition (REDUCESCATTER + ALLGATHER).

The paper treats ALLREDUCE "the same way, via its constituent collectives"
(see :func:`repro.collectives.patterns.allreduce_phases`); this module turns
that remark into an executable pipeline: synthesize both phases with TE-CCL,
stitch them back to back (the reduction arithmetic is a barrier — every
reducer must hold all contributions before the gather of results can start),
and report the combined cost against the textbook ring ALLREDUCE.

The arithmetic itself stays outside the flow model, as in the paper: what is
scheduled is the traffic, with phase-1 chunk ``(s, d·C + r)`` standing for
source ``s``'s contribution to the block reduced at the d-th GPU, and
phase-2 chunk ``(d, r)`` standing for that reduced block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.patterns import allgather, reduce_scatter
from repro.core.config import TecclConfig
from repro.core.solve import Method, SynthesisResult, synthesize
from repro.errors import DemandError
from repro.topology.topology import Topology


@dataclass
class AllReduceOutcome:
    """Both synthesized phases of one ALLREDUCE plus the combined cost."""

    reduce_scatter: SynthesisResult
    allgather: SynthesisResult
    chunks_per_pair: int
    chunk_bytes: float

    @property
    def finish_time(self) -> float:
        """End-to-end time with the reduction barrier between phases."""
        return self.reduce_scatter.finish_time + self.allgather.finish_time

    @property
    def solve_time(self) -> float:
        return (self.reduce_scatter.solve_time
                + self.allgather.solve_time)

    def bus_bandwidth(self, num_gpus: int, input_bytes: float) -> float:
        """The standard ALLREDUCE bus-bandwidth metric.

        ``2·(N−1)/N · S / t`` — the factor normalises for the minimum
        traffic any ALLREDUCE algorithm must move, making numbers
        comparable across GPU counts (NCCL reports this metric).
        """
        if num_gpus < 2:
            raise DemandError("bus bandwidth needs at least 2 GPUs")
        if self.finish_time <= 0:
            raise DemandError("finish time is not positive")
        return (2.0 * (num_gpus - 1) / num_gpus
                * input_bytes / self.finish_time)


def synthesize_allreduce(topology: Topology, config: TecclConfig, *,
                         chunks_per_pair: int = 1,
                         method: Method = Method.AUTO) -> AllReduceOutcome:
    """Synthesize both ALLREDUCE phases on the same fabric.

    The REDUCESCATTER phase is ALLTOALL-shaped (each GPU contributes a
    distinct block to each reducer) and under AUTO routes to the scalable
    LP; the ALLGATHER phase is multicast and routes to the MILP. Phases
    are solved independently — the reduction barrier means neither can
    borrow the other's idle capacity, so per-phase optimality composes.
    """
    gpus = topology.gpus
    if len(gpus) < 2:
        raise DemandError("allreduce needs at least 2 GPUs")
    rs_demand = reduce_scatter(gpus, chunks_per_pair)
    ag_demand = allgather(gpus, 1)
    rs = synthesize(topology, rs_demand, config, method=method)
    ag = synthesize(topology, ag_demand, config, method=method)
    return AllReduceOutcome(reduce_scatter=rs, allgather=ag,
                            chunks_per_pair=chunks_per_pair,
                            chunk_bytes=config.chunk_bytes)


def ring_allreduce_time(topology: Topology, chunk_bytes: float,
                        ring: list[int] | None = None) -> float:
    """Closed-form ring ALLREDUCE: 2·(N−1) steps paced by the slowest hop.

    The classic baseline every synthesized ALLREDUCE must beat or match;
    (N−1) reduce-scatter steps plus (N−1) allgather steps, each costing
    the worst ring hop's ``α + S/B``.
    """
    from repro.baselines.ring import find_ring

    ring = ring or find_ring(topology)
    n = len(ring)
    step = max(topology.link(ring[i], ring[(i + 1) % n])
               .transfer_time(chunk_bytes) for i in range(n))
    return 2 * (n - 1) * step
