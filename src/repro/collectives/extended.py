"""Extended collective patterns for real training workloads.

Beyond the paper's headline ALLGATHER/ALLTOALL, production ML jobs schedule
variants the multi-commodity model handles for free: uneven ALLTOALLV (MoE
token routing), halo exchanges (pipeline/tensor-parallel neighbours), and
hierarchical collectives that stage intra-chassis aggregation before the
cross-fabric phase. They all reduce to demand matrices, which is the point
of the formulation — §1's "opportunity to improve other aspects of machine
learning collectives".
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.collectives.demand import Demand
from repro.errors import DemandError


def alltoallv(chunk_counts: Mapping[tuple[int, int], int]) -> Demand:
    """Uneven all-to-all: ``chunk_counts[(src, dst)]`` chunks per pair.

    The MoE dispatch pattern: each expert shard receives a different token
    volume from each rank. Pairs with zero count may be omitted.
    """
    triples = []
    next_chunk: dict[int, int] = {}
    for (src, dst), count in sorted(chunk_counts.items()):
        if src == dst:
            raise DemandError(f"pair ({src},{dst}) is a self-transfer")
        if count < 0:
            raise DemandError(f"pair ({src},{dst}) has negative count")
        for _ in range(count):
            chunk = next_chunk.get(src, 0)
            next_chunk[src] = chunk + 1
            triples.append((src, chunk, dst))
    if not triples:
        raise DemandError("alltoallv demand is empty")
    return Demand.from_triples(triples)


def halo_exchange(gpus: Sequence[int], chunks_per_neighbor: int = 1,
                  wrap: bool = True) -> Demand:
    """Neighbour exchange along a 1-D decomposition (pipeline parallelism).

    Each rank sends a distinct boundary block to its predecessor and its
    successor; with ``wrap`` the ends exchange too (ring decomposition).
    """
    gpus = list(gpus)
    if len(gpus) < 2:
        raise DemandError("halo exchange needs at least 2 ranks")
    if chunks_per_neighbor < 1:
        raise DemandError("chunk count must be at least 1")
    triples = []
    n = len(gpus)
    for idx, rank in enumerate(gpus):
        neighbors = []
        if wrap or idx + 1 < n:
            neighbors.append(gpus[(idx + 1) % n])
        if wrap or idx > 0:
            neighbors.append(gpus[(idx - 1) % n])
        for n_index, neighbor in enumerate(neighbors):
            for r in range(chunks_per_neighbor):
                triples.append(
                    (rank, n_index * chunks_per_neighbor + r, neighbor))
    return Demand.from_triples(triples)


def hierarchical_allgather(chassis: Sequence[Sequence[int]],
                           chunks_per_gpu: int = 1,
                           ) -> tuple[Demand, Demand]:
    """Two-phase ALLGATHER: within each chassis, then leaders across.

    Returns ``(intra, inter)`` demands. Phase 1 gathers each chassis's
    chunks onto every member; phase 2 exchanges the per-chassis aggregate
    between chassis leaders (the first GPU of each group), after which a
    final intra broadcast is a re-run of phase 1's schedule. The staging
    mirrors how NCCL exploits NVLink before touching the scale-out fabric.
    """
    groups = [list(g) for g in chassis]
    if len(groups) < 2:
        raise DemandError("need at least two chassis for the hierarchy")
    flat = [g for group in groups for g in group]
    if len(set(flat)) != len(flat):
        raise DemandError("chassis groups must be disjoint")
    if any(len(g) < 1 for g in groups):
        raise DemandError("every chassis needs at least one GPU")
    if chunks_per_gpu < 1:
        raise DemandError("chunk count must be at least 1")

    intra_triples = []
    for group in groups:
        if len(group) < 2:
            continue
        for s in group:
            for c in range(chunks_per_gpu):
                for d in group:
                    if d != s:
                        intra_triples.append((s, c, d))
    if not intra_triples:
        raise DemandError("no chassis has more than one GPU; "
                          "the hierarchy is pointless")

    leaders = [group[0] for group in groups]
    inter_triples = []
    # each leader forwards its chassis's aggregate: one chunk per member
    for group in groups:
        leader = group[0]
        aggregate_chunks = chunks_per_gpu * len(group)
        for c in range(aggregate_chunks):
            for other in leaders:
                if other != leader:
                    inter_triples.append((leader, c, other))
    return (Demand.from_triples(intra_triples),
            Demand.from_triples(inter_triples))
