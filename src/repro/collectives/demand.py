"""Collective demands: who wants which chunk from whom.

The paper's demand function is ``D : N × C × N → {0, 1}`` (Table 1):
``D[s, c, d] = 1`` iff destination ``d`` wants chunk ``c`` of source ``s``.
A *commodity* is a (source, chunk) pair; a commodity wanted by more than one
destination is exactly the case where in-network copy pays off, and is what
forces the MILP formulation (§4.1).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import DemandError
from repro.topology.topology import Topology

Triple = tuple[int, int, int]  # (source, chunk, destination)


@dataclass(frozen=True)
class Demand:
    """An immutable demand matrix.

    Internally a mapping from commodity ``(s, c)`` to the frozenset of
    destinations that want it. Chunk ids are dense per source
    (``0..num_chunks(s)-1``).
    """

    _wants: dict[tuple[int, int], frozenset[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_triples(triples: Iterable[Triple]) -> "Demand":
        """Build a demand from ``(source, chunk, destination)`` triples."""
        staging: dict[tuple[int, int], set[int]] = {}
        for s, c, d in triples:
            if s == d:
                raise DemandError(f"source {s} cannot demand from itself")
            if c < 0:
                raise DemandError(f"negative chunk id {c}")
            staging.setdefault((s, c), set()).add(d)
        return Demand({key: frozenset(dsts) for key, dsts in staging.items()})

    @staticmethod
    def empty() -> "Demand":
        return Demand({})

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def wants(self, s: int, c: int, d: int) -> bool:
        return d in self._wants.get((s, c), frozenset())

    def destinations(self, s: int, c: int) -> frozenset[int]:
        return self._wants.get((s, c), frozenset())

    def commodities(self) -> list[tuple[int, int]]:
        """All (source, chunk) pairs with at least one destination."""
        return sorted(self._wants)

    @property
    def sources(self) -> list[int]:
        return sorted({s for s, _ in self._wants})

    def chunks_of(self, source: int) -> list[int]:
        return sorted(c for s, c in self._wants if s == source)

    def num_chunks(self, source: int) -> int:
        return len(self.chunks_of(source))

    @property
    def endpoints(self) -> set[int]:
        """Every node that appears as a source or a destination."""
        nodes = {s for s, _ in self._wants}
        for dsts in self._wants.values():
            nodes.update(dsts)
        return nodes

    def triples(self) -> list[Triple]:
        out = [(s, c, d)
               for (s, c), dsts in self._wants.items() for d in dsts]
        out.sort()
        return out

    @property
    def num_triples(self) -> int:
        return sum(len(dsts) for dsts in self._wants.values())

    @property
    def num_commodities(self) -> int:
        return len(self._wants)

    def is_empty(self) -> bool:
        return not self._wants

    def benefits_from_copy(self) -> bool:
        """True iff some chunk is wanted by ≥ 2 destinations (multicast).

        This is the paper's criterion for needing the MILP: ALLGATHER-like
        demands benefit from copy, ALLTOALL-like demands do not (§4.1).
        """
        return any(len(dsts) > 1 for dsts in self._wants.values())

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation; triples sorted for stable output."""
        return {"triples": [list(t) for t in self.triples()]}

    @staticmethod
    def from_dict(data: dict) -> "Demand":
        """Parse the :meth:`to_dict` representation."""
        try:
            triples = [(int(s), int(c), int(d))
                       for s, c, d in data["triples"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise DemandError(f"malformed demand document: {exc}") from exc
        return Demand.from_triples(triples)

    # ------------------------------------------------------------------
    # validation & algebra
    # ------------------------------------------------------------------
    def validate(self, topology: Topology) -> None:
        """Check endpoints exist and are GPUs (switches relay, never demand)."""
        if self.is_empty():
            raise DemandError("demand is empty")
        for node in self.endpoints:
            if not 0 <= node < topology.num_nodes:
                raise DemandError(f"demand endpoint {node} not in topology")
            if topology.is_switch(node):
                raise DemandError(
                    f"node {node} is a switch; switches cannot source or "
                    "sink collective demands")

    def restrict_to(self, keep: Iterable[Triple]) -> "Demand":
        keep_set = set(keep)
        return Demand.from_triples(t for t in self.triples() if t in keep_set)

    def without(self, satisfied: Iterable[Triple]) -> "Demand":
        """Demand minus already-satisfied triples (A* demand updating)."""
        drop = set(satisfied)
        remaining = [t for t in self.triples() if t not in drop]
        if not remaining:
            return Demand.empty()
        return Demand.from_triples(remaining)

    def union_disjoint(self, other: "Demand") -> tuple["Demand", dict[Triple, Triple]]:
        """Merge two demands, renumbering the other's chunks to avoid clashes.

        Returns the merged demand and a mapping from the *other* demand's
        original triples to their renamed triples — the bookkeeping needed for
        multi-tenant priorities (§5 "Use in multi-tenant clusters").
        """
        offset = {s: self.num_chunks(s) for s in other.sources}
        renames: dict[Triple, Triple] = {}
        merged = list(self.triples())
        for s, c, d in other.triples():
            renamed = (s, c + offset.get(s, 0), d)
            renames[(s, c, d)] = renamed
            merged.append(renamed)
        return Demand.from_triples(merged), renames

    def __repr__(self) -> str:
        return (f"Demand(commodities={self.num_commodities}, "
                f"triples={self.num_triples}, "
                f"copy={'yes' if self.benefits_from_copy() else 'no'})")


@dataclass(frozen=True)
class TenantDemand:
    """One tenant's demand plus its completion-time priority weight (§5)."""

    demand: Demand
    priority: float = 1.0
    name: str = "tenant"

    def __post_init__(self) -> None:
        if self.priority <= 0:
            raise DemandError("tenant priority must be positive")


def merge_tenants(tenants: list[TenantDemand]) -> tuple[Demand, dict[Triple, float]]:
    """Merge tenant demands into one matrix (§5).

    Returns the merged demand and a per-triple priority weight map used to
    weight the objective's ``R`` terms.
    """
    if not tenants:
        raise DemandError("no tenants to merge")
    merged = tenants[0].demand
    weights: dict[Triple, float] = {
        t: tenants[0].priority for t in merged.triples()}
    for tenant in tenants[1:]:
        merged, renames = merged.union_disjoint(tenant.demand)
        for original in tenant.demand.triples():
            weights[renames[original]] = tenant.priority
    return merged, weights
