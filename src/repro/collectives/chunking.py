"""Chunk-size arithmetic shared by the evaluation harness.

The paper reports results against *output buffer size* (borrowed from TACCL,
§6 "Metrics"): the bytes each GPU holds once the collective completes. These
helpers convert between output buffer size, per-GPU transfer size, and the
chunk size the solver schedules, for each collective's geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DemandError

KB = 1e3
MB = 1e6


@dataclass(frozen=True)
class ChunkPlan:
    """The byte-level geometry of one collective run.

    Attributes:
        chunk_bytes: size of the unit the solver schedules.
        chunks_per_source: chunk count each source contributes (per commodity
            granularity, not per destination).
        output_buffer_bytes: bytes each GPU ends up with (TACCL's metric).
        transfer_bytes: bytes each GPU contributes ("transfer size", §6).
    """

    chunk_bytes: float
    chunks_per_source: int
    output_buffer_bytes: float
    transfer_bytes: float

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise DemandError("chunk size must be positive")

    def split(self, factor: int) -> "ChunkPlan":
        """A finer plan: each chunk cut into ``factor`` pieces.

        Conserves both invariants the evaluation relies on — the chunk
        count scales by exactly ``factor`` and the byte totals
        (``chunk_bytes × chunks_per_source``, the output buffer, the
        transfer size) are preserved. This is the §5 chunk-size sweep's
        move along one axis without touching the collective's geometry.
        """
        if factor < 1:
            raise DemandError("split factor must be at least 1")
        return ChunkPlan(chunk_bytes=self.chunk_bytes / factor,
                         chunks_per_source=self.chunks_per_source * factor,
                         output_buffer_bytes=self.output_buffer_bytes,
                         transfer_bytes=self.transfer_bytes)

    def merged(self, factor: int) -> "ChunkPlan":
        """The inverse of :meth:`split`: ``factor`` chunks fused into one.

        Requires the chunk count to divide evenly — merging may never drop
        or pad bytes.
        """
        if factor < 1:
            raise DemandError("merge factor must be at least 1")
        if self.chunks_per_source % factor:
            raise DemandError(
                f"cannot merge {self.chunks_per_source} chunks by "
                f"{factor}: count does not divide")
        return ChunkPlan(chunk_bytes=self.chunk_bytes * factor,
                         chunks_per_source=self.chunks_per_source // factor,
                         output_buffer_bytes=self.output_buffer_bytes,
                         transfer_bytes=self.transfer_bytes)


def allgather_plan(num_gpus: int, output_buffer_bytes: float,
                   chunks_per_gpu: int = 1) -> ChunkPlan:
    """ALLGATHER geometry: output buffer = N × per-GPU input.

    Each GPU contributes ``output/num_gpus`` bytes split into
    ``chunks_per_gpu`` chunks.
    """
    _check(num_gpus, output_buffer_bytes, chunks_per_gpu)
    transfer = output_buffer_bytes / num_gpus
    return ChunkPlan(chunk_bytes=transfer / chunks_per_gpu,
                     chunks_per_source=chunks_per_gpu,
                     output_buffer_bytes=output_buffer_bytes,
                     transfer_bytes=transfer)


def alltoall_plan(num_gpus: int, output_buffer_bytes: float,
                  chunks_per_pair: int = 1) -> ChunkPlan:
    """ALLTOALL geometry: output buffer = N × per-pair block.

    Each GPU receives one block from every GPU (including keeping its own
    diagonal block locally), so the per-pair block is ``output/num_gpus`` and
    each source emits ``(num_gpus - 1) * chunks_per_pair`` distinct chunks.
    """
    _check(num_gpus, output_buffer_bytes, chunks_per_pair)
    per_pair = output_buffer_bytes / num_gpus
    return ChunkPlan(chunk_bytes=per_pair / chunks_per_pair,
                     chunks_per_source=(num_gpus - 1) * chunks_per_pair,
                     output_buffer_bytes=output_buffer_bytes,
                     transfer_bytes=per_pair * (num_gpus - 1))


def from_transfer_size(num_gpus: int, transfer_bytes: float,
                       collective: str, chunks: int = 1) -> ChunkPlan:
    """Build a plan from the *transfer size* axis used by Figures 2 and 7."""
    if collective == "allgather":
        return allgather_plan(num_gpus, transfer_bytes * num_gpus, chunks)
    if collective == "alltoall":
        return alltoall_plan(
            num_gpus,
            transfer_bytes * num_gpus / max(num_gpus - 1, 1), chunks)
    raise DemandError(f"unknown collective {collective!r}")


def algorithmic_bandwidth(output_buffer_bytes: float,
                          finish_time_s: float) -> float:
    """TACCL's algorithmic bandwidth: output buffer / collective time."""
    if finish_time_s <= 0:
        raise DemandError("finish time must be positive")
    return output_buffer_bytes / finish_time_s


def _check(num_gpus: int, output_buffer_bytes: float, chunks: int) -> None:
    if num_gpus < 2:
        raise DemandError("need at least 2 GPUs")
    if output_buffer_bytes <= 0:
        raise DemandError("output buffer size must be positive")
    if chunks < 1:
        raise DemandError("chunk count must be at least 1")
