"""SLO alerts: declarative rules evaluated over metrics snapshots.

The serving tier's health questions are ratios and trends, not raw
counters — is the cache hit rate above its floor, is serve-latency p99
under its ceiling, are symmetry fallbacks creeping up?  This module
answers them in-process, with no external monitoring stack:

* :func:`flatten_snapshot` lowers a ``MetricsRegistry.snapshot()`` to
  one flat ``{name: float}`` dict (histograms become ``_count`` /
  ``_sum`` / ``_p50`` / ``_p95`` / ``_p99`` series);
* :class:`SnapshotRing` keeps a short time-series of flattened
  snapshots so rules can fire on *rates* (delta over a window), not
  just levels;
* :class:`AlertEngine` evaluates :class:`AlertRule` instances against
  the latest snapshot and reports firing alerts, remembering which are
  *newly* firing so the fleet controller can trigger exactly one
  flight-recorder dump per incident instead of one per poll.

Rules are plain data (JSON-loadable for ``teccl obs alerts --rules``);
:func:`builtin_rules` ships the six SLOs named in the roadmap: cache
hit-rate floor, serve-latency p99 ceiling, conformance failures,
symmetry-fallback rate, WAL append latency, and fleet rollbacks.
A rule whose metric is absent from the snapshot is skipped, never
fired — half-wired deployments must not page.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import time

from repro.errors import ObservabilityError

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def flatten_snapshot(snapshot: dict) -> dict:
    """Lower a registry snapshot to flat ``{series_name: float}``.

    Counters/gauges map to their value under the metric name; histogram
    summaries expand to ``name_count``, ``name_sum``, ``name_p50``,
    ``name_p95``, ``name_p99``.
    """
    flat: dict[str, float] = {}
    for name, entry in snapshot.items():
        if not isinstance(entry, dict):
            continue
        if "value" in entry:
            value = entry["value"]
            if isinstance(value, (int, float)):
                flat[name] = float(value)
        elif "count" in entry:
            for key in ("count", "sum", "p50", "p95", "p99"):
                value = entry.get(key)
                if isinstance(value, (int, float)) and \
                        not math.isnan(float(value)):
                    flat[f"{name}_{key}"] = float(value)
    return flat


@dataclasses.dataclass(frozen=True)
class AlertRule:
    """One declarative SLO: ``value(metric) OP threshold`` fires.

    ``kind`` selects how the left-hand value is derived:

    * ``"value"`` — the metric's current level;
    * ``"ratio"`` — ``metric / (metric + denominator)`` when
      ``denominator`` names the complement series (hit-rate style), or
      ``metric / denominator`` when ``ratio_of_total`` is set;
    * ``"rate"`` — delta of the metric over the ring's window,
      per second (requires a :class:`SnapshotRing` with >= 2 samples).

    ``min_count`` gates noisy early-life ratios: the rule stays silent
    until the denominator series has seen that many observations.
    """

    name: str
    metric: str
    op: str
    threshold: float
    kind: str = "value"
    denominator: str | None = None
    ratio_of_total: bool = False
    min_count: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self):
        if self.op not in _OPS:
            raise ObservabilityError(
                f"alert rule {self.name!r}: unknown op {self.op!r} "
                f"(use one of {sorted(_OPS)})")
        if self.kind not in ("value", "ratio", "rate"):
            raise ObservabilityError(
                f"alert rule {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "ratio" and not self.denominator:
            raise ObservabilityError(
                f"alert rule {self.name!r}: ratio rules need a denominator")

    @classmethod
    def from_dict(cls, doc: dict) -> "AlertRule":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - fields
        if unknown:
            raise ObservabilityError(
                f"alert rule {doc.get('name', '?')!r}: unknown keys "
                f"{sorted(unknown)}")
        missing = {"name", "metric", "op", "threshold"} - set(doc)
        if missing:
            raise ObservabilityError(
                f"alert rule {doc.get('name', '?')!r}: missing keys "
                f"{sorted(missing)}")
        return cls(**doc)

    def evaluate(self, flat: dict,
                 ring: "SnapshotRing | None" = None) -> "Alert | None":
        """Fire against one flattened snapshot; None = quiet or skipped."""
        value = self._value(flat, ring)
        if value is None:
            return None
        if not _OPS[self.op](value, self.threshold):
            return None
        return Alert(rule=self, value=value)

    def _value(self, flat: dict, ring: "SnapshotRing | None"):
        num = flat.get(self.metric)
        if num is None:
            return None
        if self.kind == "value":
            return num
        if self.kind == "ratio":
            den = flat.get(self.denominator)
            if den is None:
                return None
            total = den if self.ratio_of_total else num + den
            if total < max(self.min_count, 1e-12):
                return None
            return num / total
        # rate: delta over the ring window, per second
        if ring is None:
            return None
        delta = ring.rate(self.metric)
        return delta


@dataclasses.dataclass(frozen=True)
class Alert:
    """A firing rule plus the observed value that tripped it."""

    rule: AlertRule
    value: float

    def to_dict(self) -> dict:
        return {
            "name": self.rule.name,
            "severity": self.rule.severity,
            "metric": self.rule.metric,
            "value": round(self.value, 9),
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "description": self.rule.description,
        }

    def render(self) -> str:
        return (f"[{self.rule.severity}] {self.rule.name}: "
                f"{self.rule.metric}={self.value:.6g} "
                f"{self.rule.op} {self.rule.threshold:g}"
                + (f" — {self.rule.description}"
                   if self.rule.description else ""))


class SnapshotRing:
    """A short time-series of flattened snapshots, for rate rules.

    Bounded like the flight recorder: ``maxlen`` evicts the oldest
    sample, so a daemon sampling every poll keeps a sliding window
    rather than an unbounded history.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 2:
            raise ObservabilityError(
                f"snapshot ring capacity must be >= 2, got {capacity}")
        self._ring: collections.deque[tuple[float, dict]] = \
            collections.deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def sample(self, flat: dict, now: float | None = None) -> None:
        self._ring.append((time.time() if now is None else now, dict(flat)))

    def rate(self, metric: str) -> float | None:
        """Per-second delta of ``metric`` across the window, or None."""
        if len(self._ring) < 2:
            return None
        t0, first = self._ring[0]
        t1, last = self._ring[-1]
        if metric not in first or metric not in last:
            return None
        elapsed = t1 - t0
        if elapsed <= 0:
            return None
        return (last[metric] - first[metric]) / elapsed

    def delta(self, metric: str) -> float | None:
        """Raw change of ``metric`` across the window, or None."""
        if len(self._ring) < 2:
            return None
        first, last = self._ring[0][1], self._ring[-1][1]
        if metric not in first or metric not in last:
            return None
        return last[metric] - first[metric]


def builtin_rules() -> list[AlertRule]:
    """The shipped serving-tier SLOs (thresholds are starting points)."""
    return [
        AlertRule(
            name="cache_hit_rate_floor",
            metric="cache_hits_total", denominator="cache_misses_total",
            kind="ratio", op="<", threshold=0.5, min_count=20,
            description="exact-fingerprint cache hit rate below 50% "
                        "over >=20 lookups"),
        AlertRule(
            name="serve_latency_p99_ceiling",
            metric="planner_serve_latency_seconds_p99",
            op=">", threshold=30.0, severity="critical",
            description="planner serve latency p99 above 30s"),
        AlertRule(
            name="conformance_failures",
            metric="planner_conformance_failures_total",
            op=">", threshold=0, severity="critical",
            description="a served schedule failed conformance replay"),
        AlertRule(
            name="symmetry_fallback_rate",
            metric="symmetry_fallbacks_total",
            denominator="symmetry_reductions_total",
            kind="ratio", ratio_of_total=True,
            op=">", threshold=0.25, min_count=4,
            description="more than 25% of symmetry-reduced solves fell "
                        "back to the full model"),
        AlertRule(
            name="wal_append_latency_p99",
            metric="fleet_wal_append_seconds_p99",
            op=">", threshold=0.25,
            description="fleet WAL append p99 above 250ms"),
        AlertRule(
            name="fleet_rollbacks",
            metric="fleet_rollbacks_total",
            op=">", threshold=0, severity="critical",
            description="the fleet controller rolled back an adapted "
                        "schedule"),
    ]


class AlertEngine:
    """Evaluate a rule set against snapshots; track newly-firing alerts."""

    def __init__(self, rules: list[AlertRule] | None = None,
                 ring_capacity: int = 64) -> None:
        self.rules = list(builtin_rules() if rules is None else rules)
        self.ring = SnapshotRing(ring_capacity)
        self._firing: set[str] = set()

    def evaluate(self, snapshot: dict,
                 now: float | None = None) -> list[Alert]:
        """One evaluation pass: samples the ring, returns firing alerts.

        ``engine.newly_fired`` afterwards holds the names that were quiet
        on the previous pass — the edge-trigger the dump path keys on.
        """
        flat = flatten_snapshot(snapshot)
        self.ring.sample(flat, now=now)
        firing = []
        for rule in self.rules:
            alert = rule.evaluate(flat, self.ring)
            if alert is not None:
                firing.append(alert)
        names = {alert.rule.name for alert in firing}
        self.newly_fired = sorted(names - self._firing)
        self._firing = names
        return firing

    newly_fired: list[str] = []
