"""The metrics registry: counters, gauges, and latency histograms.

Before this module the codebase kept three incompatible ad-hoc stats
stores (``PlannerStats``, ``PoolStats``, the fleet controller's
``_stats`` dict).  All three now sit on top of one registry type, which
buys uniform snapshots, Prometheus text exposition, and quantile-capable
latency histograms without changing any of their public dict shapes
(regression-pinned by ``tests/test_obs_stats.py``).

Everything is thread-safe: the fleet daemon thread, pool callbacks, and
caller threads bump the same instruments concurrently.  Instruments are
deliberately label-free — a registry instance *is* the scope (each
planner, pool, and controller owns one), which keeps the hot path to a
single lock + float add.
"""

from __future__ import annotations

import math
import threading

from repro.errors import ObservabilityError

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz"
               "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ObservabilityError(
            f"bad metric name {name!r}: use [a-zA-Z_:][a-zA-Z0-9_:]*")
    return name


def exponential_buckets(start: float, factor: float, count: int
                        ) -> tuple[float, ...]:
    """Prometheus-style exponential bucket bounds: start·factor^i."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ObservabilityError(
            "exponential buckets need start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


#: default latency buckets: 10 µs → ~168 s in ×2 steps (24 bounds)
LATENCY_BUCKETS = exponential_buckets(1e-5, 2.0, 24)


class Counter:
    """A monotonically increasing value.

    ``set_total`` exists for the legacy stats facades that assign
    (``stats.submitted += 1`` round-trips through a property setter);
    new code should only ever :meth:`inc`.
    """

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise ObservabilityError(
                f"counter {self.name}: negative increment {delta}")
        with self._lock:
            self._value += delta

    def set_total(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, live workers...)."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, delta: float = 1.0) -> None:
        with self._lock:
            self._value += delta

    def dec(self, delta: float = 1.0) -> None:
        self.inc(-delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Bucketed distribution with cumulative counts (Prometheus layout).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail.  Quantiles are estimated by linear interpolation inside the
    containing bucket — exact enough for p50/p95/p99 serving-latency
    lines, and cheap enough to render on every ``teccl fleet status``.
    """

    def __init__(self, name: str, description: str = "",
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.description = description
        bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ObservabilityError(
                f"histogram {name}: bucket bounds must strictly increase")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._total = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ObservabilityError(
                f"histogram {self.name}: refusing to observe NaN")
        with self._lock:
            idx = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    idx = i
                    break
            self._counts[idx] += 1
            self._sum += value
            self._total += 1
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 ≤ q ≤ 1); NaN when empty.

        Linear interpolation within the containing bucket: the target
        rank's fractional position among the bucket's observations maps
        onto the bucket's ``(lo, hi]`` interval, with both ends clamped
        to the observed min/max so estimates never leave the data range
        (and the open-ended +Inf bucket uses the observed max).
        """
        if not 0 <= q <= 1:
            raise ObservabilityError(f"quantile {q} not in [0, 1]")
        with self._lock:
            if self._total == 0:
                return math.nan
            target = q * self._total
            seen = 0.0
            for i, count in enumerate(self._counts):
                if count == 0:
                    continue
                if seen + count >= target:
                    # every value in bucket 0 is >= the observed min, so
                    # the min IS that bucket's lower edge
                    lo = max(self.bounds[i - 1], self._min) if i > 0 \
                        else self._min
                    hi = self.bounds[i] if i < len(self.bounds) \
                        else self._max
                    hi = min(hi, self._max)
                    if hi <= lo:
                        return hi
                    frac = (target - seen) / count
                    return lo + frac * (hi - lo)
                seen += count
            return self._max

    def summary(self) -> dict:
        """p50/p95/p99 + count/sum — the serving-latency line."""
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def snapshot_buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, Prometheus-style."""
        with self._lock:
            out = []
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                out.append((bound, running))
            out.append((math.inf, running + self._counts[-1]))
            return out


class MetricsRegistry:
    """A named family of instruments; get-or-create semantics.

    Asking twice for the same name returns the same instrument; asking
    for the same name as a different type raises — silent type morphing
    is how dashboards rot.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, factory):
        _check_name(name)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}")
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, description))

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(
            name, Gauge, lambda: Gauge(name, description))

    def histogram(self, name: str, description: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, description, buckets))

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument (status files, CLI)."""
        out: dict = {}
        for inst in self.instruments():
            if isinstance(inst, Counter):
                out[inst.name] = {"type": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[inst.name] = {"type": "gauge", "value": inst.value}
            else:
                out[inst.name] = {
                    "type": "histogram",
                    **inst.summary(),
                    "buckets": [[b if b != math.inf else "+Inf", c]
                                for b, c in inst.snapshot_buckets()],
                }
        return out

    def prometheus_text(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for inst in self.instruments():
            if inst.description:
                lines.append(f"# HELP {inst.name} {inst.description}")
            if isinstance(inst, Counter):
                lines.append(f"# TYPE {inst.name} counter")
                lines.append(f"{inst.name} {_fmt(inst.value)}")
            elif isinstance(inst, Gauge):
                lines.append(f"# TYPE {inst.name} gauge")
                lines.append(f"{inst.name} {_fmt(inst.value)}")
            else:
                lines.append(f"# TYPE {inst.name} histogram")
                for bound, count in inst.snapshot_buckets():
                    le = "+Inf" if bound == math.inf else _fmt(bound)
                    lines.append(
                        f'{inst.name}_bucket{{le="{le}"}} {count}')
                lines.append(f"{inst.name}_sum {_fmt(inst.sum)}")
                lines.append(f"{inst.name}_count {inst.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_from_snapshot(snapshot: dict) -> str:
    """Prometheus text exposition from a :meth:`MetricsRegistry.snapshot`.

    The snapshot is the JSON-ready form the CLI persists (``serve-batch
    --metrics-file``, fleet status files); this renders it scrape-ready
    without needing the live registry — histogram buckets are already
    cumulative, exactly the Prometheus layout.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        try:
            kind = entry["type"]
            if kind in ("counter", "gauge"):
                lines.append(f"# TYPE {name} {kind}")
                lines.append(f"{name} {_fmt(float(entry['value']))}")
            elif kind == "histogram":
                lines.append(f"# TYPE {name} histogram")
                for bound, count in entry["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _fmt(float(bound))
                    lines.append(f'{name}_bucket{{le="{le}"}} {int(count)}')
                lines.append(f"{name}_sum {_fmt(float(entry['sum']))}")
                lines.append(f"{name}_count {int(entry['count'])}")
            else:
                raise ObservabilityError(
                    f"metric {name!r}: unknown instrument type {kind!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed metrics snapshot entry {name!r}: {exc}") from exc
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# the process-default registry (ad-hoc instrumentation, CLI dumps)
# ----------------------------------------------------------------------
_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry.

    Component-owned registries (planner, pool, controller) are separate
    scopes; this one exists for code without a natural owner.
    """
    return _default
