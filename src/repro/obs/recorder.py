"""The flight recorder: an always-on ring buffer of recent events.

Tracing (:mod:`repro.obs.trace`) answers "where does the time go" when
someone *planned* to ask; this module answers the production question —
"what just happened" — after the fact, with nobody having enabled
anything. A bounded, lock-cheap ring holds the most recent span, event,
and decision records from the coarse instrumentation sites (planner
serve phases, pool solves, fleet decisions, solver milestones). On an
incident the ring is dumped to a JSONL snapshot:

* automatically, on planner failures, fleet rollbacks and
  recovery-drops, and newly-firing SLO alerts (see
  :mod:`repro.obs.alerts`) — when a dump directory is configured
  (``TECCL_FLIGHT_DIR`` or :func:`set_dump_dir`); without one the
  automatic paths stay silent, so library use never scatters files;
* on ``SIGUSR2`` (:func:`install_signal_dump` — the long-running CLI
  verbs install it);
* on demand, via :meth:`FlightRecorder.dump` / ``teccl obs dump``.

Design constraints mirror the tracer's: the recorder rides the same
coarse call sites as ``trace.rspan`` (never the per-family model-build
hot loops), appends are a ``deque`` push under the GIL plus one short
lock for the drop counter, and the whole layer can be disabled for the
overhead bench's A/B runs. ``benchmarks/bench_obs_overhead.py`` holds
the recorder-on, tracing-off default under the same 2% budget as the
disabled tracer.
"""

from __future__ import annotations

import collections
import contextlib
import contextvars
import json
import os
import threading
import time
from pathlib import Path

from repro.errors import ObservabilityError

#: bump when the flight-record layout changes (dump readers check it)
FLIGHT_SCHEMA_VERSION = 1

#: environment variable naming the automatic-dump directory
FLIGHT_DIR_ENV = "TECCL_FLIGHT_DIR"

#: default ring capacity (records, not bytes)
DEFAULT_CAPACITY = 2048

#: automatic dumps per process (incident snapshots, not a log stream)
MAX_AUTO_DUMPS = 16

#: minimum seconds between automatic dumps for one reason
AUTO_DUMP_INTERVAL_S = 1.0

# request-correlation label stamped onto every record (the planner sets
# it to the request fingerprint around serving; workers to theirs)
_ctx: contextvars.ContextVar[str | None] = \
    contextvars.ContextVar("teccl_flight_ctx", default=None)

# the active per-phase duration accumulator (explain records)
_phases: contextvars.ContextVar[dict | None] = \
    contextvars.ContextVar("teccl_flight_phases", default=None)


class FlightRecorder:
    """A bounded ring of recent observability records.

    Appends are cheap by construction: one ``deque.append`` (atomic under
    the GIL, ``maxlen`` evicts the oldest) plus a short lock for the
    total counter. Drops are derivable — ``total - len(ring)`` — so the
    hot path never branches on fullness.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: collections.deque[dict] = \
            collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._total = 0
        self._dumps = 0
        self._auto_dumps = 0
        self._last_auto: dict[str, float] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, kind: str, name: str, attrs: dict | None = None,
               dur: float | None = None, t: float | None = None) -> None:
        """Append one record to the ring (never raises, never blocks long)."""
        rec = {
            "kind": kind,
            "name": name,
            "t": time.time() if t is None else t,
            "ctx": _ctx.get(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": attrs if attrs is not None else {},
        }
        if dur is not None:
            rec["dur"] = dur
        self._ring.append(rec)
        with self._lock:
            self._total += 1

    def note_span(self, name: str, t0_wall: float, dur: float,
                  attrs: dict) -> None:
        """A closed recorded span: ring entry + phase-accumulator credit."""
        self.record("span", name, attrs=attrs, dur=dur, t=t0_wall)
        acc = _phases.get()
        if acc is not None:
            acc[name] = acc.get(name, 0.0) + dur

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Records ever appended (survivors + dropped)."""
        with self._lock:
            return self._total

    @property
    def drops(self) -> int:
        """Records evicted by the ring bound."""
        with self._lock:
            return max(0, self._total - len(self._ring))

    def snapshot(self) -> list[dict]:
        """The ring's current contents, oldest first (a copy)."""
        return [dict(rec) for rec in list(self._ring)]

    def clear(self) -> None:
        self._ring.clear()
        with self._lock:
            self._total = 0

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------
    def dump(self, path: str | Path | None = None, *,
             reason: str = "manual") -> Path:
        """Write the ring to a JSONL snapshot file; returns the path.

        The first line is a header record (schema version, reason,
        counters); each following line is one ring record, oldest first.
        Without an explicit ``path`` the configured dump directory names
        the file (``flight-<reason>-<pid>-<seq>.jsonl``).
        """
        events = self.snapshot()
        with self._lock:
            self._dumps += 1
            seq = self._dumps
        if path is None:
            directory = dump_dir()
            if directory is None:
                raise ObservabilityError(
                    "no dump path: pass one, set_dump_dir(...), or export "
                    f"{FLIGHT_DIR_ENV}")
            path = Path(directory) / \
                f"flight-{reason}-{os.getpid()}-{seq}.jsonl"
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "flight_header",
            "v": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "t": time.time(),
            "pid": os.getpid(),
            "events": len(events),
            "drops": self.drops,
            "total": self.total,
        }
        try:
            with open(path, "w", encoding="utf-8") as handle:
                for rec in [header, *events]:
                    handle.write(json.dumps(rec, separators=(",", ":"),
                                            sort_keys=True, default=str))
                    handle.write("\n")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot write flight dump {path}: {exc}") from exc
        return path

    def auto_dump(self, reason: str) -> Path | None:
        """Incident-triggered dump: quiet no-op without a dump directory.

        Rate-limited (per reason, and a per-process cap) so a failure
        storm in a test suite or a flapping alert cannot scatter
        hundreds of snapshots. Never raises — the incident path must not
        add a second failure.
        """
        if dump_dir() is None:
            return None
        now = time.monotonic()
        with self._lock:
            if self._auto_dumps >= MAX_AUTO_DUMPS:
                return None
            last = self._last_auto.get(reason)
            if last is not None and now - last < AUTO_DUMP_INTERVAL_S:
                return None
            self._last_auto[reason] = now
            self._auto_dumps += 1
        try:
            return self.dump(reason=reason)
        except ObservabilityError:
            return None


# ----------------------------------------------------------------------
# the module-global recorder (always on by default)
# ----------------------------------------------------------------------
_recorder: FlightRecorder | None = FlightRecorder()
_configure_lock = threading.Lock()
_dump_dir: Path | None = None


def active() -> FlightRecorder | None:
    """The process recorder, or ``None`` when disabled (bench A/B runs)."""
    return _recorder


def get_recorder() -> FlightRecorder:
    """The process recorder; re-enables a disabled one."""
    global _recorder
    with _configure_lock:
        if _recorder is None:
            _recorder = FlightRecorder()
        return _recorder


def configure_recorder(capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """Replace the process recorder (fresh ring, new capacity)."""
    global _recorder
    with _configure_lock:
        _recorder = FlightRecorder(capacity)
        return _recorder


def disable_recorder() -> None:
    """Turn the recorder off entirely (the overhead bench's baseline)."""
    global _recorder
    with _configure_lock:
        _recorder = None


def record(kind: str, name: str, attrs: dict | None = None,
           dur: float | None = None) -> None:
    """Append a record to the process recorder (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec.record(kind, name, attrs=attrs, dur=dur)


def auto_dump(reason: str) -> Path | None:
    """Incident dump on the process recorder (no-op when disabled)."""
    rec = _recorder
    if rec is None:
        return None
    return rec.auto_dump(reason)


def note_span(name: str, t0_wall: float, dur: float, attrs: dict) -> None:
    """A closed recorded span (trace.Span with recording on): ring entry
    when the recorder is active, plus phase-accumulator credit either
    way — explain phases survive a disabled recorder."""
    rec = _recorder
    if rec is not None:
        rec.record("span", name, attrs=attrs, dur=dur, t=t0_wall)
    acc = _phases.get()
    if acc is not None:
        acc[name] = acc.get(name, 0.0) + dur


# ----------------------------------------------------------------------
# correlation & phase collection
# ----------------------------------------------------------------------
@contextlib.contextmanager
def context(label: str | None):
    """Stamp ``label`` (e.g. a request fingerprint) onto records inside."""
    token = _ctx.set(label)
    try:
        yield
    finally:
        _ctx.reset(token)


def current_label() -> str | None:
    return _ctx.get()


@contextlib.contextmanager
def collect_phases():
    """Accumulate recorded-span durations by name into the yielded dict.

    The explain path wraps a serving (or synthesis) step in this: every
    ``rspan`` that closes inside contributes its duration, so per-phase
    costs are lifted from the live span stack instead of re-read from a
    trace file. Nesting replaces the accumulator (inner phases belong to
    the inner collector), exactly what a planner-calls-synthesize stack
    wants.
    """
    acc: dict[str, float] = {}
    token = _phases.set(acc)
    try:
        yield acc
    finally:
        _phases.reset(token)


# ----------------------------------------------------------------------
# recorded spans (tracing disabled, recorder on)
# ----------------------------------------------------------------------
class RecorderSpan:
    """The lightweight span handed out by ``trace.rspan`` when no tracer
    is configured: two clock reads and one ring append, no ids."""

    __slots__ = ("name", "attrs", "_recorder", "_t0_wall", "_t0")

    def __init__(self, recorder: FlightRecorder, name: str,
                 attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._recorder = recorder
        self._t0_wall = 0.0
        self._t0 = 0.0

    def set_attr(self, **attrs) -> "RecorderSpan":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "RecorderSpan":
        self._t0_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._recorder.note_span(self.name, self._t0_wall,
                                 time.perf_counter() - self._t0, self.attrs)
        return False


# ----------------------------------------------------------------------
# dump destinations & helpers
# ----------------------------------------------------------------------
def set_dump_dir(path: str | Path | None) -> None:
    """Set (or clear) the automatic-dump directory for this process.

    Overrides the ``TECCL_FLIGHT_DIR`` environment variable; ``None``
    falls back to it.
    """
    global _dump_dir
    _dump_dir = None if path is None else Path(path)


def dump_dir() -> Path | None:
    """The resolved dump directory (explicit setting, then environment)."""
    if _dump_dir is not None:
        return _dump_dir
    env = os.environ.get(FLIGHT_DIR_ENV)
    return Path(env) if env else None


def install_signal_dump() -> bool:
    """Dump the ring on ``SIGUSR2``; returns False off the main thread.

    The previous handler is chained (called after the dump) so stacking
    with an application's own SIGUSR2 use stays safe.
    """
    import signal

    if threading.current_thread() is not threading.main_thread():
        return False
    previous = signal.getsignal(signal.SIGUSR2)

    def _handler(signum, frame):
        auto_dump("sigusr2")
        if callable(previous) and previous not in (signal.SIG_IGN,
                                                   signal.SIG_DFL):
            previous(signum, frame)

    signal.signal(signal.SIGUSR2, _handler)
    return True


LAST_EXPLAIN_FILE = "last_explain.json"


def save_last_explain(doc: dict) -> Path | None:
    """Persist the most recent explain record for ``teccl explain --last``.

    Quiet no-op without a configured dump directory (library use must not
    scatter files); best-effort otherwise — serving never fails because a
    status file could not be written.
    """
    directory = dump_dir()
    if directory is None:
        return None
    path = Path(directory) / LAST_EXPLAIN_FILE
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, default=str)
    except OSError:
        return None
    return path


def load_last_explain(directory: str | Path | None = None) -> dict:
    """Read the persisted last-explain document (``teccl explain --last``)."""
    base = Path(directory) if directory is not None else dump_dir()
    if base is None:
        raise ObservabilityError(
            f"no flight directory: pass --flight-dir or export "
            f"{FLIGHT_DIR_ENV}")
    path = base / LAST_EXPLAIN_FILE
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read {path} (no request served with a flight "
            f"directory configured?): {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"corrupt last-explain file {path}: {exc}") from exc


def read_dump(path: str | Path) -> list[dict]:
    """Parse a flight-dump JSONL file (header record first)."""
    events = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ObservabilityError(
                        f"corrupt flight dump {path}:{lineno}: {exc}"
                    ) from exc
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read flight dump {path}: {exc}") from exc
    return events


def format_flight(events: list[dict], limit: int | None = None) -> str:
    """Human-readable rendering of a flight dump (or a live snapshot)."""
    lines = []
    header = next((e for e in events if e.get("kind") == "flight_header"),
                  None)
    records = [e for e in events if e.get("kind") != "flight_header"]
    if header is not None:
        lines.append(
            f"flight dump: reason={header.get('reason')} "
            f"pid={header.get('pid')} events={header.get('events')} "
            f"drops={header.get('drops')} total={header.get('total')}")
    t0 = records[0].get("t", 0.0) if records else 0.0
    shown = records if limit is None else records[-limit:]
    lines.append(f"{'+t(s)':>9} {'kind':<9} {'name':<28} "
                 f"{'dur(ms)':>9} ctx/attrs")
    for rec in shown:
        dur = rec.get("dur")
        dur_text = f"{dur * 1e3:9.2f}" if dur is not None else " " * 9
        ctx = rec.get("ctx")
        detail = f"[{ctx[:12]}] " if ctx else ""
        attrs = rec.get("attrs") or {}
        if attrs:
            detail += " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(f"{rec.get('t', 0.0) - t0:9.3f} "
                     f"{rec.get('kind', '?'):<9} "
                     f"{str(rec.get('name', '?')):<28} {dur_text} "
                     f"{detail}".rstrip())
    if limit is not None and len(records) > limit:
        lines.append(f"... ({len(records) - limit} earlier records "
                     "not shown)")
    return "\n".join(lines)
