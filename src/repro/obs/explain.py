"""Plan provenance: where did this schedule come from, and at what cost.

Every planner response (and, underneath it, every synthesis result)
carries an :class:`ExplainRecord` — a structured answer to the
post-hoc questions a serving operator actually asks: was this a cache
hit, a coalesced ride-along, a near-donor warm start, a
symmetry-collapsed alias, or a cold solve?  How many horizon attempts
did the solver burn, how far did the symmetry quotient shrink the
model, did conformance pass, and which phase ate the latency?

The record is assembled from data the pipeline already produces — the
planner's serve path, ``SynthesisResult`` stats, and per-phase
durations lifted from the live recorded-span stack
(:func:`repro.obs.recorder.collect_phases`) — so explaining a plan
costs nothing beyond a dict. It serializes into ``PlanResponse``
payloads and flight-recorder dumps, and renders via
``teccl explain``.
"""

from __future__ import annotations

import dataclasses

# keys of SynthesisResult / SolveResult stats worth carrying into an
# explain record (JSON-safe scalars only; model matrices stay behind)
_SOLVE_STAT_KEYS = (
    "build_time", "construction", "horizon_attempts", "horizon_solves",
    "symmetry_generators", "orbits", "cols_full", "cols_reduced",
    "rows_full", "rows_reduced", "symmetry_conformant",
    "symmetry_fallback", "pop_partitions", "pop_attempts",
)


def solve_stats_subset(stats: dict | None) -> dict:
    """The JSON-safe, explain-worthy subset of a solver stats dict."""
    if not stats:
        return {}
    subset = {}
    for key in _SOLVE_STAT_KEYS:
        value = stats.get(key)
        if isinstance(value, (bool, int, float, str)):
            subset[key] = value
    return subset


@dataclasses.dataclass
class ExplainRecord:
    """Provenance for one served plan.

    ``source`` is the headline: ``"cache"`` (exact fingerprint hit),
    ``"coalesced"`` (rode an identical in-flight solve), ``"solve"``
    (fresh synthesis — possibly warm-started from ``warm_donor``), or
    ``"error"``. The rest is the supporting evidence.
    """

    source: str = "solve"
    fingerprint: str | None = None
    tag: str | None = None
    cache_hit: bool = False
    coalesced: bool = False
    warm_donor: str | None = None
    replan_seed: bool = False
    symmetry_collapsed: bool = False
    conformance: str = "unchecked"   # "ok" | "failed" | "unchecked"
    serve_time: float = 0.0
    error: str | None = None
    phases: dict = dataclasses.field(default_factory=dict)
    solve: dict | None = None

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["phases"] = dict(self.phases)
        if self.solve is not None:
            doc["solve"] = dict(self.solve)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ExplainRecord":
        """Lenient parse: unknown keys ignored, missing keys defaulted."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in fields})

    def render(self) -> str:
        """The ``teccl explain`` report."""
        lines = [f"source        : {self.source}"]
        if self.fingerprint:
            lines.append(f"fingerprint   : {self.fingerprint}")
        if self.tag:
            lines.append(f"tag           : {self.tag}")
        flags = []
        if self.cache_hit:
            flags.append("cache-hit")
        if self.coalesced:
            flags.append("coalesced")
        if self.symmetry_collapsed:
            flags.append("symmetry-collapsed")
        if self.replan_seed:
            flags.append("replan-seeded")
        if flags:
            lines.append(f"flags         : {', '.join(flags)}")
        if self.warm_donor:
            lines.append(f"warm donor    : {self.warm_donor}")
        lines.append(f"conformance   : {self.conformance}")
        lines.append(f"serve time    : {self.serve_time * 1e3:.2f} ms")
        if self.error:
            lines.append(f"error         : {self.error}")
        solve = self.solve or {}
        if solve:
            lines.append("solve:")
            for key in ("method", "finish_time", "solve_time",
                        "horizon_epochs", "warm_seeded"):
                if key in solve:
                    lines.append(f"  {key:<20}: {solve[key]}")
            stats = solve.get("stats") or {}
            if stats:
                for key in sorted(stats):
                    lines.append(f"  {key:<20}: {stats[key]}")
            solve_phases = solve.get("phases") or {}
            if solve_phases:
                lines.append("  solve phases:")
                for name, dur in sorted(solve_phases.items(),
                                        key=lambda kv: -kv[1]):
                    lines.append(f"    {name:<24}: {dur * 1e3:9.2f} ms")
        if self.phases:
            lines.append("serve phases:")
            for name, dur in sorted(self.phases.items(),
                                    key=lambda kv: -kv[1]):
                lines.append(f"  {name:<26}: {dur * 1e3:9.2f} ms")
        return "\n".join(lines)
