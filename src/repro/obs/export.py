"""Trace exporters: JSONL → Chrome trace events, summaries, coverage.

The JSONL sink (:class:`repro.obs.trace.JsonlSink`) is the durable
format; this module turns it into things humans and tools consume:

* :func:`chrome_trace` — the Chrome trace-event JSON that
  ``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) load
  directly, so a traced synthesize run renders as a flame chart with
  worker-process solve spans stitched under the submitting request;
* :func:`summarize` — per-phase totals plus *coverage*: how much of the
  root span's wall time is accounted for by leaf phases.  The
  acceptance bar for the instrumentation is coverage ≥ 0.95 on a traced
  Table-4 run — anything less means a hot phase is untraced;
* :func:`read_events` — the parser everything above shares.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.errors import ObservabilityError


def read_events(source) -> list[dict]:
    """Parse span/event records from a JSONL path or an iterable of dicts.

    Lines that fail to parse raise — a corrupt record means the sink's
    atomicity contract was violated, which the concurrency tests exist
    to catch; silently skipping would hide exactly that bug.
    """
    if isinstance(source, (str, Path)):
        records = []
        path = Path(source)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read trace file {path}: {exc}") from exc
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: corrupt trace record: {exc}") from exc
            if not isinstance(record, dict):
                raise ObservabilityError(
                    f"{path}:{lineno}: trace record is not an object")
            records.append(record)
        return records
    return [dict(r) for r in source]


def spans_only(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("kind") == "span"]


def chrome_trace(events: list[dict]) -> dict:
    """Convert to the Chrome trace-event format (Perfetto-loadable).

    Spans become complete ("ph": "X") events with microsecond wall-clock
    timestamps; zero-duration log events become instants ("ph": "i").
    pid/tid come straight from the records, so multi-process traces lay
    out one track per worker.
    """
    trace_events = []
    for record in events:
        base = {
            "name": record.get("name", "?"),
            "pid": record.get("pid", 0),
            "tid": record.get("tid", 0),
            "ts": float(record.get("t0", 0.0)) * 1e6,
            "args": record.get("attrs", {}),
        }
        if record.get("kind") == "span":
            trace_events.append({**base, "ph": "X", "cat": "teccl",
                                 "dur": float(record.get("dur", 0.0)) * 1e6})
        elif record.get("kind") == "event":
            trace_events.append({**base, "ph": "i", "cat": "teccl",
                                 "s": "t"})
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: list[dict], path: str | Path) -> Path:
    path = Path(path)
    try:
        path.write_text(json.dumps(chrome_trace(events)) + "\n",
                        encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(
            f"cannot write chrome trace {path}: {exc}") from exc
    return path


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
def _children_index(spans: list[dict]) -> dict[str | None, list[dict]]:
    by_parent: dict[str | None, list[dict]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent"), []).append(span)
    return by_parent


def summarize(events: list[dict]) -> dict:
    """Aggregate a trace: per-phase totals, roots, and leaf coverage.

    Returns::

        {
          "phases": {name: {"count", "total", "self", "min", "max"}},
          "roots":  [{"name", "dur", "trace", "coverage"}],
          "coverage": <leaf-time of the longest root / its duration>,
        }

    ``self`` time is a span's duration minus its direct children — the
    attributable flame.  *Coverage* sums the leaf spans under a root
    against the root's wall time; untraced gaps (work between spans)
    lower it, which is exactly what makes it the instrumentation-
    completeness metric.
    """
    spans = spans_only(events)
    phases: dict[str, dict] = {}
    ids = {s.get("span") for s in spans}
    by_parent = _children_index(spans)
    for span in spans:
        dur = float(span.get("dur", 0.0))
        children = by_parent.get(span.get("span"), [])
        child_time = sum(float(c.get("dur", 0.0)) for c in children)
        entry = phases.setdefault(span.get("name", "?"), {
            "count": 0, "total": 0.0, "self": 0.0,
            "min": math.inf, "max": 0.0})
        entry["count"] += 1
        entry["total"] += dur
        entry["self"] += max(0.0, dur - child_time)
        entry["min"] = min(entry["min"], dur)
        entry["max"] = max(entry["max"], dur)
    for entry in phases.values():
        if entry["min"] is math.inf:
            entry["min"] = 0.0

    roots = [s for s in spans if s.get("parent") not in ids]
    root_rows = []
    for root in sorted(roots, key=lambda s: -float(s.get("dur", 0.0))):
        cov = _leaf_coverage(root, by_parent)
        root_rows.append({
            "name": root.get("name", "?"),
            "dur": float(root.get("dur", 0.0)),
            "trace": root.get("trace"),
            "coverage": cov,
        })
    return {
        "phases": dict(sorted(phases.items(),
                              key=lambda kv: -kv[1]["total"])),
        "roots": root_rows,
        "coverage": root_rows[0]["coverage"] if root_rows else 0.0,
        "num_spans": len(spans),
    }


def _leaf_coverage(root: dict, by_parent: dict) -> float:
    """Leaf-span time under ``root`` divided by the root's duration."""
    root_dur = float(root.get("dur", 0.0))
    if root_dur <= 0:
        return 0.0
    leaf_time = 0.0
    stack = [root]
    while stack:
        span = stack.pop()
        children = by_parent.get(span.get("span"), [])
        if not children:
            leaf_time += float(span.get("dur", 0.0))
        else:
            # a span's own untracked remainder is a gap, not a leaf
            stack.extend(children)
    return min(1.0, leaf_time / root_dur)


def format_summary(summary: dict, *, top: int = 20) -> str:
    """Human-readable rendering of :func:`summarize` (the CLI verb)."""
    lines = [f"{'phase':<40} {'count':>6} {'total s':>10} {'self s':>10} "
             f"{'max s':>10}"]
    for name, entry in list(summary["phases"].items())[:top]:
        lines.append(f"{name:<40} {entry['count']:>6} "
                     f"{entry['total']:>10.4f} {entry['self']:>10.4f} "
                     f"{entry['max']:>10.4f}")
    for root in summary["roots"][:5]:
        lines.append(f"root {root['name']:<24} {root['dur']:.4f} s "
                     f"(leaf coverage {100 * root['coverage']:.1f}%)")
    lines.append(f"spans        : {summary['num_spans']}")
    return "\n".join(lines)
