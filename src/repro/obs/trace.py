"""Structured tracing: nested spans, thread-safe, process-aware.

The tracer answers the question the ROADMAP cannot: *where* do the
12.3 seconds of solve time on Internal1 AtoA go?  Every hot path in the
solver, planner, and fleet layers opens a :func:`span` around its phase;
when tracing is enabled the spans land in a sink (usually a JSONL file)
as one record each, and the exporters in :mod:`repro.obs.export` turn
that stream into a Chrome/Perfetto trace or a per-phase summary.

Design constraints, in order:

* **zero overhead when disabled** — the default state.  ``span(...)``
  checks one module global and returns a shared no-op context manager;
  nothing is allocated, no clock is read.  The observability overhead
  bench (``benchmarks/bench_obs_overhead.py``) guards this.
* **thread-safe** — the fleet daemon thread, coalesced planner callers,
  and solve-pool worker threads all emit concurrently.  The current-span
  stack lives in a :class:`contextvars.ContextVar` (per-thread by
  construction) and sinks serialise each record to one atomic write.
* **process-aware** — a solve submitted to a ``ProcessPoolExecutor``
  runs in a worker with no tracer configured.  :meth:`Tracer.carrier`
  captures ``(trace id, span id, sink path)``; the planner rides it
  along in the request dict and the worker calls :func:`activate` to
  stitch its spans back under the submitting request's trace.  Worker
  processes append to the same JSONL file through ``O_APPEND`` writes
  (one ``os.write`` per record), so streams from any number of
  processes interleave without corrupting records.

Timing is monotonic (``time.perf_counter``) for durations; each record
additionally carries a wall-clock start so cross-process spans order
correctly in a rendered trace.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs import recorder as _flight

#: bump when the span-record layout changes (exporters check it)
TRACE_SCHEMA_VERSION = 1

#: environment variable workers honour when no carrier context arrives
TRACE_ENV_VAR = "TECCL_TRACE"

# (trace_id, span_id) of the innermost open span on this thread
_current: contextvars.ContextVar[tuple[str, str] | None] = \
    contextvars.ContextVar("teccl_obs_current", default=None)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class Sink:
    """Where span records go.  Implementations must be thread-safe."""

    def write(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (optional)."""


class MemorySink(Sink):
    """Collects records in a bounded list — tests and short-lived runs.

    A long-lived daemon that configures tracing with no file sink must
    not grow without limit: past ``capacity`` records the oldest are
    evicted and counted in :attr:`dropped`. The default cap is generous
    for test-sized traces; pass ``capacity=None`` for the historical
    unbounded behaviour.
    """

    DEFAULT_CAPACITY = 100_000

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ObservabilityError(
                f"MemorySink capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.records: list[dict] = []
        self.dropped = 0
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)
            if self.capacity is not None and \
                    len(self.records) > self.capacity:
                excess = len(self.records) - self.capacity
                del self.records[:excess]
                self.dropped += excess


class JsonlSink(Sink):
    """Append-only JSONL file, one record per line.

    Each record is serialised to a single line and written with one
    ``os.write`` on an ``O_APPEND`` descriptor: POSIX guarantees the
    kernel performs the append atomically, so concurrent writers — the
    fleet daemon thread, planner callers, and solve-pool *worker
    processes* holding their own descriptors on the same path — never
    interleave bytes within a record.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fd = os.open(str(self.path),
                               os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                               0o644)
        except OSError as exc:
            raise ObservabilityError(
                f"cannot open trace sink {self.path}: {exc}") from exc
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._fd is None:
                return
            os.write(self._fd, data)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class Span:
    """One timed phase.  Use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "_tracer", "_t0_wall", "_t0", "duration", "_token",
                 "_record")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self.trace_id = ""
        self.span_id = _new_id()
        self.parent_id: str | None = None
        self._t0_wall = 0.0
        self._t0 = 0.0
        self.duration = 0.0
        self._token = None
        # rspan() flips this: the closed span also lands in the flight
        # recorder ring and the active phase accumulator
        self._record = False

    def set_attr(self, **attrs) -> "Span":
        """Attach attributes after the span has opened (e.g. a result)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        parent = _current.get()
        if parent is not None:
            self.trace_id, self.parent_id = parent
        else:
            self.trace_id = self._tracer.trace_id()
            self.parent_id = self._tracer.root_parent()
        self._token = _current.set((self.trace_id, self.span_id))
        self._t0_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        _current.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer.emit({
            "kind": "span",
            "v": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "t0": self._t0_wall,
            "dur": self.duration,
            "attrs": self.attrs,
        })
        if self._record:
            _flight.note_span(self.name, self._t0_wall, self.duration,
                              self.attrs)
        return False


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, **attrs) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Emits spans into a sink; one per process is the intended shape.

    Args:
        sink: where records go.  A ``str``/``Path`` becomes a
            :class:`JsonlSink`; ``None`` keeps records in a fresh
            :class:`MemorySink`.
    """

    def __init__(self, sink: Sink | str | Path | None = None) -> None:
        if sink is None:
            sink = MemorySink()
        elif isinstance(sink, (str, Path)):
            sink = JsonlSink(sink)
        self.sink = sink
        self._trace_id = _new_id()
        # parent inherited from a carrier (worker-process stitching)
        self._root_parent: str | None = None

    def trace_id(self) -> str:
        return self._trace_id

    def root_parent(self) -> str | None:
        return self._root_parent

    def span(self, name: str, **attrs):
        return Span(self, name, attrs)

    def emit(self, record: dict) -> None:
        self.sink.write(record)

    def event(self, name: str, **attrs) -> None:
        """A zero-duration log record (the structured ``print``)."""
        current = _current.get()
        self.emit({
            "kind": "event", "v": TRACE_SCHEMA_VERSION, "name": name,
            "trace": current[0] if current else self._trace_id,
            "span": current[1] if current else None,
            "pid": os.getpid(), "tid": threading.get_ident(),
            "t0": time.time(), "attrs": attrs,
        })

    def carrier(self) -> dict | None:
        """Propagation payload for crossing a process boundary.

        ``None`` when there is nothing durable to stitch to (a memory
        sink cannot be shared with another process).
        """
        if not isinstance(self.sink, JsonlSink):
            return None
        current = _current.get()
        return {
            "trace": current[0] if current else self._trace_id,
            "span": current[1] if current else None,
            "sink": str(self.sink.path),
        }


# ----------------------------------------------------------------------
# the module-global tracer (the zero-overhead switch)
# ----------------------------------------------------------------------
_tracer: Tracer | None = None
_configure_lock = threading.Lock()


def get_tracer() -> Tracer | None:
    """The process's tracer, or ``None`` when tracing is disabled."""
    return _tracer


def configure(sink: Sink | str | Path | None = None) -> Tracer:
    """Enable tracing process-wide; returns the (new) tracer.

    Calling again replaces the tracer (the previous sink is closed when
    it was created here).  Instrumented code observes the change
    immediately — ``span()`` reads the module global on every call.
    """
    global _tracer
    with _configure_lock:
        old = _tracer
        _tracer = Tracer(sink)
        if old is not None:
            old.sink.close()
        return _tracer


def disable() -> None:
    """Return to the zero-overhead disabled state."""
    global _tracer
    with _configure_lock:
        old, _tracer = _tracer, None
        if old is not None:
            old.sink.close()


def span(name: str, **attrs):
    """Open a span on the process tracer — or a no-op when disabled.

    The disabled path is the hot one: a single global load and an
    immediate return of a shared object.  Keyword attributes are only
    meaningful when tracing is on, but evaluating them must stay cheap
    at every call site (pass scalars, not renders).
    """
    tracer = _tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def rspan(name: str, **attrs):
    """A *recorded* span: lands in the flight recorder ring always, and
    in the trace sink too when tracing is enabled.

    Only the coarse decision sites use this — planner serve phases, pool
    solves, synthesis, solver milestones, fleet steps — roughly a dozen
    per request, never the per-family model-build loops. The plain
    :func:`span` keeps its pinned zero-overhead contract (a shared no-op
    object when tracing is off); ``rspan`` trades two clock reads and a
    deque push for always-on incident forensics, a cost the overhead
    bench holds under the same budget.
    """
    tracer = _tracer
    if tracer is not None:
        sp = tracer.span(name, **attrs)
        sp._record = True
        return sp
    rec = _flight.active()
    if rec is not None:
        return _flight.RecorderSpan(rec, name, attrs)
    return NOOP_SPAN


def event(name: str, **attrs) -> None:
    """Emit a structured log event (no-op when disabled).

    Events additionally land in the always-on flight recorder: they are
    rare, decision-shaped records (rollbacks, evictions, recovery
    drops) — exactly what a post-incident dump should contain.
    """
    _flight.record("event", name, attrs if attrs else None)
    tracer = _tracer
    if tracer is not None:
        tracer.event(name, **attrs)


def current_context() -> dict | None:
    """The active carrier (for handing work to another process)."""
    tracer = _tracer
    if tracer is None:
        return None
    return tracer.carrier()


class _Activation:
    """Context manager stitching a worker's spans under a remote parent."""

    def __init__(self, ctx: dict | None) -> None:
        self._ctx = ctx
        self._token = None
        self._configured_here = False

    def __enter__(self):
        ctx = self._ctx
        if ctx is None:
            return self
        global _tracer
        with _configure_lock:
            if _tracer is None and ctx.get("sink"):
                _tracer = Tracer(ctx["sink"])
                self._configured_here = True
        if _tracer is not None and ctx.get("trace"):
            _tracer._trace_id = ctx["trace"]
            _tracer._root_parent = ctx.get("span")
            self._token = _current.set((ctx["trace"], ctx.get("span")))
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _current.reset(self._token)
        # a tracer configured for one stitched request stays configured:
        # pool workers are long-lived and serve many requests for the
        # same sink; closing per-request would thrash descriptors
        return False


def activate(ctx: dict | None) -> _Activation:
    """Adopt a carrier from another process (see :meth:`Tracer.carrier`).

    Inside the returned context, new spans parent under the carrier's
    span id and share its trace id.  When this process has no tracer but
    the carrier names a sink path, a tracer is configured to append
    there — this is how ``ProcessPoolExecutor`` workers join the
    submitting process's trace file.  A ``None`` carrier (or one from an
    in-memory sink) makes the whole thing a no-op.
    """
    if ctx is None and _tracer is None:
        env = os.environ.get(TRACE_ENV_VAR)
        if env:
            ctx = {"sink": env}
    return _Activation(ctx)
