"""Unified observability: tracing, metrics, provenance, flight recorder.

The pieces and how they fit:

* :mod:`repro.obs.trace` — nested spans with monotonic timing, a
  process-global tracer behind a zero-overhead ``span()`` switch, and
  carrier-based stitching across the solve pool's process boundary;
  ``rspan()`` is the recorded variant the coarse decision sites use;
* :mod:`repro.obs.metrics` — counters/gauges/histograms the legacy
  stats dicts (planner, pool, fleet controller) now sit on;
* :mod:`repro.obs.export` — JSONL → Chrome/Perfetto traces, per-phase
  summaries with leaf coverage, Prometheus text exposition;
* :mod:`repro.obs.recorder` — the always-on flight recorder: a bounded
  ring of recent span/event/decision records, dumped to JSONL on
  planner failures, fleet rollbacks, ``SIGUSR2``, firing alerts, or
  ``teccl obs dump``;
* :mod:`repro.obs.explain` — plan provenance records riding every
  ``PlanResponse``/``SynthesisResult`` (``teccl explain``);
* :mod:`repro.obs.alerts` — declarative SLO rules evaluated over
  metrics snapshots plus a small time-series ring
  (``teccl obs alerts``).

Enable tracing for a run::

    from repro import obs
    obs.configure("run.trace.jsonl")
    result = synthesize(topo, demand, config)
    obs.disable()

then ``teccl obs summary --trace run.trace.jsonl`` or
``teccl obs export-trace --trace run.trace.jsonl --output run.json``
(load the output in https://ui.perfetto.dev).
"""

from repro.obs.alerts import (Alert, AlertEngine, AlertRule, SnapshotRing,
                              builtin_rules, flatten_snapshot)
from repro.obs.explain import ExplainRecord, solve_stats_subset
from repro.obs.export import (chrome_trace, format_summary, read_events,
                              summarize, write_chrome_trace)
from repro.obs.metrics import (LATENCY_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry, exponential_buckets,
                               get_registry, prometheus_from_snapshot)
from repro.obs.recorder import (FLIGHT_DIR_ENV, FLIGHT_SCHEMA_VERSION,
                                FlightRecorder, auto_dump,
                                collect_phases, configure_recorder,
                                disable_recorder, dump_dir, format_flight,
                                get_recorder, install_signal_dump,
                                load_last_explain, read_dump,
                                save_last_explain, set_dump_dir)
from repro.obs.recorder import active as recorder_active
from repro.obs.recorder import context as recorder_context
from repro.obs.trace import (NOOP_SPAN, TRACE_ENV_VAR, TRACE_SCHEMA_VERSION,
                             JsonlSink, MemorySink, Sink, Span, Tracer,
                             activate, configure, current_context, disable,
                             event, get_tracer, rspan, span)

__all__ = [
    # trace
    "Span", "Tracer", "Sink", "JsonlSink", "MemorySink", "NOOP_SPAN",
    "span", "rspan", "event", "configure", "disable", "get_tracer",
    "current_context", "activate", "TRACE_SCHEMA_VERSION", "TRACE_ENV_VAR",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "exponential_buckets", "LATENCY_BUCKETS", "prometheus_from_snapshot",
    # export
    "read_events", "chrome_trace", "write_chrome_trace", "summarize",
    "format_summary",
    # flight recorder
    "FlightRecorder", "FLIGHT_SCHEMA_VERSION", "FLIGHT_DIR_ENV",
    "get_recorder", "recorder_active", "configure_recorder",
    "disable_recorder", "recorder_context", "collect_phases", "auto_dump",
    "set_dump_dir", "dump_dir", "install_signal_dump", "read_dump",
    "format_flight", "save_last_explain", "load_last_explain",
    # provenance
    "ExplainRecord", "solve_stats_subset",
    # alerts
    "Alert", "AlertRule", "AlertEngine", "SnapshotRing", "builtin_rules",
    "flatten_snapshot",
]
