"""Unified observability: structured tracing, metrics, exporters.

The three pieces and how they fit:

* :mod:`repro.obs.trace` — nested spans with monotonic timing, a
  process-global tracer behind a zero-overhead ``span()`` switch, and
  carrier-based stitching across the solve pool's process boundary;
* :mod:`repro.obs.metrics` — counters/gauges/histograms the legacy
  stats dicts (planner, pool, fleet controller) now sit on;
* :mod:`repro.obs.export` — JSONL → Chrome/Perfetto traces, per-phase
  summaries with leaf coverage, Prometheus text exposition.

Enable tracing for a run::

    from repro import obs
    obs.configure("run.trace.jsonl")
    result = synthesize(topo, demand, config)
    obs.disable()

then ``teccl obs summary --trace run.trace.jsonl`` or
``teccl obs export-trace --trace run.trace.jsonl --output run.json``
(load the output in https://ui.perfetto.dev).
"""

from repro.obs.export import (chrome_trace, format_summary, read_events,
                              summarize, write_chrome_trace)
from repro.obs.metrics import (LATENCY_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry, exponential_buckets,
                               get_registry, prometheus_from_snapshot)
from repro.obs.trace import (NOOP_SPAN, TRACE_ENV_VAR, TRACE_SCHEMA_VERSION,
                             JsonlSink, MemorySink, Sink, Span, Tracer,
                             activate, configure, current_context, disable,
                             event, get_tracer, span)

__all__ = [
    # trace
    "Span", "Tracer", "Sink", "JsonlSink", "MemorySink", "NOOP_SPAN",
    "span", "event", "configure", "disable", "get_tracer",
    "current_context", "activate", "TRACE_SCHEMA_VERSION", "TRACE_ENV_VAR",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "exponential_buckets", "LATENCY_BUCKETS", "prometheus_from_snapshot",
    # export
    "read_events", "chrome_trace", "write_chrome_trace", "summarize",
    "format_summary",
]
