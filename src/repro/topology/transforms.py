"""Topology transforms: hyper-edge (legacy switch) rewriting and rescaling.

The hyper-edge transform implements Appendix C / TACCL's switch model: a
switch that cannot copy is deleted and replaced by direct "hyper-edges"
between every (in-neighbor, out-neighbor) pair, with side constraints limiting
how many hyper-edges of one switch may be active per epoch. It is also the
model used for apples-to-apples TACCL comparisons (§6.1): traffic then pays a
single transmission delay to cross the switch instead of two.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.topology.topology import Link, Topology


@dataclass(frozen=True)
class HyperEdgeGroup:
    """Hyper-edges that stand in for one removed switch (Appendix C).

    Attributes:
        switch: the original switch node id (in the *original* topology).
        edges: the (src, dst) pairs (ids in the transformed topology) routed
            through this switch.
        usage_limit: ``min(in-degree, out-degree)`` of the switch — the bound
            on simultaneously active hyper-edges per epoch.
    """

    switch: int
    edges: tuple[tuple[int, int], ...]
    usage_limit: int


@dataclass
class HyperEdgeTopology:
    """Result of :func:`to_hyper_edges`: the rewritten topology plus the
    constraint groups the MILP must honor."""

    topology: Topology
    groups: list[HyperEdgeGroup] = field(default_factory=list)
    #: maps transformed node id -> original node id
    node_map: dict[int, int] = field(default_factory=dict)

    def hyper_edge_pairs(self) -> set[tuple[int, int]]:
        pairs: set[tuple[int, int]] = set()
        for group in self.groups:
            pairs.update(group.edges)
        return pairs


def to_hyper_edges(topo: Topology) -> HyperEdgeTopology:
    """Replace every switch with TACCL-style hyper-edges.

    For each switch ``s`` and every (i, s), (s, j) pair with ``i != j`` and no
    existing direct (i, j) link, a hyper-edge (i, j) is added with
    ``capacity = min`` of the two hops and ``alpha = sum`` of the two hops.
    Per Appendix C the per-epoch number of active hyper-edges of one switch is
    capped at ``min(in-degree, out-degree)``.
    """
    if not topo.switches:
        return HyperEdgeTopology(topology=topo.copy(),
                                 node_map={n: n for n in topo.nodes})

    keep = [n for n in topo.nodes if n not in topo.switches]
    new_id = {old: new for new, old in enumerate(keep)}
    node_map = {new: old for old, new in new_id.items()}
    out = Topology(name=f"{topo.name}-hyper", num_nodes=len(keep))

    for (src, dst), link in topo.links.items():
        if src in topo.switches or dst in topo.switches:
            continue
        out.add_link(new_id[src], new_id[dst], link.capacity, link.alpha)

    groups: list[HyperEdgeGroup] = []
    for switch in sorted(topo.switches):
        in_links = [l for l in topo.in_edges(switch)
                    if l.src not in topo.switches]
        out_links = [l for l in topo.out_edges(switch)
                     if l.dst not in topo.switches]
        if not in_links or not out_links:
            raise TopologyError(
                f"switch {switch} lacks in or out links; cannot form hyper-edges")
        edges: list[tuple[int, int]] = []
        for lin in in_links:
            for lout in out_links:
                if lin.src == lout.dst:
                    continue
                i, j = new_id[lin.src], new_id[lout.dst]
                if out.has_link(i, j):
                    # A faster direct link already exists; keep the better one.
                    existing = out.link(i, j)
                    capacity = min(lin.capacity, lout.capacity)
                    if capacity <= existing.capacity:
                        continue
                out.add_link(i, j, min(lin.capacity, lout.capacity),
                             lin.alpha + lout.alpha)
                edges.append((i, j))
        groups.append(HyperEdgeGroup(
            switch=switch, edges=tuple(edges),
            usage_limit=min(len(in_links), len(out_links))))
    return HyperEdgeTopology(topology=out, groups=groups, node_map=node_map)


def scale_capacity(topo: Topology, factor: float,
                   name: str | None = None) -> Topology:
    """Uniformly scale all link capacities (used for what-if sweeps)."""
    if factor <= 0:
        raise TopologyError("capacity scale factor must be positive")
    out = Topology(name=name or f"{topo.name}-x{factor:g}",
                   num_nodes=topo.num_nodes, switches=topo.switches)
    for (src, dst), link in topo.links.items():
        out.links[(src, dst)] = Link(src, dst, link.capacity * factor,
                                     link.alpha)
    return out


def with_capacity_overrides(topo: Topology,
                            factors: dict[tuple[int, int], float], *,
                            drop: Iterable[tuple[int, int]] = (),
                            name: str | None = None) -> Topology:
    """A live view of the fabric: per-link capacity factors, dead links cut.

    This is the fleet estimator's bridge from telemetry to the solvers: a
    link measured at 60% of its declared bandwidth gets ``factors[link] =
    0.6``; a link declared down goes in ``drop``. Links mentioned in
    neither keep their declared capacity. Unknown links are an error — an
    estimate for a link the fabric does not have means the caller mixed up
    topologies.
    """
    dead = set(drop)
    for key in list(factors) + list(dead):
        if key not in topo.links:
            raise TopologyError(
                f"no link {key} in {topo.name}; cannot apply live view")
    for key, factor in factors.items():
        if factor <= 0:
            raise TopologyError(
                f"live capacity factor for link {key} must be positive")
    out = Topology(name=name or f"{topo.name}-live",
                   num_nodes=topo.num_nodes, switches=topo.switches)
    for (src, dst), link in topo.links.items():
        if (src, dst) in dead:
            continue
        factor = factors.get((src, dst), 1.0)
        out.links[(src, dst)] = Link(src, dst, link.capacity * factor,
                                     link.alpha)
    if not out.links:
        raise TopologyError(
            f"live view of {topo.name} dropped every link")
    return out


def without_links(topo: Topology, failed: list[tuple[int, int]],
                  name: str | None = None) -> Topology:
    """The fabric after link failures (the intro's "adapting to failures").

    Removes each directed link in ``failed``; pass both directions to model
    a fully dead cable. The result is validated lazily by the solvers (a
    partition surfaces as a :class:`~repro.errors.TopologyError`).
    """
    out = Topology(name=name or f"{topo.name}-degraded",
                   num_nodes=topo.num_nodes, switches=topo.switches)
    for (src, dst), link in topo.links.items():
        if (src, dst) in failed:
            continue
        out.links[(src, dst)] = link
    if len(out.links) == len(topo.links):
        raise TopologyError(f"none of the links {failed} exist in {topo.name}")
    return out


def subset_gpus(topo: Topology, gpus: list[int],
                name: str | None = None) -> Topology:
    """Induced sub-topology on ``gpus`` plus every switch (for ablations)."""
    keep = sorted(set(gpus) | set(topo.switches))
    for node in keep:
        if not 0 <= node < topo.num_nodes:
            raise TopologyError(f"node {node} not in topology")
    new_id = {old: new for new, old in enumerate(keep)}
    out = Topology(name=name or f"{topo.name}-sub{len(gpus)}",
                   num_nodes=len(keep),
                   switches=frozenset(new_id[s] for s in topo.switches))
    for (src, dst), link in topo.links.items():
        if src in new_id and dst in new_id:
            out.add_link(new_id[src], new_id[dst], link.capacity, link.alpha)
    return out


def relabel(topo: Topology, perm: dict[int, int] | list[int],
            name: str | None = None) -> Topology:
    """Rename every node through the permutation ``perm`` (old id -> new id).

    Switches stay switches and each link (i, j) becomes
    (perm[i], perm[j]) with its capacity and alpha untouched, so
    ``relabel(topo, perm)`` is isomorphic to ``topo`` by construction. Used
    by the automorphism checker (``repro.core.symmetry``) and by
    rank-reordering workloads. ``relabel(relabel(topo, perm), inverse)`` is
    the identity up to the name.
    """
    if isinstance(perm, dict):
        mapping = dict(perm)
    else:
        mapping = {old: new for old, new in enumerate(perm)}
    if (len(mapping) != topo.num_nodes
            or set(mapping) != set(range(topo.num_nodes))
            or set(mapping.values()) != set(range(topo.num_nodes))):
        raise TopologyError(
            f"relabel permutation must be a bijection on "
            f"range({topo.num_nodes})")
    out = Topology(name=name or f"{topo.name}-relabeled",
                   num_nodes=topo.num_nodes,
                   switches=frozenset(mapping[s] for s in topo.switches))
    for (src, dst), link in topo.links.items():
        out.add_link(mapping[src], mapping[dst], link.capacity, link.alpha)
    return out
