"""Synthetic stand-ins for the paper's proprietary cloud topologies.

Table 2 discloses only the per-chassis shape:

* **Internal 1** — 4 GPUs and 8 intra-chassis directed edges per chassis;
* **Internal 2** — 2 GPUs and 2 intra-chassis directed edges per chassis;

and the α values (0.6 µs GPU–GPU, 0.75 µs GPU–switch; Figure 2's caption).
Everything else is proprietary, so these builders synthesize the disclosed
shape: a ring of GPUs inside each chassis (a 4-ring has exactly 8 directed
edges; a 2-ring has exactly 2) and a global switch that every GPU uplinks to,
matching how NDv2/DGX2 attach chassis to the cloud fabric.

Bandwidths are chosen at NVLink-class rates (100 GBps intra-chassis,
25 GBps uplink) so that, like the real targets, the fabric is heterogeneous
with a 4× intra/inter gap. The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.topology import GB, US, Topology

INTERNAL_GPU_GPU = 100 * GB
INTERNAL_UPLINK = 25 * GB
INTERNAL_GPU_ALPHA = 0.6 * US
INTERNAL_SWITCH_ALPHA = 0.75 * US


def _chassis_ring(topo: Topology, base: int, size: int,
                  capacity: float, alpha: float) -> None:
    if size == 2:
        topo.add_bidirectional(base, base + 1, capacity, alpha)
        return
    for i in range(size):
        j = (i + 1) % size
        topo.add_bidirectional(base + i, base + j, capacity, alpha)


def _internal(num_chassis: int, gpus_per_chassis: int, name: str,
              gpu_capacity: float, uplink_capacity: float) -> Topology:
    if num_chassis < 1:
        raise TopologyError("need at least one chassis")
    num_gpus = num_chassis * gpus_per_chassis
    if num_chassis == 1:
        topo = Topology(name=name, num_nodes=num_gpus)
        _chassis_ring(topo, 0, gpus_per_chassis, gpu_capacity,
                      INTERNAL_GPU_ALPHA)
        return topo
    switch = num_gpus
    topo = Topology(name=name, num_nodes=num_gpus + 1,
                    switches=frozenset({switch}))
    for c in range(num_chassis):
        base = c * gpus_per_chassis
        _chassis_ring(topo, base, gpus_per_chassis, gpu_capacity,
                      INTERNAL_GPU_ALPHA)
        for local in range(gpus_per_chassis):
            topo.add_bidirectional(base + local, switch, uplink_capacity,
                                   INTERNAL_SWITCH_ALPHA)
    return topo


def internal1(num_chassis: int = 2, name: str | None = None) -> Topology:
    """Internal 1 stand-in: 4-GPU chassis (ring, 8 directed edges each)."""
    return _internal(num_chassis, 4,
                     name or f"Internal1x{num_chassis}",
                     INTERNAL_GPU_GPU, INTERNAL_UPLINK)


def internal2(num_chassis: int = 2, name: str | None = None) -> Topology:
    """Internal 2 stand-in: 2-GPU chassis (one link pair each)."""
    return _internal(num_chassis, 2,
                     name or f"Internal2x{num_chassis}",
                     INTERNAL_GPU_GPU, INTERNAL_UPLINK)
