"""Datacenter-scale fabric builders: fat-tree, leaf-spine, torus, hypercube.

The paper evaluates on chassis fabrics (DGX/NDv2/Internal); operators also
run collectives across *cluster* fabrics when a job spans racks. These
builders produce the standard families so the scaling experiments and the
topology-design search (:mod:`repro.toposearch`) have realistic cluster
shapes to work with. Capacity/α defaults are typical 2023-era datacenter
numbers (100 Gbps-class NICs, 400 Gbps-class fabric links, microsecond-scale
switch latencies); every number is overridable.

Conventions match :mod:`repro.topology.dgx`: GPUs get the low node ids,
switches the high ones; all links are created in opposing pairs.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.topology import GB, US, Topology

NIC_CAPACITY = 12.5 * GB      # 100 Gbps host NIC
FABRIC_CAPACITY = 50 * GB     # 400 Gbps switch-to-switch link
NIC_ALPHA = 1.5 * US
FABRIC_ALPHA = 1.0 * US
TORUS_CAPACITY = 25 * GB      # 200 Gbps direct-connect cable
TORUS_ALPHA = 0.7 * US


def leaf_spine(num_leaves: int, gpus_per_leaf: int, num_spines: int, *,
               nic_capacity: float = NIC_CAPACITY,
               fabric_capacity: float = FABRIC_CAPACITY,
               nic_alpha: float = NIC_ALPHA,
               fabric_alpha: float = FABRIC_ALPHA,
               name: str | None = None) -> Topology:
    """A two-tier folded Clos: GPUs under leaves, leaves meshed to spines.

    Node layout: GPUs ``0 .. L·G−1`` (leaf-major), then leaf switches, then
    spine switches. Every GPU uplinks to its leaf; every leaf connects to
    every spine.
    """
    if num_leaves < 1 or gpus_per_leaf < 1 or num_spines < 1:
        raise TopologyError("leaf/spine/gpu counts must be positive")
    num_gpus = num_leaves * gpus_per_leaf
    first_leaf = num_gpus
    first_spine = num_gpus + num_leaves
    switches = frozenset(range(first_leaf, first_spine + num_spines))
    topo = Topology(
        name=name or f"leafspine-{num_leaves}x{gpus_per_leaf}+{num_spines}",
        num_nodes=first_spine + num_spines, switches=switches)
    for leaf in range(num_leaves):
        leaf_id = first_leaf + leaf
        for g in range(gpus_per_leaf):
            gpu = leaf * gpus_per_leaf + g
            topo.add_bidirectional(gpu, leaf_id, nic_capacity, nic_alpha)
        for spine in range(num_spines):
            topo.add_bidirectional(leaf_id, first_spine + spine,
                                   fabric_capacity, fabric_alpha)
    return topo


def fat_tree(k: int, *, nic_capacity: float = NIC_CAPACITY,
             fabric_capacity: float = FABRIC_CAPACITY,
             nic_alpha: float = NIC_ALPHA,
             fabric_alpha: float = FABRIC_ALPHA,
             name: str | None = None) -> Topology:
    """The classic k-ary fat-tree (three-tier folded Clos).

    ``k`` pods, each with k/2 edge and k/2 aggregation switches; (k/2)²
    cores; k/2 GPUs per edge switch — ``k³/4`` GPUs total (k = 4 → 16 GPUs
    and 20 switches). Node layout: GPUs first (pod-major, edge-major),
    then per-pod edge switches, per-pod aggregation switches, then cores.
    """
    if k < 2 or k % 2:
        raise TopologyError("fat-tree arity k must be even and ≥ 2")
    half = k // 2
    num_gpus = k * half * half
    first_edge = num_gpus
    first_agg = first_edge + k * half
    first_core = first_agg + k * half
    num_nodes = first_core + half * half
    topo = Topology(name=name or f"fattree-k{k}", num_nodes=num_nodes,
                    switches=frozenset(range(first_edge, num_nodes)))

    def edge_switch(pod: int, e: int) -> int:
        return first_edge + pod * half + e

    def agg_switch(pod: int, a: int) -> int:
        return first_agg + pod * half + a

    for pod in range(k):
        for e in range(half):
            edge = edge_switch(pod, e)
            for g in range(half):
                gpu = (pod * half + e) * half + g
                topo.add_bidirectional(gpu, edge, nic_capacity, nic_alpha)
            for a in range(half):
                topo.add_bidirectional(edge, agg_switch(pod, a),
                                       fabric_capacity, fabric_alpha)
        for a in range(half):
            for c in range(half):
                core = first_core + a * half + c
                topo.add_bidirectional(agg_switch(pod, a), core,
                                       fabric_capacity, fabric_alpha)
    return topo


def torus2d(rows: int, cols: int, *, capacity: float = TORUS_CAPACITY,
            alpha: float = TORUS_ALPHA,
            name: str | None = None) -> Topology:
    """A 2-D torus of GPUs (wrap-around grid, no switches).

    The direct-connect shape TopoOpt-style designs favour; every GPU links
    to its four grid neighbours. Degenerate dimensions (a single row or
    column) collapse the wrap-around duplicate links automatically.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError("torus needs at least 2 GPUs")
    topo = Topology(name=name or f"torus-{rows}x{cols}",
                    num_nodes=rows * cols)

    def node(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    for r in range(rows):
        for c in range(cols):
            here = node(r, c)
            if cols > 1:
                topo.add_bidirectional(here, node(r, c + 1), capacity, alpha)
            if rows > 1:
                topo.add_bidirectional(here, node(r + 1, c), capacity, alpha)
    return topo


def hypercube(dimension: int, *, capacity: float = TORUS_CAPACITY,
              alpha: float = TORUS_ALPHA,
              name: str | None = None) -> Topology:
    """A binary hypercube of 2^dimension GPUs (links along bit flips).

    The textbook fabric for recursive-halving collectives; every GPU has
    ``dimension`` neighbours.
    """
    if dimension < 1:
        raise TopologyError("hypercube dimension must be at least 1")
    n = 1 << dimension
    topo = Topology(name=name or f"hypercube-{dimension}", num_nodes=n)
    for node in range(n):
        for bit in range(dimension):
            peer = node ^ (1 << bit)
            if peer > node:
                topo.add_bidirectional(node, peer, capacity, alpha)
    return topo


def dragonfly(num_groups: int, routers_per_group: int, gpus_per_router: int,
              *, nic_capacity: float = NIC_CAPACITY,
              local_capacity: float = FABRIC_CAPACITY,
              global_capacity: float = TORUS_CAPACITY,
              nic_alpha: float = NIC_ALPHA,
              local_alpha: float = FABRIC_ALPHA,
              global_alpha: float = 5.0 * US,
              name: str | None = None) -> Topology:
    """A single-global-link dragonfly: groups of meshed routers.

    Routers within a group form a full mesh; each ordered group pair gets
    one global link, assigned round-robin over the source group's routers.
    Node layout: GPUs first (group-major, router-major), then routers.
    """
    if num_groups < 2 or routers_per_group < 1 or gpus_per_router < 1:
        raise TopologyError(
            "dragonfly needs ≥ 2 groups and positive router/gpu counts")
    num_gpus = num_groups * routers_per_group * gpus_per_router
    first_router = num_gpus
    num_routers = num_groups * routers_per_group
    topo = Topology(
        name=name or (f"dragonfly-{num_groups}g{routers_per_group}r"
                      f"{gpus_per_router}"),
        num_nodes=num_gpus + num_routers,
        switches=frozenset(range(first_router, first_router + num_routers)))

    def router(group: int, r: int) -> int:
        return first_router + group * routers_per_group + r

    for group in range(num_groups):
        for r in range(routers_per_group):
            this = router(group, r)
            for g in range(gpus_per_router):
                gpu = (group * routers_per_group + r) * gpus_per_router + g
                topo.add_bidirectional(gpu, this, nic_capacity, nic_alpha)
            for other in range(r + 1, routers_per_group):
                topo.add_bidirectional(this, router(group, other),
                                       local_capacity, local_alpha)
    for src_group in range(num_groups):
        for dst_group in range(num_groups):
            if src_group == dst_group:
                continue
            out_index = (dst_group - src_group - 1) % num_groups
            src_router = router(src_group,
                                out_index % routers_per_group)
            dst_router = router(dst_group,
                                ((src_group - dst_group - 1) % num_groups)
                                % routers_per_group)
            topo.add_link(src_router, dst_router,
                          global_capacity, global_alpha)
    return topo
