"""Topology model: GPUs, switches, and directed links with capacity and α.

The paper's inputs are a directed graph whose nodes are GPUs or switches and
whose edges carry two parameters from the α–β cost model (§2.1):

* ``capacity`` — bytes/second the link sustains (β = 1/capacity);
* ``alpha`` — the fixed per-transfer latency in seconds (propagation plus the
  fixed software cost of posting a send).

Switches differ from GPUs in two ways the formulations exploit: they have no
buffer memory (chunks must be forwarded in the next epoch) and, depending on
the switch model, may or may not copy chunks (§3.1 "Modeling switches").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import TopologyError

GB = 1e9
"""Bytes per gigabyte (decimal, matching NIC datasheets and the paper)."""

US = 1e-6
"""Seconds per microsecond."""


@dataclass(frozen=True)
class Link:
    """A unidirectional link.

    Attributes:
        src: sending node id.
        dst: receiving node id.
        capacity: bytes per second (must be positive).
        alpha: fixed latency in seconds (must be non-negative).
    """

    src: int
    dst: int
    capacity: float
    alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologyError(f"self-loop on node {self.src}")
        if self.capacity <= 0:
            raise TopologyError(
                f"link ({self.src},{self.dst}): capacity must be positive")
        if self.alpha < 0:
            raise TopologyError(
                f"link ({self.src},{self.dst}): alpha must be non-negative")

    @property
    def beta(self) -> float:
        """Transmission time per byte (the β of the α–β model)."""
        return 1.0 / self.capacity

    def transfer_time(self, size_bytes: float) -> float:
        """α + β·S: the time for ``size_bytes`` to cross this link."""
        return self.alpha + size_bytes * self.beta

    def with_alpha(self, alpha: float) -> "Link":
        return replace(self, alpha=alpha)


@dataclass
class Topology:
    """A directed network of GPUs and switches.

    Node ids are dense integers ``0..num_nodes-1``. The class is mutable
    during construction (``add_link``) and validated by :meth:`validate`,
    which all solvers call before building a model.

    Attributes:
        name: human-readable name (appears in benchmark tables).
        num_nodes: total node count, GPUs plus switches.
        switches: ids of switch nodes.
        links: mapping from ``(src, dst)`` to :class:`Link`.
    """

    name: str
    num_nodes: int
    switches: frozenset[int] = frozenset()
    links: dict[tuple[int, int], Link] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise TopologyError("topology needs at least one node")
        self.switches = frozenset(self.switches)
        for s in self.switches:
            self._check_node(s)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range [0, {self.num_nodes})")

    def add_link(self, src: int, dst: int, capacity: float,
                 alpha: float = 0.0) -> Link:
        """Add a unidirectional link; replaces any existing (src, dst) link."""
        self._check_node(src)
        self._check_node(dst)
        link = Link(src, dst, capacity, alpha)
        self.links[(src, dst)] = link
        return link

    def add_bidirectional(self, a: int, b: int, capacity: float,
                          alpha: float = 0.0) -> tuple[Link, Link]:
        """Add a pair of opposing links (the common case in GPU fabrics)."""
        return (self.add_link(a, b, capacity, alpha),
                self.add_link(b, a, capacity, alpha))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> range:
        return range(self.num_nodes)

    @property
    def gpus(self) -> list[int]:
        """Non-switch nodes, i.e. the endpoints that source/sink demands."""
        return [n for n in self.nodes if n not in self.switches]

    @property
    def num_gpus(self) -> int:
        return self.num_nodes - len(self.switches)

    def is_switch(self, node: int) -> bool:
        return node in self.switches

    def out_edges(self, node: int) -> list[Link]:
        return [l for (s, _), l in self.links.items() if s == node]

    def in_edges(self, node: int) -> list[Link]:
        return [l for (_, d), l in self.links.items() if d == node]

    def neighbors_out(self, node: int) -> list[int]:
        return [l.dst for l in self.out_edges(node)]

    def link(self, src: int, dst: int) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link ({src},{dst}) in {self.name}") from None

    def has_link(self, src: int, dst: int) -> bool:
        return (src, dst) in self.links

    @property
    def min_capacity(self) -> float:
        self._require_links()
        return min(l.capacity for l in self.links.values())

    @property
    def max_capacity(self) -> float:
        self._require_links()
        return max(l.capacity for l in self.links.values())

    @property
    def max_alpha(self) -> float:
        self._require_links()
        return max(l.alpha for l in self.links.values())

    def _require_links(self) -> None:
        if not self.links:
            raise TopologyError(f"topology {self.name!r} has no links")

    # ------------------------------------------------------------------
    # adjacency caches (built lazily; invalidated by add_link being rare
    # after validate(), solvers call build_adjacency() explicitly)
    # ------------------------------------------------------------------
    def adjacency(self) -> tuple[dict[int, list[Link]], dict[int, list[Link]]]:
        """Return (out_adj, in_adj) dicts keyed by node id."""
        out_adj: dict[int, list[Link]] = {n: [] for n in self.nodes}
        in_adj: dict[int, list[Link]] = {n: [] for n in self.nodes}
        for link in self.links.values():
            out_adj[link.src].append(link)
            in_adj[link.dst].append(link)
        return out_adj, in_adj

    # ------------------------------------------------------------------
    # validation & transforms
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the invariants every solver relies on.

        * at least one GPU and one link;
        * GPUs are mutually reachable (demands would otherwise be infeasible);
        * switches are not sources/sinks of the graph (they relay only).
        """
        self._require_links()
        if self.num_gpus < 1:
            raise TopologyError("topology has no GPUs")
        for s in self.switches:
            if not self.out_edges(s) or not self.in_edges(s):
                raise TopologyError(f"switch {s} must have in and out links")
        self._check_gpu_reachability()

    def _check_gpu_reachability(self) -> None:
        gpus = self.gpus
        if len(gpus) <= 1:
            return
        out_adj, _ = self.adjacency()
        start = gpus[0]
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for link in out_adj[node]:
                if link.dst not in seen:
                    seen.add(link.dst)
                    stack.append(link.dst)
        unreachable = [g for g in gpus if g not in seen]
        if unreachable:
            raise TopologyError(
                f"GPUs {unreachable} unreachable from GPU {start}; "
                "collective demands would be infeasible")
        # Reverse reachability: everyone must also reach `start`.
        _, in_adj = self.adjacency()
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for link in in_adj[node]:
                if link.src not in seen:
                    seen.add(link.src)
                    stack.append(link.src)
        cannot_reach = [g for g in gpus if g not in seen]
        if cannot_reach:
            raise TopologyError(
                f"GPUs {cannot_reach} cannot reach GPU {start}; "
                "collective demands would be infeasible")

    def to_dict(self) -> dict:
        """JSON-ready representation; links sorted for stable output."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "switches": sorted(self.switches),
            "links": [
                {"src": link.src, "dst": link.dst,
                 "capacity": link.capacity, "alpha": link.alpha}
                for link in sorted(self.links.values(),
                                   key=lambda l: (l.src, l.dst))
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "Topology":
        """Parse the :meth:`to_dict` representation, validating as it goes."""
        try:
            name = data["name"]
            num_nodes = int(data["num_nodes"])
            switches = [int(s) for s in data.get("switches", [])]
            links = data["links"]
        except (KeyError, TypeError, ValueError) as exc:
            raise TopologyError(f"malformed topology document: {exc}") from exc
        topo = Topology(name=name, num_nodes=num_nodes,
                        switches=frozenset(switches))
        for entry in links:
            try:
                topo.add_link(int(entry["src"]), int(entry["dst"]),
                              float(entry["capacity"]),
                              float(entry.get("alpha", 0.0)))
            except (KeyError, TypeError, ValueError) as exc:
                raise TopologyError(f"malformed link entry {entry}: {exc}") \
                    from exc
        if not topo.links:
            raise TopologyError("topology document has no links")
        return topo

    def copy(self, name: str | None = None) -> "Topology":
        return Topology(name=name or self.name,
                        num_nodes=self.num_nodes,
                        switches=self.switches,
                        links=dict(self.links))

    def with_zero_alpha(self) -> "Topology":
        """The same fabric with α = 0 on every link (used by Fig. 7/9, §6.3)."""
        topo = Topology(name=f"{self.name}-alpha0",
                        num_nodes=self.num_nodes, switches=self.switches)
        for (src, dst), link in self.links.items():
            topo.links[(src, dst)] = link.with_alpha(0.0)
        return topo

    def __repr__(self) -> str:
        return (f"Topology({self.name!r}, gpus={self.num_gpus}, "
                f"switches={len(self.switches)}, links={len(self.links)})")
