"""Topology substrate: fabrics, evaluation topologies, and transforms."""

from repro.topology.builders import (alpha_motivation_line, copy_star,
                                     full_mesh, line, ring, star,
                                     store_and_forward_star, switch_cluster)
from repro.topology.dgx import dgx1, dgx2, ndv2
from repro.topology.fabrics import (dragonfly, fat_tree, hypercube,
                                    leaf_spine, torus2d)
from repro.topology.internal import internal1, internal2
from repro.topology.io import (from_dict, from_edge_list, load_json,
                               save_json, to_dict)
from repro.topology.topology import GB, US, Link, Topology
from repro.topology.transforms import (HyperEdgeGroup, HyperEdgeTopology,
                                       relabel, scale_capacity, subset_gpus,
                                       to_hyper_edges,
                                       with_capacity_overrides,
                                       without_links)

__all__ = [
    "Topology", "Link", "GB", "US",
    "line", "ring", "star", "full_mesh", "switch_cluster",
    "alpha_motivation_line", "store_and_forward_star", "copy_star",
    "dgx1", "ndv2", "dgx2", "internal1", "internal2",
    "leaf_spine", "fat_tree", "torus2d", "hypercube", "dragonfly",
    "to_hyper_edges", "HyperEdgeGroup", "HyperEdgeTopology",
    "relabel", "scale_capacity", "subset_gpus", "without_links",
    "with_capacity_overrides",
    "from_edge_list", "from_dict", "to_dict", "save_json", "load_json",
]
