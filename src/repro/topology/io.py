"""Topology serialisation: JSON round-trips and edge-list construction.

Cloud operators describe fabrics in inventory files, not Python; TE-CCL's
only inputs are "the topology and the demand matrix" (§3.1), so the library
must accept fabrics from data. The JSON dialect is deliberately plain::

    {
      "name": "my-fabric",
      "num_nodes": 3,
      "switches": [2],
      "links": [
        {"src": 0, "dst": 2, "capacity": 25e9, "alpha": 7.5e-7},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.errors import TopologyError
from repro.topology.topology import Topology


def from_edge_list(num_nodes: int,
                   edges: Iterable[tuple[int, int, float, float]],
                   switches: Iterable[int] = (),
                   name: str = "custom") -> Topology:
    """Build a topology from ``(src, dst, capacity, alpha)`` tuples."""
    topo = Topology(name=name, num_nodes=num_nodes,
                    switches=frozenset(switches))
    count = 0
    for src, dst, capacity, alpha in edges:
        topo.add_link(src, dst, capacity, alpha)
        count += 1
    if not count:
        raise TopologyError("edge list is empty")
    return topo


def to_dict(topo: Topology) -> dict:
    """The JSON-ready representation of a topology."""
    return {
        "name": topo.name,
        "num_nodes": topo.num_nodes,
        "switches": sorted(topo.switches),
        "links": [
            {"src": link.src, "dst": link.dst,
             "capacity": link.capacity, "alpha": link.alpha}
            for link in sorted(topo.links.values(),
                               key=lambda l: (l.src, l.dst))
        ],
    }


def from_dict(data: dict) -> Topology:
    """Parse the :func:`to_dict` representation, validating as it goes."""
    try:
        name = data["name"]
        num_nodes = int(data["num_nodes"])
        switches = [int(s) for s in data.get("switches", [])]
        links = data["links"]
    except (KeyError, TypeError, ValueError) as exc:
        raise TopologyError(f"malformed topology document: {exc}") from exc
    topo = Topology(name=name, num_nodes=num_nodes,
                    switches=frozenset(switches))
    for entry in links:
        try:
            topo.add_link(int(entry["src"]), int(entry["dst"]),
                          float(entry["capacity"]),
                          float(entry.get("alpha", 0.0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise TopologyError(f"malformed link entry {entry}: {exc}") \
                from exc
    if not topo.links:
        raise TopologyError("topology document has no links")
    return topo


def save_json(topo: Topology, path: str | Path) -> None:
    """Write the topology to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(topo), indent=2),
                          encoding="utf-8")


def load_json(path: str | Path) -> Topology:
    """Read a topology from a JSON file (raises TopologyError on garbage)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TopologyError(f"invalid JSON in {path}: {exc}") from exc
    return from_dict(data)
