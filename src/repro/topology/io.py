"""Topology serialisation: JSON round-trips and edge-list construction.

Cloud operators describe fabrics in inventory files, not Python; TE-CCL's
only inputs are "the topology and the demand matrix" (§3.1), so the library
must accept fabrics from data. The JSON dialect is deliberately plain::

    {
      "name": "my-fabric",
      "num_nodes": 3,
      "switches": [2],
      "links": [
        {"src": 0, "dst": 2, "capacity": 25e9, "alpha": 7.5e-7},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.errors import TopologyError
from repro.topology.topology import Topology


def from_edge_list(num_nodes: int,
                   edges: Iterable[tuple[int, int, float, float]],
                   switches: Iterable[int] = (),
                   name: str = "custom") -> Topology:
    """Build a topology from ``(src, dst, capacity, alpha)`` tuples."""
    topo = Topology(name=name, num_nodes=num_nodes,
                    switches=frozenset(switches))
    count = 0
    for src, dst, capacity, alpha in edges:
        topo.add_link(src, dst, capacity, alpha)
        count += 1
    if not count:
        raise TopologyError("edge list is empty")
    return topo


def to_dict(topo: Topology) -> dict:
    """The JSON-ready representation of a topology."""
    return topo.to_dict()


def from_dict(data: dict) -> Topology:
    """Parse the :func:`to_dict` representation, validating as it goes."""
    return Topology.from_dict(data)


def save_json(topo: Topology, path: str | Path) -> None:
    """Write the topology to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(topo), indent=2),
                          encoding="utf-8")


def load_json(path: str | Path) -> Topology:
    """Read a topology from a JSON file (raises TopologyError on garbage)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TopologyError(f"invalid JSON in {path}: {exc}") from exc
    return from_dict(data)
