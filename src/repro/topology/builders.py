"""Generic topology builders (lines, rings, stars, meshes, switch fabrics).

These are the small synthetic fabrics used throughout the tests and the
motivating examples of Figure 1; the paper's evaluation topologies live in
:mod:`repro.topology.dgx` and :mod:`repro.topology.internal`.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.topology import GB, Topology


def line(num_nodes: int, capacity: float = GB, alpha: float = 0.0,
         bidirectional: bool = True, name: str | None = None) -> Topology:
    """A path ``0 - 1 - ... - n-1``."""
    if num_nodes < 2:
        raise TopologyError("line needs at least 2 nodes")
    topo = Topology(name=name or f"line{num_nodes}", num_nodes=num_nodes)
    for i in range(num_nodes - 1):
        if bidirectional:
            topo.add_bidirectional(i, i + 1, capacity, alpha)
        else:
            topo.add_link(i, i + 1, capacity, alpha)
    return topo


def ring(num_nodes: int, capacity: float = GB, alpha: float = 0.0,
         bidirectional: bool = True, name: str | None = None) -> Topology:
    """A cycle ``0 → 1 → ... → n-1 → 0`` (both directions by default)."""
    if num_nodes < 2:
        raise TopologyError("ring needs at least 2 nodes")
    topo = Topology(name=name or f"ring{num_nodes}", num_nodes=num_nodes)
    for i in range(num_nodes):
        j = (i + 1) % num_nodes
        if bidirectional:
            topo.add_bidirectional(i, j, capacity, alpha)
        else:
            topo.add_link(i, j, capacity, alpha)
    return topo


def full_mesh(num_nodes: int, capacity: float = GB, alpha: float = 0.0,
              name: str | None = None) -> Topology:
    """Every ordered pair directly connected."""
    if num_nodes < 2:
        raise TopologyError("mesh needs at least 2 nodes")
    topo = Topology(name=name or f"mesh{num_nodes}", num_nodes=num_nodes)
    for i in range(num_nodes):
        for j in range(num_nodes):
            if i != j:
                topo.add_link(i, j, capacity, alpha)
    return topo


def star(num_leaves: int, capacity: float = GB, alpha: float = 0.0,
         hub_is_switch: bool = True, name: str | None = None) -> Topology:
    """``num_leaves`` GPUs around a hub (node id ``num_leaves``).

    With ``hub_is_switch`` the hub is a zero-buffer switch — the shape of
    Figure 1(b)/(c)'s examples and of every chassis-to-chassis fabric in the
    paper.
    """
    if num_leaves < 2:
        raise TopologyError("star needs at least 2 leaves")
    hub = num_leaves
    switches = frozenset({hub}) if hub_is_switch else frozenset()
    topo = Topology(name=name or f"star{num_leaves}",
                    num_nodes=num_leaves + 1, switches=switches)
    for leaf in range(num_leaves):
        topo.add_bidirectional(leaf, hub, capacity, alpha)
    return topo


def switch_cluster(num_gpus: int, gpu_capacity: float = GB,
                   switch_capacity: float | None = None,
                   alpha_gpu: float = 0.0, alpha_switch: float = 0.0,
                   gpus_per_chassis: int | None = None,
                   name: str | None = None) -> Topology:
    """Chassis of fully-meshed GPUs hanging off one global switch.

    A generic stand-in for the cloud topologies of §6: GPUs within a chassis
    are meshed at ``gpu_capacity``; every GPU also connects to a single global
    switch at ``switch_capacity``.

    Args:
        num_gpus: total GPU count (must divide evenly into chassis).
        gpus_per_chassis: chassis size; defaults to all GPUs in one chassis.
    """
    if num_gpus < 2:
        raise TopologyError("cluster needs at least 2 GPUs")
    per = gpus_per_chassis or num_gpus
    if num_gpus % per:
        raise TopologyError(
            f"{num_gpus} GPUs do not divide into chassis of {per}")
    switch_capacity = switch_capacity or gpu_capacity
    switch = num_gpus
    topo = Topology(name=name or f"cluster{num_gpus}",
                    num_nodes=num_gpus + 1, switches=frozenset({switch}))
    for chassis_start in range(0, num_gpus, per):
        members = range(chassis_start, chassis_start + per)
        for i in members:
            for j in members:
                if i != j:
                    topo.add_link(i, j, gpu_capacity, alpha_gpu)
    for gpu in range(num_gpus):
        topo.add_bidirectional(gpu, switch, switch_capacity, alpha_switch)
    return topo


def alpha_motivation_line() -> Topology:
    """The 5-node example of Figure 1(a).

    ``s1 - h1 - h2 - h3 - d`` with per-link α = α1, plus a direct slow-α link
    ``s2 → h3`` with α2 = 2β + 3α1 and a zero-α final hop ``h3 → d``. Node
    ids: s1=0, h1=1, h2=2, h3=3, d=4, s2=5.
    """
    capacity = GB            # β = 1 s/GB → 1 chunk of 1 GB per second
    alpha1 = 1.0             # exactly one epoch at τ = 1 s: no quantization
    beta_chunk = 1.0         # transmission time of the unit chunk
    alpha2 = 2 * beta_chunk + 3 * alpha1
    topo = Topology(name="fig1a", num_nodes=6)
    topo.add_link(0, 1, capacity, alpha1)
    topo.add_link(1, 2, capacity, alpha1)
    topo.add_link(2, 3, capacity, alpha1)
    topo.add_link(3, 4, capacity, 0.0)
    topo.add_link(5, 3, capacity, alpha2)
    # Return paths so validate() sees a strongly-connected GPU set.
    topo.add_link(4, 3, capacity, 0.0)
    topo.add_link(3, 2, capacity, alpha1)
    topo.add_link(2, 1, capacity, alpha1)
    topo.add_link(1, 0, capacity, alpha1)
    topo.add_link(3, 5, capacity, alpha2)
    return topo


def store_and_forward_star() -> Topology:
    """Figure 1(b): three unit-capacity sources into ``h``, 2-unit link to d.

    Node ids: s1=0, s2=1, s3=2, h=3, d=4. ``h`` is a GPU (it can buffer) —
    the example is precisely about exploiting that buffer.
    """
    topo = Topology(name="fig1b", num_nodes=5)
    for s in (0, 1, 2):
        topo.add_bidirectional(s, 3, 1.0, 0.0)
    topo.add_bidirectional(3, 4, 2.0, 0.0)
    return topo


def copy_star() -> Topology:
    """Figure 1(c): one source, hub, three destinations, unit links.

    Node ids: s=0, h=1, d1=2, d2=3, d3=4. The hub is a GPU that can copy.
    """
    topo = Topology(name="fig1c", num_nodes=5)
    topo.add_bidirectional(0, 1, 1.0, 0.0)
    for d in (2, 3, 4):
        topo.add_bidirectional(1, d, 1.0, 0.0)
    return topo
