"""The public evaluation topologies: DGX1, NDv2, DGX2 (Table 2, Figs. 11-12).

Link parameters follow Appendix H:

* NDv2 / DGX1 chassis: 8 GPUs, 32 intra-chassis directed edges, NVLink pairs
  at 50 GBps and 25 GBps, α = 0.7 µs; two GPUs per chassis uplink to a global
  switch at 12.5 GBps, α = 1.3 µs (Figure 11).
* DGX2 chassis: 16 GPUs behind an NVSwitch (17 nodes, 32 directed edges per
  chassis) at 125 GBps, α = 0.35 µs; cross-chassis links at 12.5 GBps,
  α = 2.6 µs, with 8 sender GPUs and 8 receiver GPUs per chassis (Figure 12).

The exact NVLink pairing inside a DGX1-class box is the standard two-quad
layout (each quad fully connected, plus one cross-quad link per GPU); the
double-width NVLink pairs get the 50 GBps rate and the single links 25 GBps.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.topology import GB, US, Topology

# Fully-connected quads {0..3} and {4..7}, one cross-quad link per GPU.
_DGX1_FAST_PAIRS = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
                    (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7)]
_DGX1_SLOW_PAIRS = [(0, 4), (1, 5), (2, 6), (3, 7)]

NVLINK_FAST = 50 * GB
NVLINK_SLOW = 25 * GB
NVLINK_ALPHA = 0.7 * US
NDV2_UPLINK = 12.5 * GB
NDV2_UPLINK_ALPHA = 1.3 * US

DGX2_NVSWITCH = 125 * GB
DGX2_NVSWITCH_ALPHA = 0.35 * US
DGX2_CROSS = 12.5 * GB
DGX2_CROSS_ALPHA = 2.6 * US


def _add_chassis_nvlinks(topo: Topology, base: int) -> None:
    for a, b in _DGX1_FAST_PAIRS:
        topo.add_bidirectional(base + a, base + b, NVLINK_FAST, NVLINK_ALPHA)
    for a, b in _DGX1_SLOW_PAIRS:
        topo.add_bidirectional(base + a, base + b, NVLINK_SLOW, NVLINK_ALPHA)


def dgx1(name: str = "DGX1") -> Topology:
    """A single 8-GPU DGX1 box (no switch), 32 directed NVLink edges."""
    topo = Topology(name=name, num_nodes=8)
    _add_chassis_nvlinks(topo, 0)
    return topo


def ndv2(num_chassis: int = 1, name: str | None = None) -> Topology:
    """Azure NDv2: DGX1-style chassis joined through one global switch.

    GPU ids are ``chassis*8 + local``; the switch (present when
    ``num_chassis > 1``) is the last node id. Per Figure 11, GPUs 0 and 1 of
    each chassis carry the 12.5 GBps uplinks.
    """
    if num_chassis < 1:
        raise TopologyError("need at least one chassis")
    num_gpus = 8 * num_chassis
    if num_chassis == 1:
        topo = Topology(name=name or "NDv2", num_nodes=8)
        _add_chassis_nvlinks(topo, 0)
        return topo
    switch = num_gpus
    topo = Topology(name=name or f"NDv2x{num_chassis}",
                    num_nodes=num_gpus + 1, switches=frozenset({switch}))
    for chassis in range(num_chassis):
        base = chassis * 8
        _add_chassis_nvlinks(topo, base)
        for local in (0, 1):
            topo.add_bidirectional(base + local, switch,
                                   NDV2_UPLINK, NDV2_UPLINK_ALPHA)
    return topo


def dgx2(num_chassis: int = 1, name: str | None = None) -> Topology:
    """DGX2: 16 GPUs per chassis behind an NVSwitch; chassis cross-wired.

    Node layout per chassis ``c``: GPUs ``c*17 .. c*17+15``, NVSwitch
    ``c*17 + 16``. Cross-chassis wiring per Figure 12: GPUs 0-7 of each
    chassis send to GPUs 8-15 of every other chassis over dedicated
    12.5 GBps unidirectional links.
    """
    if num_chassis < 1:
        raise TopologyError("need at least one chassis")
    nodes_per_chassis = 17
    topo = Topology(
        name=name or (f"DGX2x{num_chassis}" if num_chassis > 1 else "DGX2"),
        num_nodes=nodes_per_chassis * num_chassis,
        switches=frozenset(c * nodes_per_chassis + 16
                           for c in range(num_chassis)))
    for c in range(num_chassis):
        base = c * nodes_per_chassis
        nvswitch = base + 16
        for g in range(16):
            topo.add_bidirectional(base + g, nvswitch,
                                   DGX2_NVSWITCH, DGX2_NVSWITCH_ALPHA)
    for c_src in range(num_chassis):
        for c_dst in range(num_chassis):
            if c_src == c_dst:
                continue
            src_base = c_src * nodes_per_chassis
            dst_base = c_dst * nodes_per_chassis
            for i in range(8):
                topo.add_link(src_base + i, dst_base + 8 + i,
                              DGX2_CROSS, DGX2_CROSS_ALPHA)
    return topo


def gpus_of(topo: Topology) -> list[int]:
    """Convenience: the demand endpoints of any topology in this module."""
    return topo.gpus
