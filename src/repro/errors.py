"""Exception hierarchy for the TE-CCL reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TopologyError(ReproError):
    """The topology is malformed (bad link, unknown node, disconnected...)."""


class DemandError(ReproError):
    """The demand matrix is malformed or inconsistent with the topology."""


class ModelError(ReproError):
    """An optimization model was built or used incorrectly."""


class InfeasibleError(ReproError):
    """The optimization (or a heuristic) could not find a feasible solution."""

    def __init__(self, message: str, *, status: str | None = None):
        super().__init__(message)
        self.status = status


class ScheduleError(ReproError):
    """A schedule is invalid (capacity violated, chunk sent before arrival...)."""


class ExportError(ReproError):
    """A schedule could not be exported (e.g. to MSCCL XML)."""


class ServiceError(ReproError):
    """The planner service failed (timeout, uncacheable request, bad spec)."""


class FleetError(ReproError):
    """The fleet control plane failed (bad telemetry, estimator misuse...)."""


class ObservabilityError(ReproError):
    """The observability layer failed (bad sink, corrupt trace, bad metric)."""
