"""Continuous-time Gantt rendering of executed schedules.

:mod:`repro.analysis.timeline` shows the epoch grid the solver reasoned
about; this module shows what the *event executor* actually did with it —
per-link wire occupancy and per-destination delivery progress in wall-clock
seconds. Reading the two side by side is how one sees quantisation slack
(grid cell occupied, wire mostly idle) and pipelining (overlapping bars on
consecutive links of a path).

All output is plain text: the repo is terminal-first, like the tables the
paper prints.
"""

from __future__ import annotations

from repro.collectives.demand import Demand
from repro.errors import ScheduleError
from repro.simulate.events import EventReport

_BLOCKS = " ▏▎▍▌▋▊▉█"


def render_gantt(report: EventReport, *, width: int = 64,
                 links: list[tuple[int, int]] | None = None) -> str:
    """Per-link wire occupancy bars over the collective's duration.

    Each row is one link; each character covers ``finish/width`` seconds
    and is shaded by the fraction of that slice the wire was busy
    (space = idle, full block = saturated). The right column shows the
    overall busy percentage.
    """
    if not report.transmissions:
        raise ScheduleError("report has no transmissions to render")
    if width < 8:
        raise ScheduleError("width must be at least 8 columns")
    horizon = max(report.finish_time,
                  max(t.end for t in report.transmissions))
    if horizon <= 0:
        raise ScheduleError("report has a non-positive horizon")
    used = sorted({t.link for t in report.transmissions})
    if links is not None:
        wanted = set(links)
        used = [l for l in used if l in wanted]
        if not used:
            raise ScheduleError(f"none of {links} carried traffic")
    slice_width = horizon / width
    label_width = max(len(f"{i}->{j}") for i, j in used) + 2

    lines = [f"0.0s{'':{width - 8}}{horizon:.3g}s".rjust(label_width + width)]
    for link in used:
        busy = [0.0] * width
        total = 0.0
        for t in (t for t in report.transmissions if t.link == link):
            total += t.end - t.start
            first = min(width - 1, int(t.start / slice_width))
            last = min(width - 1, int(max(t.start, t.end - 1e-15)
                                      / slice_width))
            for cell in range(first, last + 1):
                lo = cell * slice_width
                hi = lo + slice_width
                overlap = min(hi, t.end) - max(lo, t.start)
                busy[cell] += max(0.0, overlap)
        bar = "".join(
            _BLOCKS[min(len(_BLOCKS) - 1,
                        int(round(b / slice_width * (len(_BLOCKS) - 1))))]
            for b in busy)
        pct = 100.0 * total / horizon
        lines.append(f"{link[0]}->{link[1]}".ljust(label_width)
                     + bar + f"  {pct:5.1f}%")
    return "\n".join(lines)


def render_progress(report: EventReport, demand: Demand, *,
                    width: int = 64) -> str:
    """Per-destination delivery progress over time (0–9 deciles).

    Each row is one destination GPU; each character shows how many of its
    demanded triples have landed by that time slice, as a decile digit
    (``9``/``#`` = everything).
    """
    if width < 8:
        raise ScheduleError("width must be at least 8 columns")
    horizon = report.finish_time
    if horizon <= 0:
        raise ScheduleError("report has a non-positive horizon")
    wants: dict[int, int] = {}
    for s, c, d in demand.triples():
        wants[d] = wants.get(d, 0) + 1
    label_width = max(len(f"gpu {d}") for d in wants) + 2
    slice_width = horizon / width

    lines = [f"0.0s{'':{width - 8}}{horizon:.3g}s".rjust(label_width + width)]
    for d in sorted(wants):
        deliveries = sorted(t for (s, c, dst), t in report.delivered.items()
                            if dst == d)
        row = []
        done = 0
        for cell in range(width):
            cutoff = (cell + 1) * slice_width
            while done < len(deliveries) and deliveries[done] <= cutoff + 1e-12:
                done += 1
            fraction = done / wants[d]
            row.append("#" if fraction >= 1.0 else str(int(fraction * 10)))
        lines.append(f"gpu {d}".ljust(label_width) + "".join(row))
    return "\n".join(lines)


def utilisation_summary(report: EventReport, *, top: int = 10) -> str:
    """The busiest links, as ``link  busy-seconds  share-of-makespan``."""
    if report.finish_time <= 0:
        raise ScheduleError("report has a non-positive horizon")
    rows = sorted(report.link_busy.items(), key=lambda kv: -kv[1])[:top]
    lines = ["link        busy(s)   of makespan"]
    for (i, j), busy in rows:
        lines.append(f"{i}->{j}".ljust(10)
                     + f"{busy:9.3g}   {100 * busy / report.finish_time:6.1f}%")
    return "\n".join(lines)
