"""Cost-model analysis and evaluation metrics."""

from repro.analysis.alpha_error import AlphaErrorPoint, alpha_blind_error
from repro.analysis.calibration import (DEFAULT_PROBE_SIZES, AlphaBetaFit,
                                        Measurement, apply_calibration,
                                        calibrate_topology,
                                        calibration_error, fit_alpha_beta,
                                        probe_link)
from repro.analysis.gantt import (render_gantt, render_progress,
                                  utilisation_summary)
from repro.analysis.costmodel import (allgather_bandwidth_lower_bound,
                                      alltoall_bandwidth_lower_bound,
                                      path_time, pipelined_path_time)
from repro.analysis.metrics import (Row, Table, human_bytes, improvement_pct,
                                    speedup_pct)
from repro.analysis.sweeps import (SweepPoint, SweepResult, chunk_size_sweep,
                                   epoch_multiplier_sweep, horizon_sweep)
from repro.analysis.timeline import occupancy_histogram, render_timeline

__all__ = [
    "alpha_blind_error", "AlphaErrorPoint",
    "path_time", "pipelined_path_time",
    "allgather_bandwidth_lower_bound", "alltoall_bandwidth_lower_bound",
    "improvement_pct", "speedup_pct", "Row", "Table", "human_bytes",
    "chunk_size_sweep", "epoch_multiplier_sweep", "horizon_sweep",
    "SweepPoint", "SweepResult",
    "render_timeline", "occupancy_histogram",
    "Measurement", "AlphaBetaFit", "fit_alpha_beta", "probe_link",
    "calibrate_topology", "apply_calibration", "calibration_error",
    "DEFAULT_PROBE_SIZES",
    "render_gantt", "render_progress", "utilisation_summary",
]
