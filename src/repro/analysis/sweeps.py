"""Parameter-sweep utilities (§5 "Important Considerations").

The paper's guidance for choosing chunk sizes and horizons is operational:
"To find the best chunk size we can sweep a range of values to find the best
one quickly", and Algorithm 1 sweeps candidate completion times. These
helpers package those loops behind one call each, returning full sweep
records so callers (and the benches) can plot trade-off curves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.solve import Method, SynthesisResult, synthesize
from repro.errors import InfeasibleError, ModelError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the knob value and what it bought."""

    value: float
    finish_time: float
    solve_time: float
    num_epochs: int
    infeasible: bool = False


@dataclass
class SweepResult:
    """All samples plus the argmin by finish time."""

    points: list[SweepPoint]

    @property
    def best(self) -> SweepPoint:
        feasible = [p for p in self.points if not p.infeasible]
        if not feasible:
            raise InfeasibleError("every sweep point was infeasible")
        return min(feasible, key=lambda p: (p.finish_time, p.value))

    def feasible_values(self) -> list[float]:
        return [p.value for p in self.points if not p.infeasible]


def chunk_size_sweep(topology: Topology, demand: Demand,
                     base_config: TecclConfig,
                     chunk_sizes: list[float], *,
                     method: Method = Method.AUTO) -> SweepResult:
    """Re-synthesize the collective across candidate chunk sizes.

    Smaller chunks give the solver finer schedules but more variables (§5);
    the returned records expose both sides of that trade.
    """
    if not chunk_sizes:
        raise ModelError("no chunk sizes to sweep")
    points = []
    for size in chunk_sizes:
        config = replace(base_config, chunk_bytes=size, num_epochs=None)
        points.append(_run(topology, demand, config, method, value=size))
    return SweepResult(points=points)


def epoch_multiplier_sweep(topology: Topology, demand: Demand,
                           base_config: TecclConfig,
                           multipliers: list[float], *,
                           method: Method = Method.AUTO) -> SweepResult:
    """Sweep the EM knob of Table 4: grid coarseness vs schedule quality."""
    if not multipliers:
        raise ModelError("no multipliers to sweep")
    points = []
    for em in multipliers:
        config = replace(base_config, epoch_multiplier=em, num_epochs=None)
        points.append(_run(topology, demand, config, method, value=em))
    return SweepResult(points=points)


def horizon_sweep(topology: Topology, demand: Demand,
                  base_config: TecclConfig, horizons: list[int], *,
                  method: Method = Method.AUTO) -> SweepResult:
    """Solve at explicit horizons K (the manual version of Algorithm 1).

    Infeasible horizons are recorded rather than raised, so the caller can
    see exactly where feasibility begins.
    """
    if not horizons:
        raise ModelError("no horizons to sweep")
    points = []
    for k in horizons:
        config = replace(base_config, num_epochs=int(k))
        points.append(_run(topology, demand, config, method, value=float(k)))
    return SweepResult(points=points)


def _run(topology: Topology, demand: Demand, config: TecclConfig,
         method: Method, value: float) -> SweepPoint:
    try:
        result: SynthesisResult = synthesize(topology, demand, config,
                                             method=method)
    except InfeasibleError:
        return SweepPoint(value=value, finish_time=float("inf"),
                          solve_time=0.0, num_epochs=0, infeasible=True)
    return SweepPoint(value=value, finish_time=result.finish_time,
                      solve_time=result.solve_time,
                      num_epochs=result.plan.num_epochs)
