"""Comparison metrics and table formatting for the evaluation harness.

Every benchmark prints rows through these helpers so the output matches the
paper's tables: epoch duration (ED), collective time (CT), solver time (ST),
algorithmic bandwidth (AB), and the percentage improvements of Figures 4-6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError


def improvement_pct(ours: float, theirs: float) -> float:
    """The paper's headline metric: 100·(TECCL − TACCL)/TACCL.

    For bandwidth, positive means TE-CCL is better; for solver time the
    benches negate the ratio so positive always reads "TE-CCL wins".
    """
    if theirs == 0:
        raise ModelError("cannot compute improvement against zero")
    return 100.0 * (ours - theirs) / theirs


def speedup_pct(ours_time: float, theirs_time: float) -> float:
    """100·(theirs − ours)/ours: Figure 5's 'speedup in solver time (%)'."""
    if ours_time <= 0:
        raise ModelError("our time must be positive")
    return 100.0 * (theirs_time - ours_time) / ours_time


@dataclass
class Row:
    """One experiment row; renders like the paper's tables."""

    label: str
    values: dict[str, float | str | None] = field(default_factory=dict)

    def formatted(self, columns: list[str]) -> str:
        cells = [f"{self.label:<26}"]
        for col in columns:
            value = self.values.get(col)
            if value is None:
                cells.append(f"{'X':>12}")
            elif isinstance(value, str):
                cells.append(f"{value:>12}")
            else:
                cells.append(f"{value:>12.4g}")
        return " ".join(cells)


@dataclass
class Table:
    """A printable experiment table with a paper reference in the header."""

    title: str
    columns: list[str]
    rows: list[Row] = field(default_factory=list)

    def add(self, label: str, **values) -> Row:
        row = Row(label=label, values=values)
        self.rows.append(row)
        return row

    def render(self) -> str:
        header = (f"{'scenario':<26} "
                  + " ".join(f"{c:>12}" for c in self.columns))
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        lines.extend(row.formatted(self.columns) for row in self.rows)
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")  # lint: allow-print


def human_bytes(num: float) -> str:
    """1073741824 → '1G' (the paper's output-buffer axis labels)."""
    for unit, scale in (("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if num >= scale:
            value = num / scale
            return f"{value:.0f}{unit}" if value == int(value) \
                else f"{value:.3g}{unit}"
    return f"{num:.0f}B"
