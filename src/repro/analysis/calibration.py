"""α–β calibration: fitting the cost model from timing measurements.

TE-CCL "takes the topology and the values for α and β as input. We do not
provide an independent method for computing these values" (§5). This module
is that missing method for users of this package: probe a link with
transfers of several sizes, least-squares fit ``t = α + β·S``, and write the
fitted parameters back into a topology. A synthetic measurement generator
stands in for the hardware probe (per the substitution rules in DESIGN.md),
so the full calibrate → synthesize loop is exercisable offline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.topology.topology import Link, Topology


@dataclass(frozen=True)
class Measurement:
    """One timed transfer: ``size_bytes`` took ``seconds`` on the link."""

    size_bytes: float
    seconds: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ModelError("measurement size must be positive")
        if self.seconds <= 0:
            raise ModelError("measurement time must be positive")


@dataclass(frozen=True)
class AlphaBetaFit:
    """A fitted α–β model for one link.

    Attributes:
        alpha: fixed latency, seconds (clamped at 0 — a negative intercept
            is measurement noise, not physics).
        beta: seconds per byte.
        r_squared: goodness of fit on the input measurements.
    """

    alpha: float
    beta: float
    r_squared: float

    @property
    def capacity(self) -> float:
        """Bytes/second (1/β), the units :class:`Link` carries."""
        if self.beta <= 0:
            raise ModelError("fit has non-positive beta; no finite capacity")
        return 1.0 / self.beta

    def predict(self, size_bytes: float) -> float:
        return self.alpha + self.beta * size_bytes


def fit_alpha_beta(measurements: list[Measurement]) -> AlphaBetaFit:
    """Ordinary least squares of ``t = α + β·S``.

    Requires at least two distinct transfer sizes (the model has two
    parameters). The α estimate is clamped at zero; β must come out
    positive or the data is inconsistent with a transfer-time model.
    """
    if len(measurements) < 2:
        raise ModelError("need at least 2 measurements to fit α and β")
    sizes = np.array([m.size_bytes for m in measurements])
    times = np.array([m.seconds for m in measurements])
    if np.unique(sizes).size < 2:
        raise ModelError("need at least 2 distinct sizes to fit α and β")
    design = np.column_stack([np.ones_like(sizes), sizes])
    (alpha, beta), *_ = np.linalg.lstsq(design, times, rcond=None)
    if beta <= 0:
        raise ModelError(
            f"fitted β = {beta:.3g} ≤ 0; transfer times do not grow with "
            "size — the measurements are not an α–β link")
    predicted = design @ np.array([alpha, beta])
    ss_res = float(np.sum((times - predicted) ** 2))
    ss_tot = float(np.sum((times - times.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return AlphaBetaFit(alpha=max(0.0, float(alpha)), beta=float(beta),
                        r_squared=r_squared)


def probe_link(link: Link, sizes: list[float], *, noise: float = 0.0,
               seed: int = 0) -> list[Measurement]:
    """Synthetic hardware probe: time ``sizes`` transfers on one link.

    Gaussian multiplicative noise with standard deviation ``noise`` models
    measurement jitter; times are floored at a nanosecond so noise cannot
    produce non-physical values.
    """
    if noise < 0:
        raise ModelError("noise must be non-negative")
    rng = random.Random(seed)
    measurements = []
    for size in sizes:
        truth = link.transfer_time(size)
        jitter = rng.gauss(1.0, noise) if noise else 1.0
        measurements.append(Measurement(
            size_bytes=size, seconds=max(1e-9, truth * jitter)))
    return measurements


DEFAULT_PROBE_SIZES = [1e3, 4e3, 16e3, 64e3, 256e3, 1e6, 4e6]
"""The probe ladder: the same decade sweep as the paper's Figure 2."""


def calibrate_topology(topology: Topology, *,
                       sizes: list[float] | None = None,
                       noise: float = 0.0, seed: int = 0,
                       ) -> dict[tuple[int, int], AlphaBetaFit]:
    """Probe and fit every link; returns fits keyed like ``topology.links``."""
    sizes = sizes if sizes is not None else list(DEFAULT_PROBE_SIZES)
    fits = {}
    for key, link in sorted(topology.links.items()):
        measurements = probe_link(link, sizes, noise=noise,
                                  seed=seed + hash(key) % 65536)
        fits[key] = fit_alpha_beta(measurements)
    return fits


def apply_calibration(topology: Topology,
                      fits: dict[tuple[int, int], AlphaBetaFit],
                      name: str | None = None) -> Topology:
    """A topology whose link parameters come from the fits.

    Links without a fit keep their declared parameters (partial
    calibration is normal: probe what you can reach).
    """
    out = Topology(name=name or f"{topology.name}-calibrated",
                   num_nodes=topology.num_nodes,
                   switches=topology.switches)
    for (src, dst), link in topology.links.items():
        fit = fits.get((src, dst))
        if fit is None:
            out.links[(src, dst)] = link
        else:
            out.links[(src, dst)] = Link(src, dst, capacity=fit.capacity,
                                         alpha=fit.alpha)
    return out


def calibration_error(topology: Topology,
                      fits: dict[tuple[int, int], AlphaBetaFit],
                      ) -> dict[tuple[int, int], tuple[float, float]]:
    """Per-link relative error of the fits: ``(α error, capacity error)``.

    Only meaningful against synthetic probes (where ground truth exists);
    used by tests and the calibration example to show the loop closes.
    """
    errors = {}
    for key, fit in fits.items():
        link = topology.link(*key)
        alpha_err = (abs(fit.alpha - link.alpha) / link.alpha
                     if link.alpha > 0 else abs(fit.alpha))
        cap_err = abs(fit.capacity - link.capacity) / link.capacity
        errors[key] = (alpha_err, cap_err)
    return errors
