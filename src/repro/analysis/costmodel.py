"""α–β cost-model helpers (§2.1) and theoretical reference bounds."""

from __future__ import annotations

from repro.errors import ModelError
from repro.topology.topology import Topology


def path_time(topology: Topology, path: list[int], size_bytes: float) -> float:
    """Naïve path delay: the per-hop α + β·S summed (store-and-forward)."""
    if len(path) < 2:
        return 0.0
    return sum(topology.link(i, j).transfer_time(size_bytes)
               for i, j in zip(path, path[1:]))


def pipelined_path_time(topology: Topology, path: list[int],
                        size_bytes: float, chunk_bytes: float) -> float:
    """Path delay when the transfer is chunked and pipelined.

    Total ≈ Σ α + bottleneck·S + (hops−1)·chunk on bottleneck: the quantity
    TE-CCL's epoch model converges to as chunks shrink, and the reason it
    beats barrier schedulers on multi-chunk transfers (Table 3).
    """
    if len(path) < 2:
        return 0.0
    if chunk_bytes <= 0 or chunk_bytes > size_bytes:
        raise ModelError("chunk size must be in (0, size]")
    links = [topology.link(i, j) for i, j in zip(path, path[1:])]
    alphas = sum(l.alpha for l in links)
    slowest = max(l.beta for l in links)
    return alphas + slowest * size_bytes + (len(links) - 1) * slowest * chunk_bytes


def allgather_bandwidth_lower_bound(topology: Topology,
                                    per_gpu_bytes: float) -> float:
    """A capacity lower bound on ALLGATHER time: the tightest node cut.

    Every GPU must *receive* (N−1)·S bytes, so its total ingress capacity
    bounds the finish time from below. Used as a sanity anchor in tests and
    benches (no schedule may beat it).
    """
    gpus = topology.gpus
    worst = 0.0
    for g in gpus:
        ingress = sum(l.capacity for l in topology.in_edges(g))
        if ingress <= 0:
            raise ModelError(f"GPU {g} has no ingress capacity")
        worst = max(worst, (len(gpus) - 1) * per_gpu_bytes / ingress)
    return worst


def alltoall_bandwidth_lower_bound(topology: Topology,
                                   per_pair_bytes: float) -> float:
    """Same node-cut bound for ALLTOALL (each GPU receives (N−1)·S)."""
    return allgather_bandwidth_lower_bound(topology, per_pair_bytes)
