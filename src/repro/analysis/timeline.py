"""ASCII schedule timelines: per-link occupancy, epoch by epoch.

Debugging a synthesized collective means answering "what is link (i, j)
doing at epoch k?" — this module renders exactly that, in the terminal,
for any integral :class:`~repro.core.schedule.Schedule`:

    link      0    1    2    3
    0->1    0.0  0.1    .    .
    1->2      .  0.0  0.1    .

Each cell shows the (source.chunk) transmitting on the link in that epoch
(``.`` = idle, ``*`` = more than one chunk).
"""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.errors import ScheduleError


def render_timeline(schedule: Schedule, *, max_epochs: int = 64,
                    links: list[tuple[int, int]] | None = None) -> str:
    """Render the schedule as a per-link/per-epoch grid.

    Args:
        max_epochs: truncate very long schedules (a trailing marker shows
            how many epochs were cut).
        links: restrict to specific links (default: every used link).
    """
    if not schedule.sends:
        raise ScheduleError("cannot render an empty schedule")
    used = sorted(schedule.links_used())
    if links is not None:
        missing = [l for l in links if l not in set(used)]
        used = [l for l in used if l in set(links)]
        if not used:
            raise ScheduleError(f"none of {links} appear in the schedule "
                                f"(missing: {missing})")
    last_epoch = schedule.finish_epoch
    cut = max(0, last_epoch + 1 - max_epochs)
    epochs = range(min(last_epoch + 1, max_epochs))

    cells: dict[tuple[tuple[int, int], int], list[str]] = {}
    for send in schedule.sends:
        if send.epoch >= max_epochs or send.link not in set(used):
            continue
        cells.setdefault((send.link, send.epoch), []).append(
            f"{send.source}.{send.chunk}")

    link_width = max(len(f"{i}->{j}") for i, j in used) + 2
    cell_width = max([5] + [len(v[0]) + 1
                            for v in cells.values() if len(v) == 1])
    header = "link".ljust(link_width) + "".join(
        str(k).rjust(cell_width) for k in epochs)
    lines = [header]
    for link in used:
        row = f"{link[0]}->{link[1]}".ljust(link_width)
        for k in epochs:
            content = cells.get((link, k))
            if content is None:
                row += ".".rjust(cell_width)
            elif len(content) == 1:
                row += content[0].rjust(cell_width)
            else:
                row += f"*{len(content)}".rjust(cell_width)
        lines.append(row)
    if cut:
        lines.append(f"... {cut} more epoch(s) truncated")
    return "\n".join(lines)


def occupancy_histogram(schedule: Schedule) -> dict[tuple[int, int], int]:
    """Chunks carried per link over the whole schedule (load balance view)."""
    counts: dict[tuple[int, int], int] = {}
    for send in schedule.sends:
        counts[send.link] = counts.get(send.link, 0) + 1
    return counts
