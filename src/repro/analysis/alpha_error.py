"""Figure 2: how badly an α-blind model mis-estimates algorithmic bandwidth.

Methodology (the figure's caption): synthesize a schedule *without* modelling
α (solve on the same fabric with every link's α zeroed), then compare the
bandwidth that schedule claims against the bandwidth it actually achieves
once each hop pays its real α. The error explodes for small transfers, where
α dominates β·S.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.milp import solve_milp
from repro.core.schedule import Schedule
from repro.errors import ModelError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class AlphaErrorPoint:
    """One transfer size on the Figure 2 curve."""

    transfer_bytes: float
    estimated_finish: float
    actual_finish: float

    @property
    def relative_error_pct(self) -> float:
        """100·(bw_est − bw_actual)/bw_actual = 100·(t_act − t_est)/t_est."""
        if self.estimated_finish <= 0:
            raise ModelError("estimated finish must be positive")
        return 100.0 * (self.actual_finish - self.estimated_finish) \
            / self.estimated_finish


def alpha_blind_error(topology: Topology, demand: Demand,
                      config: TecclConfig) -> AlphaErrorPoint:
    """Solve α-blind, then re-cost the same schedule with the true α."""
    blind_topo = topology.with_zero_alpha()
    outcome = solve_milp(blind_topo, demand, config)
    schedule = outcome.schedule
    estimated = schedule.finish_time(blind_topo)
    actual = _recost_with_alpha(schedule, topology)
    return AlphaErrorPoint(
        transfer_bytes=config.chunk_bytes,
        estimated_finish=estimated, actual_finish=actual)


def _recost_with_alpha(schedule: Schedule, topology: Topology) -> float:
    """Execute the α-blind schedule on the real fabric.

    Epoch k's sends cannot start before every prior hop's α-delayed arrival,
    so each send is delayed by the accumulated α along its chunk's provider
    chain; we propagate per-(chunk, node) availability forward in epoch
    order — the same bookkeeping the simulator does, reduced to timing.
    """
    available: dict[tuple[int, int, int], float] = {}
    for send in schedule.sends:
        available.setdefault((send.source, send.chunk, send.src), 0.0)
    finish = 0.0
    for send in sorted(schedule.sends):
        link = topology.link(send.src, send.dst)
        start = max(send.epoch * schedule.tau,
                    available.get((send.source, send.chunk, send.src), 0.0))
        arrival = start + link.transfer_time(schedule.chunk_bytes)
        key = (send.source, send.chunk, send.dst)
        if key not in available or arrival < available[key]:
            available[key] = arrival
        finish = max(finish, arrival)
    return finish
