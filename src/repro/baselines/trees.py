"""Tree collectives: binomial and double-binary-tree baselines.

These are the hand-designed algorithms production libraries (MPI, NCCL) fall
back to when no synthesizer is available. They bracket TE-CCL from the other
side than the ring (:mod:`repro.baselines.ring`): trees minimise the number
of α-paying steps (log₂ N for a binomial broadcast) at the cost of leaving
most links idle in every step, while rings maximise bandwidth at the cost of
N−1 α-paying steps. TE-CCL's MILP subsumes both — the point of comparing
against them (§2.1, §7).

Logical tree edges are routed over the physical fabric along α+β shortest
paths and booked through the shared :class:`~repro.baselines.common
.GreedyScheduler`, so the resulting schedules validate under the same
simulator as every other synthesizer in this package.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import GreedyScheduler
from repro.baselines.shortest_path import shortest_path
from repro.core.config import TecclConfig
from repro.core.epochs import build_epoch_plan, path_based_epoch_bound
from repro.core.schedule import Schedule
from repro.errors import DemandError, TopologyError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class LogicalTree:
    """A rooted logical tree over GPU ids.

    ``children[u]`` lists u's children in send order. Physical routing is
    applied later — a logical edge may cross several fabric links.
    """

    root: int
    children: dict[int, tuple[int, ...]]

    def __post_init__(self) -> None:
        seen = self._collect(self.root, set())
        declared = {self.root} | {
            c for kids in self.children.values() for c in kids}
        if seen != declared:
            raise TopologyError("logical tree has unreachable members")

    def _collect(self, node: int, seen: set[int]) -> set[int]:
        if node in seen:
            raise TopologyError(f"cycle through node {node} in logical tree")
        seen.add(node)
        for child in self.children.get(node, ()):
            self._collect(child, seen)
        return seen

    @property
    def nodes(self) -> list[int]:
        return sorted(self._collect(self.root, set()))

    def edges_bfs(self) -> list[tuple[int, int]]:
        """Logical (parent, child) edges in BFS order — the send order."""
        order: list[tuple[int, int]] = []
        frontier = [self.root]
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                for child in self.children.get(node, ()):
                    order.append((node, child))
                    nxt.append(child)
            frontier = nxt
        return order

    def depth(self) -> int:
        def rec(node: int) -> int:
            kids = self.children.get(node, ())
            return 1 + max((rec(c) for c in kids), default=-1)

        return rec(self.root)

    def leaves(self) -> list[int]:
        return sorted(n for n in self.nodes if not self.children.get(n))


def binomial_tree(root: int, members: list[int]) -> LogicalTree:
    """The ⌈log₂ N⌉-step binomial broadcast tree.

    In step t every node that already holds the data sends to one new node —
    the doubling pattern behind MPI_Bcast. Member order fixes which ranks
    pair up; pass fabric-aware orders to keep logical edges short.
    """
    if root not in members:
        raise DemandError(f"root {root} is not among the members")
    if len(set(members)) != len(members):
        raise DemandError("duplicate members")
    order = [root] + [m for m in members if m != root]
    children: dict[int, list[int]] = {m: [] for m in order}
    have = 1
    while have < len(order):
        senders = order[:have]
        for i, sender in enumerate(senders):
            target = have + i
            if target >= len(order):
                break
            children[sender].append(order[target])
        have = min(len(order), 2 * have)
    return LogicalTree(root=root,
                       children={u: tuple(v) for u, v in children.items()})


def chain_tree(root: int, members: list[int]) -> LogicalTree:
    """A degenerate pipeline tree (each node has one child) — the chain
    baseline NCCL uses for very large buffers, maximally pipelinable."""
    if root not in members:
        raise DemandError(f"root {root} is not among the members")
    order = [root] + [m for m in members if m != root]
    children = {order[i]: (order[i + 1],) for i in range(len(order) - 1)}
    children[order[-1]] = ()
    return LogicalTree(root=root, children=children)


def _btree_links(n: int, rank: int) -> tuple[int | None, list[int]]:
    """NCCL's in-order binary tree over ranks 0..n−1 (``ncclGetBtree``).

    Returns (parent, children) for one rank. Structural facts the
    double-tree trick relies on: rank 0 is the root with a single child,
    odd ranks are leaves, even ranks are internal.
    """
    if rank == 0:
        if n == 1:
            return None, []
        bit = 1
        while bit < n:
            bit <<= 1
        return None, [bit >> 1]
    bit = rank & -rank
    parent = (rank ^ bit) | (bit << 1)
    if parent >= n:
        parent = rank ^ bit
    lowbit = bit >> 1
    children = []
    if lowbit:
        children.append(rank - lowbit)
        down1 = rank + lowbit
        while lowbit and down1 >= n:
            lowbit >>= 1
            down1 = rank + lowbit
        if lowbit:
            children.append(down1)
    return parent, children


def _btree(n: int, position_of: list[int]) -> LogicalTree:
    """The NCCL btree over positions, relabelled to member ids."""
    children: dict[int, tuple[int, ...]] = {}
    for pos in range(n):
        _, kids = _btree_links(n, pos)
        children[position_of[pos]] = tuple(position_of[k] for k in kids)
    return LogicalTree(root=position_of[0], children=children)


def double_binary_trees(members: list[int]) -> tuple[LogicalTree, LogicalTree]:
    """NCCL-style complementary binary trees (``ncclGetDtree``).

    Tree A is the in-order binary tree over the member order (odd positions
    are leaves). Tree B shifts every rank by one (even count) or mirrors the
    order (odd count). With an even member count every rank is a leaf in
    exactly one tree, so streaming half the data down each tree uses every
    rank's send bandwidth — the double-binary-tree trick.
    """
    if len(members) < 2:
        raise DemandError("double binary trees need at least 2 members")
    if len(set(members)) != len(members):
        raise DemandError("duplicate members")
    members = list(members)
    n = len(members)
    tree_a = _btree(n, members)
    if n % 2 == 0:
        shifted = members[1:] + members[:1]
        tree_b = _btree(n, shifted)
    else:
        tree_b = _btree(n, list(reversed(members)))
    return tree_a, tree_b


# ----------------------------------------------------------------------
# physical scheduling of logical trees
# ----------------------------------------------------------------------
def _horizon(topology: Topology, config: TecclConfig,
             factor: float) -> tuple[object, int]:
    from repro.collectives.patterns import allgather

    probe = build_epoch_plan(topology, config, num_epochs=1)
    bound = path_based_epoch_bound(
        topology, allgather(topology.gpus, 1), probe)
    max_epochs = max(8, int(bound * factor))
    return build_epoch_plan(topology, config, num_epochs=max_epochs), max_epochs


def schedule_tree_broadcast(topology: Topology, config: TecclConfig,
                            tree: LogicalTree, num_chunks: int = 1,
                            scheduler: GreedyScheduler | None = None,
                            source: int | None = None) -> Schedule:
    """Stream ``num_chunks`` chunks of the tree root down the tree.

    Sends are booked edge-major in BFS order so chunk c+1 pipelines behind
    chunk c on every logical edge. When a shared ``scheduler`` is passed
    (multi-tree packing) the returned schedule covers everything booked on
    it so far, not just this tree.
    """
    if num_chunks < 1:
        raise DemandError("num_chunks must be at least 1")
    if scheduler is None:
        plan, max_epochs = _horizon(topology, config,
                                    factor=4.0 * num_chunks)
        scheduler = GreedyScheduler(topology, plan, max_epochs)
    origin = tree.root if source is None else source
    for c in range(num_chunks):
        scheduler.hold(origin, c, tree.root, 0)
    paths = {(u, v): shortest_path(topology, u, v, config.chunk_bytes)
             for u, v in tree.edges_bfs()}
    for u, v in tree.edges_bfs():
        for c in range(num_chunks):
            scheduler.send_path(origin, c, paths[(u, v)])
    return scheduler.to_schedule()


def binomial_broadcast(topology: Topology, config: TecclConfig, root: int,
                       num_chunks: int = 1) -> Schedule:
    """Broadcast from ``root`` to every GPU via a binomial tree."""
    tree = binomial_tree(root, topology.gpus)
    return schedule_tree_broadcast(topology, config, tree, num_chunks)


def double_tree_broadcast(topology: Topology, config: TecclConfig, root: int,
                          num_chunks: int = 2) -> Schedule:
    """Broadcast splitting chunks across two complementary binary trees.

    Chunks are re-rooted: each tree's stream enters at its own root, fed by
    a relay hop from the true source when they differ (how NCCL grafts the
    rank-0 source onto both trees).
    """
    if num_chunks < 2:
        raise DemandError("double-tree broadcast needs at least 2 chunks")
    tree_a, tree_b = double_binary_trees(topology.gpus)
    plan, max_epochs = _horizon(topology, config, factor=4.0 * num_chunks)
    scheduler = GreedyScheduler(topology, plan, max_epochs)
    half = num_chunks // 2
    assignment = [(tree_a, range(0, half)), (tree_b, range(half, num_chunks))]
    for tree, chunks in assignment:
        for c in chunks:
            scheduler.hold(root, c, root, 0)
            if tree.root != root:
                scheduler.send_path(
                    root, c,
                    shortest_path(topology, root, tree.root,
                                  config.chunk_bytes))
        paths = {(u, v): shortest_path(topology, u, v, config.chunk_bytes)
                 for u, v in tree.edges_bfs()}
        for u, v in tree.edges_bfs():
            for c in chunks:
                if v == root:
                    continue  # the true source already has every chunk
                scheduler.send_path(root, c, paths[(u, v)])
    return scheduler.to_schedule()


def tree_allgather(topology: Topology, config: TecclConfig,
                   chunks_per_gpu: int = 1) -> Schedule:
    """ALLGATHER as N concurrent binomial broadcasts on a shared ledger.

    Each source broadcasts down its own binomial tree; contention between
    trees is resolved greedily, which is exactly the coordination failure
    TE-CCL's global optimisation avoids.
    """
    gpus = topology.gpus
    if len(gpus) < 2:
        raise DemandError("allgather needs at least 2 GPUs")
    plan, max_epochs = _horizon(
        topology, config, factor=6.0 * chunks_per_gpu * len(gpus))
    scheduler = GreedyScheduler(topology, plan, max_epochs)
    for s in gpus:
        # Rotate the member order so tree shapes differ per source and do
        # not all hammer the same links in the same step.
        rotation = gpus[gpus.index(s):] + gpus[:gpus.index(s)]
        tree = binomial_tree(s, rotation)
        for c in range(chunks_per_gpu):
            scheduler.hold(s, c, s, 0)
        paths = {(u, v): shortest_path(topology, u, v, config.chunk_bytes)
                 for u, v in tree.edges_bfs()}
        for u, v in tree.edges_bfs():
            for c in range(chunks_per_gpu):
                scheduler.send_path(s, c, paths[(u, v)])
    return scheduler.to_schedule()
