"""Shared machinery for baseline schedulers: greedy link-slot allocation.

Every heuristic baseline (shortest-path-first, the TACCL-like two-phase
scheduler, ring schedules) books link capacity epoch by epoch against the
same :class:`~repro.core.epochs.EpochPlan` discretisation TE-CCL uses, so
their schedules validate under the same simulator and their finish times are
directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import TecclConfig
from repro.core.epochs import EpochPlan, plan_with_tau
from repro.core.schedule import Schedule, Send
from repro.errors import InfeasibleError
from repro.topology.topology import Topology

_EPS = 1e-9


def replay_plan(topology: Topology, config: TecclConfig,
                schedule: Schedule) -> EpochPlan:
    """Reconstruct the epoch plan a baseline schedule was booked against.

    Baselines return bare :class:`~repro.core.schedule.Schedule` objects but
    carry τ; capacities, occupancy windows, and delays are pure functions of
    (topology, chunk size, τ), so the conformance engine can rebuild the
    exact discretisation the :class:`LinkLedger` enforced and replay the
    schedule against it.
    """
    return plan_with_tau(topology, config.chunk_bytes, schedule.tau,
                         schedule.num_epochs)


@dataclass
class LinkLedger:
    """Per-link, per-epoch chunk bookings under the plan's capacity rules."""

    topology: Topology
    plan: EpochPlan
    max_epochs: int
    usage: dict[tuple[int, int, int], int] = field(default_factory=dict)

    def _limit(self, link: tuple[int, int]) -> tuple[int, int]:
        """(window, chunks per window) for the link."""
        kappa = self.plan.occupancy[link]
        cap = self.plan.cap_chunks[link]
        if kappa == 1:
            return 1, max(0, math.floor(cap + _EPS))
        return kappa, max(1, math.floor(kappa * cap + _EPS))

    def fits(self, src: int, dst: int, epoch: int) -> bool:
        window, limit = self._limit((src, dst))
        lo = max(0, epoch - window + 1)
        for start in range(lo, epoch + 1):
            used = sum(self.usage.get((src, dst, k), 0)
                       for k in range(start, start + window))
            if used + 1 > limit:
                return False
        return True

    def earliest(self, src: int, dst: int, ready_epoch: int) -> int:
        """First epoch ≥ ready_epoch with a free slot on (src, dst)."""
        epoch = max(0, ready_epoch)
        while epoch < self.max_epochs:
            if self.fits(src, dst, epoch):
                return epoch
            epoch += 1
        raise InfeasibleError(
            f"no capacity left on link ({src},{dst}) within "
            f"{self.max_epochs} epochs", status="horizon")

    def reserve(self, src: int, dst: int, epoch: int) -> None:
        self.usage[(src, dst, epoch)] = self.usage.get(
            (src, dst, epoch), 0) + 1


@dataclass
class GreedyScheduler:
    """Walks chunk paths hop by hop, booking the earliest feasible slots.

    Handles the zero-buffer switch rule: a hop *into* a switch is only booked
    together with the hop *out of* it, in consecutive epochs, retrying later
    start epochs until both slots are free.
    """

    topology: Topology
    plan: EpochPlan
    max_epochs: int

    def __post_init__(self) -> None:
        self.ledger = LinkLedger(self.topology, self.plan, self.max_epochs)
        self.sends: list[Send] = []
        #: (source, chunk, node) -> earliest buffer epoch the chunk is held
        self.available: dict[tuple[int, int, int], int] = {}

    def hold(self, source: int, chunk: int, node: int, epoch: int = 0) -> None:
        key = (source, chunk, node)
        if key not in self.available or epoch < self.available[key]:
            self.available[key] = epoch

    def ready_epoch(self, source: int, chunk: int, node: int) -> int | None:
        return self.available.get((source, chunk, node))

    def send_path(self, source: int, chunk: int, path: list[int]) -> int:
        """Book the whole path; returns the buffer epoch at the final node.

        The path starts at a node that already holds the chunk. Hops through
        switches are booked atomically with their exit hop.
        """
        ready = self.available.get((source, chunk, path[0]))
        if ready is None:
            raise InfeasibleError(
                f"chunk ({source},{chunk}) not present at path start "
                f"{path[0]}")
        position = 0
        while position < len(path) - 1:
            here, there = path[position], path[position + 1]
            if self.topology.is_switch(there):
                if position + 2 >= len(path):
                    raise InfeasibleError(
                        f"path ends at switch {there}; switches cannot sink")
                beyond = path[position + 2]
                ready = self._book_through_switch(
                    source, chunk, here, there, beyond, ready)
                position += 2
            else:
                ready = self._book_hop(source, chunk, here, there, ready)
                position += 1
        return ready

    def _book_hop(self, source: int, chunk: int, src: int, dst: int,
                  ready: int) -> int:
        epoch = self.ledger.earliest(src, dst, ready)
        self.ledger.reserve(src, dst, epoch)
        self.sends.append(Send(epoch=epoch, source=source, chunk=chunk,
                               src=src, dst=dst))
        arrival = epoch + self.plan.arrival_offset(src, dst) + 1
        self.hold(source, chunk, dst, arrival)
        return arrival

    def _book_through_switch(self, source: int, chunk: int, src: int,
                             switch: int, dst: int, ready: int) -> int:
        """Book (src→switch, switch→dst) with the forced one-epoch relay."""
        epoch_in = max(0, ready)
        while epoch_in < self.max_epochs:
            epoch_in = self.ledger.earliest(src, switch, epoch_in)
            relay = epoch_in + self.plan.arrival_offset(src, switch) + 1
            if relay < self.max_epochs and self.ledger.fits(switch, dst, relay):
                self.ledger.reserve(src, switch, epoch_in)
                self.ledger.reserve(switch, dst, relay)
                self.sends.append(Send(epoch=epoch_in, source=source,
                                       chunk=chunk, src=src, dst=switch))
                self.sends.append(Send(epoch=relay, source=source,
                                       chunk=chunk, src=switch, dst=dst))
                arrival = relay + self.plan.arrival_offset(switch, dst) + 1
                self.hold(source, chunk, dst, arrival)
                return arrival
            epoch_in += 1
        raise InfeasibleError(
            f"cannot relay through switch {switch} within "
            f"{self.max_epochs} epochs", status="horizon")

    def to_schedule(self) -> Schedule:
        num_epochs = max((s.epoch for s in self.sends), default=0) + 1
        return Schedule(sends=sorted(self.sends), tau=self.plan.tau,
                        chunk_bytes=self.plan.chunk_bytes,
                        num_epochs=num_epochs)
