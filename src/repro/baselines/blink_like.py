"""Blink-style spanning-tree packing (the [29] baseline, §7).

Blink builds collectives by *packing directed spanning trees* (arborescences)
rooted at the broadcast source and streaming data down all of them
concurrently, splitting the buffer across trees in proportion to each tree's
bottleneck bandwidth. It is bandwidth-efficient on heterogeneous fabrics but
— as the paper notes — models neither α-delay nor store-and-forward, which
is where TE-CCL wins on small transfers.

The packing here is the greedy arc-disjoint variant: Prim-style growth over
residual link budgets, repeated until no further spanning arborescence
exists. Switches may appear inside a tree as relays; they are compressed
away before scheduling so the zero-buffer switch rule is honoured by the
shared :class:`~repro.baselines.common.GreedyScheduler`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.baselines.common import GreedyScheduler
from repro.baselines.trees import LogicalTree, _horizon
from repro.core.config import TecclConfig
from repro.core.schedule import Schedule
from repro.errors import DemandError, TopologyError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class Arborescence:
    """One packed spanning tree over the fabric (switches included).

    ``parent`` maps every covered node except the root to the node it
    receives from; ``rate`` is the bottleneck capacity (bytes/s) along the
    tree's arcs, Blink's proportional-split weight.
    """

    root: int
    parent: dict[int, int]
    rate: float

    @property
    def arcs(self) -> list[tuple[int, int]]:
        return sorted((p, child) for child, p in self.parent.items())

    def covered_gpus(self, topology: Topology) -> set[int]:
        nodes = {self.root} | set(self.parent)
        return {n for n in nodes if not topology.is_switch(n)}

    def to_logical(self, topology: Topology,
                   ) -> tuple[LogicalTree, dict[tuple[int, int], list[int]]]:
        """Compress switch relays into GPU-level logical edges.

        Returns the GPU-only logical tree plus, per logical edge, the
        physical node path (which may thread one or more switches).
        """
        children: dict[int, list[int]] = {}
        for child, parent in self.parent.items():
            children.setdefault(parent, []).append(child)

        logical_children: dict[int, list[int]] = {self.root: []}
        paths: dict[tuple[int, int], list[int]] = {}

        def descend(gpu_anchor: int, node: int, trail: list[int]) -> None:
            for nxt in sorted(children.get(node, ())):
                if topology.is_switch(nxt):
                    descend(gpu_anchor, nxt, trail + [nxt])
                else:
                    logical_children.setdefault(gpu_anchor, []).append(nxt)
                    logical_children.setdefault(nxt, [])
                    paths[(gpu_anchor, nxt)] = trail + [nxt]
                    descend(nxt, nxt, [nxt])

        if topology.is_switch(self.root):
            raise TopologyError("arborescence rooted at a switch")
        descend(self.root, self.root, [self.root])
        tree = LogicalTree(
            root=self.root,
            children={u: tuple(v) for u, v in logical_children.items()})
        return tree, paths


def _grow_arborescence(topology: Topology, root: int,
                       residual: dict[tuple[int, int], int],
                       chunk_bytes: float) -> Arborescence | None:
    """Prim-style growth of one spanning arborescence on residual arcs.

    Arc weight is the α+β transfer time, so cheap fat links are taken first
    (what Blink's packing heuristic does). Ties go to arcs leaving the most
    recently covered node — depth-first growth, which on uniform fabrics
    produces chain-like trees that leave the root's other out-arcs free for
    the *next* tree (a star would exhaust them in one packing round).
    Returns ``None`` when the residual graph no longer spans every GPU.
    """
    gpus = set(topology.gpus)
    parent: dict[int, int] = {}
    covered = {root}
    recency = {root: 0}
    heap: list[tuple[float, int, int, int]] = []

    def push_frontier(node: int) -> None:
        for link in topology.out_edges(node):
            if residual[(link.src, link.dst)] > 0:
                heapq.heappush(heap, (link.transfer_time(chunk_bytes),
                                      -recency[node], link.src, link.dst))

    push_frontier(root)
    while gpus - covered:
        while heap:
            _, _, u, v = heapq.heappop(heap)
            if v not in covered and residual[(u, v)] > 0:
                break
        else:
            return None
        parent[v] = u
        covered.add(v)
        recency[v] = len(recency)
        push_frontier(v)

    _prune_switch_leaves(topology, parent)
    rate = min(topology.link(p, c).capacity for c, p in parent.items())
    return Arborescence(root=root, parent=dict(parent), rate=rate)


def _prune_switch_leaves(topology: Topology, parent: dict[int, int]) -> None:
    """Drop switches that relay to nobody (they consume arcs for nothing)."""
    while True:
        children_of = set(parent.values())
        dead = [n for n in parent
                if topology.is_switch(n) and n not in children_of]
        if not dead:
            return
        for n in dead:
            del parent[n]


def pack_arborescences(topology: Topology, root: int, *,
                       chunk_bytes: float, link_budget: int = 1,
                       max_trees: int = 8) -> list[Arborescence]:
    """Greedy arc-disjoint spanning-tree packing from ``root``.

    Args:
        link_budget: how many trees may share one arc (1 = strictly
            arc-disjoint, Blink's integral packing).
        max_trees: stop after this many trees even if more would fit.
    """
    if topology.is_switch(root):
        raise DemandError(f"root {root} is a switch")
    if max_trees < 1:
        raise DemandError("max_trees must be at least 1")
    if link_budget < 1:
        raise DemandError("link_budget must be at least 1")
    residual = {key: link_budget for key in topology.links}
    trees: list[Arborescence] = []
    while len(trees) < max_trees:
        tree = _grow_arborescence(topology, root, residual, chunk_bytes)
        if tree is None:
            break
        for (u, v) in tree.arcs:
            residual[(u, v)] -= 1
        trees.append(tree)
    if not trees:
        raise TopologyError(
            f"no spanning arborescence from {root} in {topology.name}")
    return trees


def split_chunks(num_chunks: int, rates: list[float]) -> list[int]:
    """Blink's proportional split with largest-remainder rounding.

    Every tree with a positive rate gets an integral share of the chunks;
    shares sum exactly to ``num_chunks``.
    """
    if num_chunks < 1:
        raise DemandError("num_chunks must be at least 1")
    if not rates or any(r <= 0 for r in rates):
        raise DemandError("rates must be positive")
    total = sum(rates)
    exact = [num_chunks * r / total for r in rates]
    shares = [int(x) for x in exact]
    remainders = sorted(range(len(rates)),
                        key=lambda i: exact[i] - shares[i], reverse=True)
    leftover = num_chunks - sum(shares)
    for i in remainders[:leftover]:
        shares[i] += 1
    return shares


def blink_broadcast(topology: Topology, config: TecclConfig, root: int,
                    num_chunks: int = 4,
                    max_trees: int = 8) -> Schedule:
    """Broadcast by streaming chunk shares down packed spanning trees."""
    trees = pack_arborescences(topology, root,
                               chunk_bytes=config.chunk_bytes,
                               max_trees=max_trees)
    plan, max_epochs = _horizon(topology, config, factor=4.0 * num_chunks)
    scheduler = GreedyScheduler(topology, plan, max_epochs)
    _book_trees(topology, config, scheduler, root, trees,
                list(range(num_chunks)))
    return scheduler.to_schedule()


def blink_allgather(topology: Topology, config: TecclConfig,
                    chunks_per_gpu: int = 1,
                    max_trees: int = 4) -> Schedule:
    """ALLGATHER as per-source tree packings on a shared link ledger.

    Each source packs its trees against the *full* fabric (Blink packs per
    collective, not jointly), then all trees contend greedily for epoch
    slots — reproducing the coordination gap the paper exploits.
    """
    gpus = topology.gpus
    if len(gpus) < 2:
        raise DemandError("allgather needs at least 2 GPUs")
    plan, max_epochs = _horizon(
        topology, config, factor=6.0 * chunks_per_gpu * len(gpus))
    scheduler = GreedyScheduler(topology, plan, max_epochs)
    for s in gpus:
        trees = pack_arborescences(topology, s,
                                   chunk_bytes=config.chunk_bytes,
                                   max_trees=max_trees)
        _book_trees(topology, config, scheduler, s, trees,
                    list(range(chunks_per_gpu)))
    return scheduler.to_schedule()


def _book_trees(topology: Topology, config: TecclConfig,
                scheduler: GreedyScheduler, source: int,
                trees: list[Arborescence], chunks: list[int]) -> None:
    shares = split_chunks(len(chunks), [t.rate for t in trees])
    cursor = 0
    for tree, share in zip(trees, shares):
        assigned = chunks[cursor:cursor + share]
        cursor += share
        if not assigned:
            continue
        logical, paths = tree.to_logical(topology)
        for c in assigned:
            scheduler.hold(source, c, source, 0)
        for u, v in logical.edges_bfs():
            for c in assigned:
                scheduler.send_path(source, c, paths[(u, v)])
