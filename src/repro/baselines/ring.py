"""Ring collectives: the NCCL-style baseline.

The classic ring ALLGATHER moves each chunk around an N-node ring in N−1
synchronous steps; it is bandwidth-optimal on a homogeneous ring but ignores
topology heterogeneity, which is where TE-CCL wins. The ring order can be
given explicitly or searched for (small topologies) with a backtracking
Hamiltonian-cycle finder over existing links.
"""

from __future__ import annotations

from repro.baselines.common import GreedyScheduler
from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import build_epoch_plan
from repro.core.schedule import Schedule
from repro.errors import InfeasibleError, TopologyError
from repro.topology.topology import Topology


def find_ring(topology: Topology) -> list[int]:
    """A Hamiltonian cycle over the GPU-to-GPU links (backtracking search).

    Only direct GPU links participate (a ring through a switch is not a ring
    NCCL would build). Exponential in the worst case — intended for the
    paper-scale chassis topologies.
    """
    gpus = topology.gpus
    if len(gpus) < 2:
        raise TopologyError("need at least 2 GPUs for a ring")
    adjacency = {g: [l.dst for l in topology.out_edges(g)
                     if not topology.is_switch(l.dst)]
                 for g in gpus}
    start = gpus[0]
    path = [start]
    visited = {start}

    def extend() -> bool:
        if len(path) == len(gpus):
            return path[0] in adjacency[path[-1]]
        for nxt in adjacency[path[-1]]:
            if nxt not in visited:
                visited.add(nxt)
                path.append(nxt)
                if extend():
                    return True
                path.pop()
                visited.remove(nxt)
        return False

    if not extend():
        raise TopologyError(
            f"{topology.name} has no GPU-only Hamiltonian ring")
    return path


def ring_allgather(topology: Topology, config: TecclConfig,
                   chunks_per_gpu: int = 1,
                   ring: list[int] | None = None) -> Schedule:
    """The N−1-step ring ALLGATHER on an explicit or discovered ring."""
    ring = ring or find_ring(topology)
    n = len(ring)
    for i in range(n):
        if not topology.has_link(ring[i], ring[(i + 1) % n]):
            raise TopologyError(
                f"ring hop ({ring[i]},{ring[(i + 1) % n]}) has no link")
    plan = build_epoch_plan(topology, config, num_epochs=1)
    # One ring step = the slowest hop's occupancy + delay, so all steps align.
    step_epochs = max(
        plan.arrival_offset(ring[i], ring[(i + 1) % n]) + 1
        for i in range(n))
    total_epochs = step_epochs * (n - 1) * chunks_per_gpu + 1
    plan = plan.with_num_epochs(total_epochs)
    scheduler = GreedyScheduler(topology, plan, total_epochs)
    for idx, gpu in enumerate(ring):
        for c in range(chunks_per_gpu):
            scheduler.hold(gpu, c, gpu, 0)
    for c in range(chunks_per_gpu):
        for step in range(n - 1):
            epoch = (c * (n - 1) + step) * step_epochs
            for idx, gpu in enumerate(ring):
                # forward the chunk originated by the GPU `step` hops back
                origin = ring[(idx - step) % n]
                nxt = ring[(idx + 1) % n]
                scheduler.sends.append(
                    _ring_send(epoch, origin, c, gpu, nxt))
                scheduler.ledger.reserve(gpu, nxt, epoch)
                scheduler.hold(origin, c, nxt,
                               epoch + plan.arrival_offset(gpu, nxt) + 1)
    return scheduler.to_schedule()


def _ring_send(epoch: int, origin: int, chunk: int, src: int, dst: int):
    from repro.core.schedule import Send

    return Send(epoch=epoch, source=origin, chunk=chunk, src=src, dst=dst)


def ring_allgather_time(topology: Topology, chunk_bytes: float,
                        chunks_per_gpu: int = 1,
                        ring: list[int] | None = None) -> float:
    """Closed-form α–β finish time of the ring ALLGATHER.

    (N−1)·C barrier steps, each paced by the slowest ring hop — the textbook
    (N−1)(α + S/B) cost the paper's §2.1 background assumes.
    """
    ring = ring or find_ring(topology)
    n = len(ring)
    step = max(topology.link(ring[i], ring[(i + 1) % n])
               .transfer_time(chunk_bytes) for i in range(n))
    return (n - 1) * chunks_per_gpu * step


def ring_demand(topology: Topology, chunks_per_gpu: int = 1,
                ring: list[int] | None = None) -> Demand:
    """The ALLGATHER demand over the ring participants (for validation)."""
    from repro.collectives.patterns import allgather

    ring = ring or find_ring(topology)
    return allgather(ring, chunks_per_gpu)
