"""Baseline schedulers the paper compares TE-CCL against."""

from repro.baselines.blink_like import (Arborescence, blink_allgather,
                                        blink_broadcast, pack_arborescences,
                                        split_chunks)
from repro.baselines.common import GreedyScheduler, LinkLedger, replay_plan
from repro.baselines.ring import (find_ring, ring_allgather,
                                  ring_allgather_time, ring_demand)
from repro.baselines.sccl_like import (ScclOutcome, barrier_finish_time,
                                       sccl_instance, sccl_least_steps)
from repro.baselines.shortest_path import (shortest_path,
                                           shortest_path_schedule)
from repro.baselines.taccl_like import TacclOutcome, taccl_like
from repro.baselines.trees import (LogicalTree, binomial_broadcast,
                                   binomial_tree, chain_tree,
                                   double_binary_trees, double_tree_broadcast,
                                   schedule_tree_broadcast, tree_allgather)

__all__ = [
    "GreedyScheduler", "LinkLedger", "replay_plan",
    "find_ring", "ring_allgather", "ring_allgather_time", "ring_demand",
    "shortest_path", "shortest_path_schedule",
    "taccl_like", "TacclOutcome",
    "sccl_least_steps", "sccl_instance", "ScclOutcome",
    "barrier_finish_time",
    "LogicalTree", "binomial_tree", "chain_tree", "double_binary_trees",
    "binomial_broadcast", "double_tree_broadcast", "tree_allgather",
    "schedule_tree_broadcast",
    "Arborescence", "pack_arborescences", "split_chunks",
    "blink_broadcast", "blink_allgather",
]
