"""Shortest-path-first scheduling (the [31]-style baseline, §2.1).

Routes every demanded (source, chunk, destination) triple independently along
its α+β-shortest path and books link slots greedily. Two deliberate
weaknesses the paper calls out: it never copies (a multicast chunk is shipped
once per destination) and it never load-balances off the shortest path, so it
wastes bandwidth exactly where TE-CCL's MILP wins.
"""

from __future__ import annotations

import heapq

from repro.baselines.common import GreedyScheduler
from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import build_epoch_plan, path_based_epoch_bound
from repro.core.schedule import Schedule
from repro.errors import InfeasibleError
from repro.topology.topology import Topology


def shortest_path(topology: Topology, src: int, dst: int,
                  chunk_bytes: float) -> list[int]:
    """The α + β·S shortest path as a node list (Dijkstra)."""
    out_adj, _ = topology.adjacency()
    dist: dict[int, float] = {src: 0.0}
    prev: dict[int, int] = {}
    heap = [(0.0, src)]
    while heap:
        cost, node = heapq.heappop(heap)
        if node == dst:
            break
        if cost > dist.get(node, float("inf")):
            continue
        for link in out_adj[node]:
            new = cost + link.transfer_time(chunk_bytes)
            if new < dist.get(link.dst, float("inf")):
                dist[link.dst] = new
                prev[link.dst] = node
                heapq.heappush(heap, (new, link.dst))
    if dst not in dist:
        raise InfeasibleError(f"no path from {src} to {dst}")
    path = [dst]
    while path[-1] != src:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def shortest_path_schedule(topology: Topology, demand: Demand,
                           config: TecclConfig,
                           horizon_factor: float = 8.0) -> Schedule:
    """Greedy shortest-path-first schedule for any demand.

    Args:
        horizon_factor: multiple of the generous path bound allowed before the
            greedy gives up (mirrors the baseline's lack of global planning).
    """
    demand.validate(topology)
    topology.validate()
    probe = build_epoch_plan(topology, config, num_epochs=1)
    bound = path_based_epoch_bound(topology, demand, probe)
    max_epochs = max(4, int(bound * horizon_factor))
    plan = build_epoch_plan(topology, config, num_epochs=max_epochs)
    scheduler = GreedyScheduler(topology, plan, max_epochs)

    triples = sorted(demand.triples())
    for s, c, _ in triples:
        scheduler.hold(s, c, s, 0)
    # Longest paths first: the classic list-scheduling heuristic.
    routed = sorted(
        ((s, c, d, shortest_path(topology, s, d, config.chunk_bytes))
         for s, c, d in triples),
        key=lambda item: -len(item[3]))
    for s, c, d, path in routed:
        scheduler.send_path(s, c, path)
    return scheduler.to_schedule()
