"""A TACCL-style two-phase synthesizer (the paper's main comparison point).

TACCL [27] splits synthesis into a *routing* phase (pick a path per chunk,
minimizing the most-loaded link) and a *scheduling* phase (order chunks on
the chosen links), with switches replaced by hyper-edges. The split is the
source of its sub-optimality: routing never sees timing (and ignores α
entirely), scheduling never revisits routes, and tie-breaking makes runs
non-deterministic. This re-implementation keeps precisely those properties:

* hyper-edge switch model (Appendix C semantics via
  :func:`repro.topology.to_hyper_edges`);
* routing = a small MILP choosing among k shortest paths per triple,
  minimizing the bottleneck link's transmission load (α-blind, copy-aware);
* scheduling = greedy earliest-slot booking over the chosen routes;
* a seed that perturbs routing costs and scheduling tie-breaks — different
  seeds can produce different schedules, and tight horizons can make the
  greedy fail (the paper's "X" infeasible marks in Figures 4-6).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

import networkx as nx

from repro.baselines.common import GreedyScheduler
from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import build_epoch_plan, path_based_epoch_bound
from repro.core.schedule import Schedule
from repro.errors import InfeasibleError
from repro.solver import (Model, Sense, SolverOptions, VarType, quicksum)
from repro.topology.topology import Topology
from repro.topology.transforms import HyperEdgeTopology, to_hyper_edges


@dataclass
class TacclOutcome:
    """The result of one TACCL-like run (in hyper-edge space)."""

    schedule: Schedule
    topology: Topology
    demand: Demand
    solve_time: float
    routing_time: float
    scheduling_time: float
    finish_time: float
    hyper: HyperEdgeTopology
    seed: int


def taccl_like(topology: Topology, demand: Demand, config: TecclConfig, *,
               seed: int = 0, num_paths: int = 3,
               horizon_factor: float = 4.0,
               routing_time_limit: float = 120.0) -> TacclOutcome:
    """Run the two-phase heuristic; raises InfeasibleError like TACCL fails.

    The returned schedule lives in the hyper-edge-transformed topology
    (``outcome.topology``); compare against TE-CCL run with
    ``SwitchModel.HYPER_EDGE`` for the paper's apples-to-apples setup (§6.1).
    """
    start = time.perf_counter()
    hyper = to_hyper_edges(topology)
    work = hyper.topology
    old_to_new = {old: new for new, old in hyper.node_map.items()}
    remapped = Demand.from_triples(
        (old_to_new[s], c, old_to_new[d]) for s, c, d in demand.triples())
    remapped.validate(work)

    rng = random.Random(seed)
    t0 = time.perf_counter()
    routes = _route(work, remapped, config, rng, num_paths,
                    routing_time_limit)
    routing_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    schedule = _schedule(work, remapped, config, routes, rng, horizon_factor,
                         hyper_groups=hyper.groups)
    scheduling_time = time.perf_counter() - t0

    return TacclOutcome(
        schedule=schedule, topology=work, demand=remapped,
        solve_time=time.perf_counter() - start,
        routing_time=routing_time, scheduling_time=scheduling_time,
        finish_time=schedule.finish_time(work),
        hyper=hyper, seed=seed)


# ----------------------------------------------------------------------
# phase 1: routing
# ----------------------------------------------------------------------
def _route(topology: Topology, demand: Demand, config: TecclConfig,
           rng: random.Random, num_paths: int, time_limit: float,
           ) -> dict[tuple[int, int, int], list[int]]:
    """Pick one path per triple by a bottleneck-load MILP.

    Edge weight is the *transmission* time only — TACCL's routing does not
    model α, which is exactly why it mis-routes small transfers (§2.2).
    A small random perturbation per run reproduces its nondeterminism.
    """
    graph = nx.DiGraph()
    for (i, j), link in topology.links.items():
        jitter = 1.0 + 0.01 * rng.random()
        graph.add_edge(i, j, weight=(config.chunk_bytes / link.capacity)
                       * jitter)

    candidates: dict[tuple[int, int, int], list[list[int]]] = {}
    for s, c, d in demand.triples():
        gen = nx.shortest_simple_paths(graph, s, d, weight="weight")
        paths = []
        for path in gen:
            paths.append(path)
            if len(paths) >= num_paths:
                break
        candidates[(s, c, d)] = paths

    model = Model("taccl-routing", sense=Sense.MINIMIZE)
    choice: dict[tuple, object] = {}
    for triple, paths in candidates.items():
        vars_t = [model.add_var(vtype=VarType.BINARY,
                                name=f"x[{triple},{p}]")
                  for p in range(len(paths))]
        model.add_constr(quicksum(vars_t) == 1, name=f"pick[{triple}]")
        for p, var in enumerate(vars_t):
            choice[(triple, p)] = var
    # copy-aware link usage: commodity (s, c) pays a link once even if
    # several of its destinations route over it
    usage: dict[tuple, object] = {}
    for triple, paths in candidates.items():
        s, c, _ = triple
        for p, path in enumerate(paths):
            for i, j in zip(path, path[1:]):
                key = (s, c, i, j)
                if key not in usage:
                    usage[key] = model.add_var(vtype=VarType.BINARY,
                                               name=f"y[{key}]")
                model.add_constr(choice[(triple, p)] <= usage[key],
                                 name=f"use[{triple},{p},{i},{j}]")
    bottleneck = model.add_var(name="z")
    for (i, j), link in topology.links.items():
        load_terms = [usage[key] * (config.chunk_bytes / link.capacity)
                      for key in usage if key[2] == i and key[3] == j]
        if load_terms:
            model.add_constr(quicksum(load_terms) <= bottleneck,
                             name=f"load[{i},{j}]")
    model.set_objective(bottleneck.to_expr())
    result = model.solve(SolverOptions(time_limit=time_limit, mip_gap=0.05))
    if not result.status.has_solution:
        raise InfeasibleError("TACCL-like routing found no solution",
                              status=result.status.value)
    routes = {}
    for triple, paths in candidates.items():
        for p in range(len(paths)):
            if result.value(choice[(triple, p)]) > 0.5:
                routes[triple] = paths[p]
                break
        else:
            raise InfeasibleError(f"no path chosen for {triple}")
    return routes


# ----------------------------------------------------------------------
# phase 2: scheduling
# ----------------------------------------------------------------------
class _HyperLedger:
    """Appendix C's switch budgets for the greedy scheduler.

    TACCL's model caps, per epoch, (1) the total active hyper-edges of one
    switch at min(in-degree, out-degree) and (2) each node to one outgoing
    and one incoming hyper-edge per switch.
    """

    def __init__(self, groups):
        self.limit: dict[int, int] = {}
        self.group_of: dict[tuple[int, int], int] = {}
        for group in groups:
            self.limit[group.switch] = group.usage_limit
            for edge in group.edges:
                self.group_of[edge] = group.switch
        self.total: dict[tuple[int, int], int] = {}
        self.out_used: dict[tuple[int, int, int], int] = {}
        self.in_used: dict[tuple[int, int, int], int] = {}

    def fits(self, src: int, dst: int, epoch: int) -> bool:
        switch = self.group_of.get((src, dst))
        if switch is None:
            return True
        return (self.total.get((switch, epoch), 0) < self.limit[switch]
                and self.out_used.get((switch, src, epoch), 0) < 1
                and self.in_used.get((switch, dst, epoch), 0) < 1)

    def reserve(self, src: int, dst: int, epoch: int) -> None:
        switch = self.group_of.get((src, dst))
        if switch is None:
            return
        self.total[(switch, epoch)] = self.total.get((switch, epoch), 0) + 1
        self.out_used[(switch, src, epoch)] = 1
        self.in_used[(switch, dst, epoch)] = 1


def _schedule(topology: Topology, demand: Demand, config: TecclConfig,
              routes: dict[tuple[int, int, int], list[int]],
              rng: random.Random, horizon_factor: float,
              hyper_groups=()) -> Schedule:
    """Greedy earliest-slot booking over the routed edges, copy-aware."""
    probe = build_epoch_plan(topology, config, num_epochs=1)
    bound = path_based_epoch_bound(topology, demand, probe)
    max_epochs = max(4, int(bound * horizon_factor))
    plan = build_epoch_plan(topology, config, num_epochs=max_epochs)
    scheduler = GreedyScheduler(topology, plan, max_epochs)
    hyper_ledger = _HyperLedger(hyper_groups)

    # Per commodity, the set of directed edges its routes use (a copy ships
    # a chunk across an edge once, no matter how many destinations follow).
    edges: dict[tuple[int, int], set[tuple[int, int]]] = {}
    for (s, c, _), path in routes.items():
        edge_set = edges.setdefault((s, c), set())
        edge_set.update(zip(path, path[1:]))
        scheduler.hold(s, c, s, 0)

    pending: list[tuple[tuple[int, int], tuple[int, int]]] = [
        (q, e) for q, es in edges.items() for e in sorted(es)]
    rng.shuffle(pending)

    progress = True
    while pending and progress:
        progress = False
        still: list[tuple[tuple[int, int], tuple[int, int]]] = []
        # book every edge whose tail already holds the chunk, earliest first
        ready_now = []
        for q, (i, j) in pending:
            ready = scheduler.ready_epoch(q[0], q[1], i)
            if ready is None:
                still.append((q, (i, j)))
            else:
                ready_now.append((ready, rng.random(), q, (i, j)))
        ready_now.sort()
        for ready, _, q, (i, j) in ready_now:
            epoch = scheduler.ledger.earliest(i, j, ready)
            while not hyper_ledger.fits(i, j, epoch):
                epoch = scheduler.ledger.earliest(i, j, epoch + 1)
            scheduler.ledger.reserve(i, j, epoch)
            hyper_ledger.reserve(i, j, epoch)
            scheduler.sends.append(
                _send(epoch, q[0], q[1], i, j))
            scheduler.hold(q[0], q[1], j,
                           epoch + plan.arrival_offset(i, j) + 1)
            progress = True
        pending = still
    if pending:
        raise InfeasibleError(
            f"TACCL-like scheduling stalled with {len(pending)} hops left "
            "(disconnected routes)", status="stalled")

    schedule = scheduler.to_schedule()
    _check_delivery(schedule, demand, plan)
    return schedule


def _send(epoch: int, source: int, chunk: int, src: int, dst: int):
    from repro.core.schedule import Send

    return Send(epoch=epoch, source=source, chunk=chunk, src=src, dst=dst)


def _check_delivery(schedule: Schedule, demand: Demand, plan) -> None:
    arrived: set[tuple[int, int, int]] = set()
    for send in schedule.sends:
        arrived.add((send.source, send.chunk, send.dst))
    for s, c, d in demand.triples():
        if (s, c, d) not in arrived:
            raise InfeasibleError(
                f"TACCL-like schedule never delivers ({s},{c}) to {d}",
                status="undelivered")
