"""An SCCL-style synchronous-round synthesizer (§6.1's other baseline).

SCCL [5] synthesizes collectives over *global synchronous steps*: every
transfer in step t completes before step t+1 begins, so a step costs the
worst α + β·S of any link used and nothing pipelines across heterogeneous
links. Its ``least-steps`` mode searches for the fewest steps that can
satisfy the demand. The paper's Table 3/7 comparisons rest on two properties
we reproduce exactly:

* the barrier makes multi-chunk transfers pay α once per step, so TE-CCL's
  pipelining wins as soon as there is more than one chunk;
* synthesis cost explodes with the chunk count (SCCL uses an SMT solver; we
  search feasibility MILPs per step count, which exhibits the same growth
  while staying runnable offline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import EpochPlan, earliest_arrival_epochs
from repro.core.milp import MilpBuilder, extract_outcome
from repro.core.schedule import Schedule
from repro.errors import InfeasibleError
from repro.solver import SolverOptions
from repro.topology.topology import Topology


@dataclass
class ScclOutcome:
    """An SCCL-like synthesis result."""

    schedule: Schedule
    steps: int
    solve_time: float
    finish_time: float

    @property
    def num_sends(self) -> int:
        return self.schedule.num_sends


def _barrier_plan(topology: Topology, chunk_bytes: float,
                  steps: int, rounds_per_step: int = 1) -> EpochPlan:
    """The synchronous abstraction: no pipelining across steps.

    ``rounds_per_step`` is SCCL's rounds dimension: a link may carry that
    many chunks within one step (the step then lasts correspondingly
    longer — see :func:`barrier_finish_time`). τ is symbolic (1.0).
    """
    links = list(topology.links)
    return EpochPlan(
        tau=1.0, num_epochs=steps, chunk_bytes=chunk_bytes,
        cap_chunks={key: float(rounds_per_step) for key in links},
        occupancy={key: 1 for key in links},
        delay={key: 0 for key in links})


def barrier_finish_time(schedule: Schedule, topology: Topology,
                        chunk_bytes: float) -> float:
    """Σ over steps of the slowest link's serialized work in that step.

    A link carrying r chunks in a step pays α + r·β·S; the barrier makes
    the step as long as its worst link.
    """
    total = 0.0
    for _, sends in sorted(schedule.sends_by_epoch().items()):
        per_link: dict[tuple[int, int], int] = {}
        for s in sends:
            per_link[s.link] = per_link.get(s.link, 0) + 1
        total += max(
            topology.link(i, j).alpha
            + count * chunk_bytes / topology.link(i, j).capacity
            for (i, j), count in per_link.items())
    return total


def sccl_instance(topology: Topology, demand: Demand, config: TecclConfig,
                  steps: int, *, rounds_per_step: int = 1,
                  solver: SolverOptions | None = None,
                  ) -> ScclOutcome:
    """SCCL's ``instance`` mode: is the demand satisfiable in these steps?

    ``rounds_per_step`` reproduces SCCL's rounds dimension (extra bandwidth
    within a step). Raises :class:`InfeasibleError` when unsatisfiable —
    exactly how SCCL's instance encoding fails.
    """
    start = time.perf_counter()
    plan = _barrier_plan(topology, config.chunk_bytes, steps,
                         rounds_per_step=rounds_per_step)
    builder = MilpBuilder(topology, demand, config, plan)
    problem = builder.build()
    options = solver or SolverOptions(mip_gap=0.5)
    result = problem.model.solve(options)
    if not result.status.has_solution:
        raise InfeasibleError(
            f"not satisfiable in {steps} steps", status=result.status.value)
    outcome = extract_outcome(problem, result)
    schedule = outcome.schedule
    return ScclOutcome(
        schedule=schedule, steps=steps,
        solve_time=time.perf_counter() - start,
        finish_time=barrier_finish_time(schedule, topology,
                                        config.chunk_bytes))


def sccl_least_steps(topology: Topology, demand: Demand,
                     config: TecclConfig, *, max_steps: int = 64,
                     solver: SolverOptions | None = None) -> ScclOutcome:
    """SCCL's ``least-steps``: smallest synchronous step count that works.

    Searches upward from the hop-distance lower bound, accumulating solver
    time across feasibility checks (the cost the paper measures).
    """
    demand.validate(topology)
    topology.validate()
    plan_probe = _barrier_plan(topology, config.chunk_bytes, 1)
    dist = earliest_arrival_epochs(topology, plan_probe)
    lower = 1
    for s, c in demand.commodities():
        for d in demand.destinations(s, c):
            hops = dist[s].get(d)
            if hops is None:
                raise InfeasibleError(f"{d} unreachable from {s}")
            lower = max(lower, hops)
    total_time = 0.0
    for steps in range(lower, max_steps + 1):
        attempt_start = time.perf_counter()
        try:
            outcome = sccl_instance(topology, demand, config, steps,
                                    solver=solver)
        except InfeasibleError:
            total_time += time.perf_counter() - attempt_start
            continue
        return ScclOutcome(schedule=outcome.schedule, steps=outcome.steps,
                           solve_time=total_time + outcome.solve_time,
                           finish_time=outcome.finish_time)
    raise InfeasibleError(
        f"no schedule within {max_steps} synchronous steps",
        status="steps")
