"""Checkpoint-restart repair of a collective schedule after link failures.

The repair model is fail-stop at epoch granularity: at the (earliest)
failure epoch F the original schedule is abandoned, the physical location of
every chunk at that instant is reconstructed by replaying the schedule
prefix, the unmet demand is *re-homed* onto the nearest surviving copies,
and TE-CCL re-synthesizes the residual collective on the degraded fabric.
Total recovery time is then ``F·τ + residual finish time``.

Re-homing is what distinguishes this from naive restart: a chunk that
already crossed the fabric once is re-broadcast from where it got to, not
from its original source — the partial progress of the dead schedule is
kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.shortest_path import shortest_path
from repro.collectives.demand import Demand, Triple
from repro.core.config import TecclConfig
from repro.core.epochs import EpochPlan
from repro.core.schedule import FlowSchedule, Schedule
from repro.core.solve import Method, SynthesisResult, synthesize
from repro.errors import InfeasibleError, ModelError, TopologyError
from repro.failures.inject import FailureEvent, degraded_topology
from repro.topology.topology import Topology


@dataclass
class NetworkState:
    """Where every commodity physically is at one instant.

    Attributes:
        epoch: the instant (start of this epoch).
        holders: per commodity, the GPU nodes holding a full copy.
        in_flight: sends started before the instant that land after it,
            as ``(commodity, destination, arrival_epoch)`` records. The
            conservative repair ignores these copies (they may be on a
            link that just died); they are reported for diagnostics.
        delivered: demand triples already satisfied.
    """

    epoch: int
    holders: dict[tuple[int, int], set[int]] = field(default_factory=dict)
    in_flight: list[tuple[tuple[int, int], int, int]] = field(
        default_factory=list)
    delivered: set[Triple] = field(default_factory=set)

    def progress(self, demand: Demand) -> float:
        """Fraction of demanded triples already delivered at the instant."""
        total = demand.num_triples
        if total == 0:
            raise ModelError("empty demand has no progress")
        return len(self.delivered) / total


def network_state_at(schedule: Schedule, topology: Topology, demand: Demand,
                     plan: EpochPlan, epoch: int) -> NetworkState:
    """Replay the schedule prefix and reconstruct the state at ``epoch``.

    Sends that *start* before ``epoch`` execute (fail-stop lets in-flight
    transfers finish); a copy counts as held only once its arrival lands at
    a GPU by the start of ``epoch`` — switches never hold chunks (§3.1).
    """
    if epoch < 0:
        raise ModelError("epoch must be non-negative")
    state = NetworkState(epoch=epoch)
    for (s, c) in demand.commodities():
        state.holders[(s, c)] = {s}
    for send in sorted(schedule.sends):
        if send.epoch >= epoch:
            break
        if send.commodity not in state.holders:
            continue  # a send for a commodity outside this demand
        if topology.is_switch(send.dst):
            continue  # relays are transient; the exit hop is its own send
        arrival = send.epoch + plan.arrival_offset(send.src, send.dst) + 1
        if arrival <= epoch:
            state.holders[send.commodity].add(send.dst)
        else:
            state.in_flight.append((send.commodity, send.dst, arrival))
    for s, c, d in demand.triples():
        if d in state.holders[(s, c)]:
            state.delivered.add((s, c, d))
    return state


def rehome_demand(state: NetworkState, demand: Demand, degraded: Topology,
                  chunk_bytes: float,
                  ) -> tuple[Demand, dict[Triple, Triple]]:
    """Re-express the unmet demand over the surviving chunk copies.

    Every undelivered destination is assigned the *closest* holder of its
    chunk on the degraded fabric (α+β shortest-path distance); triples
    sharing (original commodity, holder) collapse into one re-homed
    commodity so in-network copy still applies downstream.

    Returns the re-homed demand and the map from re-homed triples back to
    the original triples (empty demand when everything was delivered).
    """
    residual = [t for t in demand.triples() if t not in state.delivered]
    groups: dict[tuple[int, int, int], list[int]] = {}
    for s, c, d in residual:
        best_holder: int | None = None
        best_cost = float("inf")
        for holder in sorted(state.holders[(s, c)]):
            try:
                path = shortest_path(degraded, holder, d, chunk_bytes)
            except InfeasibleError:
                continue
            cost = sum(
                degraded.link(a, b).transfer_time(chunk_bytes)
                for a, b in zip(path, path[1:]))
            if cost < best_cost:
                best_cost, best_holder = cost, holder
        if best_holder is None:
            raise InfeasibleError(
                f"destination {d} unreachable from every holder of chunk "
                f"({s},{c}) on the degraded fabric")
        groups.setdefault((s, c, best_holder), []).append(d)

    next_chunk: dict[int, int] = {}
    mapping: dict[Triple, Triple] = {}
    triples: list[Triple] = []
    for (s, c, holder), dests in sorted(groups.items()):
        chunk_id = next_chunk.get(holder, 0)
        next_chunk[holder] = chunk_id + 1
        for d in dests:
            rehomed = (holder, chunk_id, d)
            mapping[rehomed] = (s, c, d)
            triples.append(rehomed)
    if not triples:
        return Demand.empty(), {}
    return Demand.from_triples(triples), mapping


@dataclass
class RepairOutcome:
    """The result of a checkpoint-restart repair."""

    state: NetworkState
    residual_demand: Demand
    mapping: dict[Triple, Triple]
    degraded: Topology
    #: ``None`` when the failure struck after everything was delivered.
    synthesis: SynthesisResult | None
    restart_epoch: int
    tau: float

    @property
    def residual_finish_time(self) -> float:
        return self.synthesis.finish_time if self.synthesis else 0.0

    @property
    def total_time(self) -> float:
        """Wall-clock completion: prefix until the failure, then repair."""
        return self.restart_epoch * self.tau + self.residual_finish_time

    def overhead_over(self, unfailed_finish: float) -> float:
        """Relative slowdown versus the failure-free schedule."""
        if unfailed_finish <= 0:
            raise ModelError("unfailed finish time must be positive")
        return (self.total_time - unfailed_finish) / unfailed_finish

    def check_conformance(self, config: TecclConfig | None = None):
        """Replay the residual schedule on the degraded fabric.

        Returns the :class:`~repro.simulate.ConformanceReport` for the
        repair synthesis (``None`` when the failure struck after everything
        was delivered and there is nothing to replay). The residual
        schedule must be executable on the *degraded* topology — exactly
        what an operator needs to trust before shipping the repair.
        """
        if self.synthesis is None:
            return None
        from repro.simulate import check_result

        replay_config = None if config is None else replace(
            config, num_epochs=None, priorities=None)
        return check_result(self.synthesis, config=replay_config)


def repair_schedule(topology: Topology, demand: Demand, config: TecclConfig,
                    schedule: Schedule, plan: EpochPlan,
                    failures: list[FailureEvent], *,
                    method: Method = Method.AUTO,
                    warm_from: SynthesisResult | None = None,
                    ) -> RepairOutcome:
    """Abandon the schedule at the first failure and re-synthesize.

    The residual synthesis runs with an automatically estimated horizon
    (the original ``config.num_epochs`` was sized for the full collective,
    not the residual) and without multi-tenant priorities (they are keyed
    by original triples, which re-homing renames). ``warm_from`` seeds that
    horizon from a prior solution's achieved finish — the residual needs no
    more time than the whole collective did, so the seed replaces the
    generous path bound with a much smaller model.
    """
    if not failures:
        raise ModelError("no failures to repair")
    cutoff = min(f.epoch for f in failures)
    state = network_state_at(schedule, topology, demand, plan, cutoff)
    degraded = degraded_topology(topology, failures)
    try:
        degraded.validate()
    except TopologyError as err:
        raise InfeasibleError(
            f"fabric partitioned by failures: {err}") from err
    residual, mapping = rehome_demand(state, demand, degraded,
                                      config.chunk_bytes)
    if residual.is_empty():
        return RepairOutcome(state=state, residual_demand=residual,
                             mapping={}, degraded=degraded, synthesis=None,
                             restart_epoch=cutoff, tau=plan.tau)
    residual_config = replace(config, num_epochs=None, priorities=None)
    synthesis = synthesize(degraded, residual, residual_config,
                           method=method, warm_from=warm_from)
    return RepairOutcome(state=state, residual_demand=residual,
                         mapping=mapping, degraded=degraded,
                         synthesis=synthesis, restart_epoch=cutoff,
                         tau=plan.tau)


def replan(prior: SynthesisResult, topology: Topology, demand: Demand,
           config: TecclConfig, *,
           failures: list[FailureEvent] | None = None,
           method: Method = Method.AUTO,
           check_conformance: bool = True,
           ) -> SynthesisResult | RepairOutcome:
    """Re-solve a perturbed instance seeded by a prior result.

    The production loop this serves is a sequence of near-identical
    instances — rank reorderings, capacity renegotiations, link failures on
    a changing cloud fabric — where throwing the previous solve away wastes
    exactly the solver time the paper's §6 speedups bought. ``replan``
    seeds the re-solve from ``prior``:

    * without ``failures``, it re-synthesizes ``demand`` on ``topology``
      (both possibly perturbed) with the horizon seeded from the prior
      finish time, and returns a fresh :class:`SynthesisResult`;
    * with ``failures``, it delegates to :func:`repair_schedule` — the
      prior schedule's delivered prefix is kept, the unmet remainder is
      re-homed and re-solved on the degraded fabric — and returns the
      :class:`RepairOutcome`.

    Every warm-started schedule is replayed through the PR 3 conformance
    oracle before it is returned (``check_conformance=False`` opts out); a
    replay violation triggers one cold re-solve, so warm seeding can never
    trade correctness for speed.

    A fractional (LP) prior has no integral send prefix to replay, so under
    ``failures`` it is re-planned from scratch on the degraded fabric
    (still horizon-seeded) and the fresh :class:`SynthesisResult` is
    returned instead of a :class:`RepairOutcome`.
    """
    if failures and isinstance(prior.schedule, FlowSchedule):
        degraded = degraded_topology(topology, failures)
        try:
            degraded.validate()
        except TopologyError as err:
            raise InfeasibleError(
                f"fabric partitioned by failures: {err}") from err
        return replan(prior, degraded, demand,
                      replace(config, num_epochs=None), method=method,
                      check_conformance=check_conformance)
    if failures:
        outcome = repair_schedule(topology, demand, config, prior.schedule,
                                  prior.plan, failures, method=method,
                                  warm_from=prior)
        if check_conformance and outcome.synthesis is not None:
            report = outcome.check_conformance(config)
            if report is not None and not report.ok:
                outcome = repair_schedule(topology, demand, config,
                                          prior.schedule, prior.plan,
                                          failures, method=method)
                report = outcome.check_conformance(config)
                if report is not None and not report.ok:
                    raise ModelError(
                        "repair replan failed conformance replay: "
                        + "; ".join(str(v) for v in report.violations[:3]))
        return outcome
    result = synthesize(topology, demand, config, method=method,
                        warm_from=prior)
    if check_conformance:
        from repro.simulate import check_result

        report = check_result(result, config=config)
        if not report.ok:
            result = synthesize(topology, demand, config, method=method)
            report = check_result(result, config=config)
            if not report.ok:
                raise ModelError(
                    "replan failed conformance replay: "
                    + "; ".join(str(v) for v in report.violations[:3]))
    return result


@dataclass(frozen=True)
class ImpactRow:
    """One line of the criticality report: fail this link, pay this much."""

    link: tuple[int, int]
    finish_time: float
    slowdown: float
    survivable: bool


def failure_impact(topology: Topology, demand: Demand, config: TecclConfig,
                   *, links: list[tuple[int, int]] | None = None,
                   method: Method = Method.AUTO) -> list[ImpactRow]:
    """Steady-state criticality: re-synthesize with each link removed.

    Unsurvivable failures (the fabric partitions) report an infinite
    finish time. Rows are sorted worst-first — the operator's "which cable
    do I dual-home" list.
    """
    baseline = synthesize(topology, demand, config, method=method)
    rows = []
    for link in sorted(links if links is not None else topology.links):
        event = FailureEvent(epoch=0, link=link)
        try:
            degraded = degraded_topology(topology, [event])
            degraded.validate()
            demand.validate(degraded)
            result = synthesize(degraded, demand, replace(
                config, num_epochs=None), method=method)
            finish, survivable = result.finish_time, True
        except (InfeasibleError, TopologyError):
            finish, survivable = float("inf"), False
        rows.append(ImpactRow(
            link=link, finish_time=finish,
            slowdown=finish / baseline.finish_time,
            survivable=survivable))
    rows.sort(key=lambda r: (-r.slowdown, r.link))
    return rows
