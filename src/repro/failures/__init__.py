"""Failure injection and schedule repair (the intro's second design loop).

The paper argues a fast collective optimizer enables "adapting to failures"
(§1): when a link dies mid-collective, the operator re-synthesizes on the
degraded fabric instead of falling back to a canned algorithm. This
subpackage provides the machinery around that loop:

* :mod:`repro.failures.inject` — failure events, degraded fabrics, and the
  causal classification of which scheduled sends a failure invalidates;
* :mod:`repro.failures.repair` — checkpoint-restart repair: reconstruct
  where every chunk physically is at the failure instant, re-home the
  unmet demand onto the surviving copies, and re-synthesize the residual
  collective with TE-CCL on the degraded fabric;
* :func:`repro.failures.repair.failure_impact` — per-link criticality: the
  collective slowdown each single-link failure would inflict.
"""

from repro.failures.inject import (FailureEvent, affected_sends,
                                   degraded_capacity_fn, degraded_topology,
                                   is_survivable)
from repro.failures.repair import (ImpactRow, NetworkState, RepairOutcome,
                                   failure_impact, network_state_at,
                                   rehome_demand, repair_schedule, replan)

__all__ = [
    "FailureEvent", "degraded_topology", "degraded_capacity_fn",
    "affected_sends", "is_survivable",
    "NetworkState", "network_state_at", "rehome_demand", "repair_schedule",
    "replan", "RepairOutcome", "ImpactRow", "failure_impact",
]
