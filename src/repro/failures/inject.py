"""Failure events and their immediate consequences on fabric and schedule."""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.demand import Demand
from repro.core.schedule import Schedule, Send
from repro.errors import TopologyError
from repro.topology.topology import Topology
from repro.topology.transforms import without_links


@dataclass(frozen=True, order=True)
class FailureEvent:
    """A directed link that stops carrying traffic from ``epoch`` onward.

    Sends already in flight when the link dies (started strictly before
    ``epoch``) are assumed to complete — the fail-stop model at epoch
    granularity. Pass two events to kill a full-duplex cable.
    """

    epoch: int
    link: tuple[int, int]

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise TopologyError("failure epoch must be non-negative")

    def kills(self, send: Send) -> bool:
        return send.link == self.link and send.epoch >= self.epoch


def degraded_topology(topology: Topology,
                      failures: list[FailureEvent],
                      name: str | None = None) -> Topology:
    """The fabric with every failed link removed (post-failure steady state)."""
    if not failures:
        return topology.copy(name=name)
    return without_links(topology, [f.link for f in failures], name=name)


def degraded_capacity_fn(topology: Topology, failures: list[FailureEvent],
                         *, dead_capacity: float = 1e-9):
    """A §5 variable-bandwidth hook modelling the failures in-model.

    Returns a ``(src, dst, epoch) -> bytes/s`` function suitable for
    :attr:`repro.core.config.TecclConfig.capacity_fn`: full capacity before
    each link's failure epoch, (numerically) zero afterwards. This lets a
    *single* synthesis anticipate a known maintenance window instead of
    re-solving — the paper's variable-bandwidth machinery applied to
    failures.
    """
    dead_from: dict[tuple[int, int], int] = {}
    for event in failures:
        current = dead_from.get(event.link)
        if current is None or event.epoch < current:
            dead_from[event.link] = event.epoch

    def capacity(i: int, j: int, k: int) -> float:
        full = topology.link(i, j).capacity
        cutoff = dead_from.get((i, j))
        if cutoff is not None and k >= cutoff:
            return dead_capacity
        return full

    return capacity


def affected_sends(schedule: Schedule,
                   failures: list[FailureEvent]) -> list[Send]:
    """Sends the failures invalidate *directly* (they use a dead link).

    The causal cascade — sends that lose their input because an upstream
    send died — is computed by :func:`repro.failures.repair
    .network_state_at`, which replays the schedule.
    """
    return sorted(s for s in schedule.sends
                  if any(f.kills(s) for f in failures))


def is_survivable(topology: Topology, demand: Demand,
                  failures: list[FailureEvent]) -> bool:
    """Whether the demand remains satisfiable on the degraded fabric."""
    try:
        degraded = degraded_topology(topology, failures)
        degraded.validate()
        demand.validate(degraded)
    except TopologyError:
        return False
    return True
