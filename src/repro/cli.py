"""Command-line interface: ``teccl synth ...`` / ``python -m repro ...``.

Examples::

    teccl topologies
    teccl synth --topology ndv2 --chassis 2 --collective allgather \
        --chunk-size 1e6 --method auto
    teccl synth --topology dgx1 --collective allgather --export algo.xml
    teccl verify --xml algo.xml --topology dgx1 --collective allgather
    teccl compare --topology dgx1 --collective allgather
    teccl impact --topology ndv2 --chassis 2 --top 5
    teccl upgrade --topology dgx1 --factor 2 --top 5
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.config import EpochMode, SwitchModel
from repro.core.solve import Method, synthesize
from repro.errors import ReproError, TopologyError

_TOPOLOGIES = {
    # size = the --chassis/--size argument; each entry documents its meaning
    "dgx1": lambda size: topology.dgx1(),
    "ndv2": topology.ndv2,
    "dgx2": topology.dgx2,
    "internal1": topology.internal1,
    "internal2": topology.internal2,
    "fattree": lambda size: topology.fat_tree(2 * size),
    "torus": lambda size: topology.torus2d(max(2, size), max(2, size)),
    "hypercube": topology.hypercube,
    "leafspine": lambda size: topology.leaf_spine(size, 4, 2),
}

_COLLECTIVES = {
    "allgather": lambda gpus, chunks: collectives.allgather(gpus, chunks),
    "alltoall": lambda gpus, chunks: collectives.alltoall(gpus, chunks),
    "broadcast": lambda gpus, chunks: collectives.broadcast(
        gpus[0], gpus[1:], chunks),
    "reducescatter": lambda gpus, chunks: collectives.reduce_scatter(
        gpus, chunks),
}

_WORKLOADS = {
    "bert": lambda gpus: collectives.bert_like_job(gpus),
    "dlrm": lambda gpus: collectives.dlrm_like_job(gpus),
    "moe": lambda gpus: collectives.moe_job(gpus, skew=0.5),
    "pipeline": lambda gpus: collectives.pipeline_job(gpus),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="teccl",
        description="TE-CCL: collective communication schedule synthesis")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list built-in topologies")

    synth = sub.add_parser("synth", help="synthesize a schedule")
    synth.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                       required=True)
    synth.add_argument("--chassis", type=int, default=1)
    synth.add_argument("--collective", choices=sorted(_COLLECTIVES),
                       default="allgather")
    synth.add_argument("--chunks", type=int, default=1,
                       help="chunks per source (or per pair for alltoall)")
    synth.add_argument("--chunk-size", type=float, default=1e6,
                       help="bytes per chunk")
    synth.add_argument("--epochs", type=int, default=None,
                       help="horizon K (default: auto upper bound)")
    synth.add_argument("--method",
                       choices=[m.value for m in Method], default="auto")
    synth.add_argument("--epoch-mode",
                       choices=[m.value for m in EpochMode],
                       default=EpochMode.FASTEST_LINK.value)
    synth.add_argument("--switch-model",
                       choices=[m.value for m in SwitchModel],
                       default=SwitchModel.COPY.value)
    synth.add_argument("--time-limit", type=float, default=None)
    synth.add_argument("--mip-gap", type=float, default=0.0)
    synth.add_argument("--symmetry", choices=["auto", "on", "off"],
                       default="auto",
                       help="quotient the solve by verified fabric "
                            "automorphisms (auto: large models only; "
                            "results are always conformance-vetted with "
                            "cold fallback, so this only affects speed)")
    synth.add_argument("--export", metavar="FILE", default=None,
                       help="write the schedule as MSCCL XML")
    synth.add_argument("--export-json", metavar="FILE", default=None,
                       help="write the full synthesis result as JSON "
                            "(replayable with `teccl verify --schedule`)")
    synth.add_argument("--timeline", action="store_true",
                       help="print the per-link ASCII timeline")
    synth.add_argument("--events", action="store_true",
                       help="also report the continuous-time (event) finish")
    synth.add_argument("--check", action="store_true",
                       help="replay the schedule through the conformance "
                            "engine before reporting it")
    synth.add_argument("--trace", metavar="FILE", default=None,
                       help="write a phase-level span trace (JSONL); "
                            "inspect with `teccl obs summary|export-trace`")
    synth.add_argument("--partitions", type=int, default=0,
                       help="solve via POP partitioning with this many "
                            "client groups (LP-shaped demands only, e.g. "
                            "alltoall; 0 = monolithic solve). The merged "
                            "schedule is fractional, so --export/--timeline"
                            "/--events do not apply")
    synth.add_argument("--parallel", action="store_true",
                       help="fan independent decomposition sub-solves out "
                            "on threads (with --partitions: one thread per "
                            "POP partition; see README 'Parallel "
                            "decomposition solving')")
    synth.add_argument("--jobs", type=int, default=None,
                       help="fan-out width for --parallel "
                            "(default: CPU count)")

    sweep = sub.add_parser("sweep", help="sweep chunk sizes (§5)")
    sweep.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                       required=True)
    sweep.add_argument("--chassis", type=int, default=1)
    sweep.add_argument("--collective", choices=sorted(_COLLECTIVES),
                       default="allgather")
    sweep.add_argument("--chunk-sizes", type=str, required=True,
                       help="comma-separated byte counts, e.g. 1e5,1e6,1e7")
    sweep.add_argument("--mip-gap", type=float, default=0.1)
    sweep.add_argument("--time-limit", type=float, default=60.0)

    compare = sub.add_parser(
        "compare", help="TE-CCL vs baselines on one collective")
    compare.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                         required=True)
    compare.add_argument("--chassis", type=int, default=1)
    compare.add_argument("--collective", choices=sorted(_COLLECTIVES),
                         default="allgather")
    compare.add_argument("--chunks", type=int, default=1)
    compare.add_argument("--chunk-size", type=float, default=1e6)
    compare.add_argument("--mip-gap", type=float, default=0.1)
    compare.add_argument("--time-limit", type=float, default=60.0)

    verify_cmd = sub.add_parser(
        "verify",
        help="verify a schedule: conformance-replay a synthesis result "
             "(--schedule) or execute an exported MSCCL program (--xml)")
    what = verify_cmd.add_mutually_exclusive_group(required=True)
    what.add_argument("--xml", metavar="FILE", default=None,
                      help="exported MSCCL program (runs the interpreter)")
    what.add_argument("--schedule", metavar="FILE", default=None,
                      help="synthesis-result JSON (runs the conformance "
                           "engine; see `teccl synth --export-json`)")
    verify_cmd.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                            default=None,
                            help="required with --xml; ignored with "
                                 "--schedule (the document carries its own)")
    verify_cmd.add_argument("--chassis", type=int, default=1)
    verify_cmd.add_argument("--collective", choices=sorted(_COLLECTIVES),
                            default="allgather")
    verify_cmd.add_argument("--chunks", type=int, default=1)
    verify_cmd.add_argument("--chunk-size", type=float, default=1e6)

    impact = sub.add_parser(
        "impact", help="per-link failure criticality (re-synthesis cost)")
    impact.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                        required=True)
    impact.add_argument("--chassis", type=int, default=1)
    impact.add_argument("--collective", choices=sorted(_COLLECTIVES),
                        default="allgather")
    impact.add_argument("--chunk-size", type=float, default=1e6)
    impact.add_argument("--top", type=int, default=10)
    impact.add_argument("--mip-gap", type=float, default=0.1)
    impact.add_argument("--time-limit", type=float, default=30.0)

    upgrade = sub.add_parser(
        "upgrade", help="what-if link upgrades (toposearch)")
    upgrade.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                         required=True)
    upgrade.add_argument("--chassis", type=int, default=1)
    upgrade.add_argument("--collective", choices=sorted(_COLLECTIVES),
                         default="allgather")
    upgrade.add_argument("--chunk-size", type=float, default=1e6)
    upgrade.add_argument("--factor", type=float, default=2.0)
    upgrade.add_argument("--top", type=int, default=10)
    upgrade.add_argument("--mip-gap", type=float, default=0.1)
    upgrade.add_argument("--time-limit", type=float, default=30.0)

    workload = sub.add_parser(
        "workload", help="schedule a whole training step's communication")
    workload.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                          required=True)
    workload.add_argument("--chassis", type=int, default=1)
    workload.add_argument("--job", choices=sorted(_WORKLOADS),
                          required=True)
    workload.add_argument("--mip-gap", type=float, default=0.2)
    workload.add_argument("--time-limit", type=float, default=30.0)

    serve = sub.add_parser(
        "serve-batch",
        help="serve a batch of plan requests through the planner service")
    serve.add_argument("--requests", metavar="FILE", required=True,
                       help="JSON file: a list of request specs (compact "
                            "named-topology form or full PlanRequest dicts)")
    serve.add_argument("--cache-dir", default=None,
                       help="enable the on-disk schedule cache")
    serve.add_argument("--workers", type=int, default=None,
                       help="solve-pool width (default: cpu count)")
    serve.add_argument("--pool", dest="pool_kind", default="process",
                       choices=["process", "thread", "inline"],
                       help="solve-pool executor kind")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-request wall-clock budget in seconds")
    serve.add_argument("--check", action="store_true",
                       help="conformance-replay every served schedule; "
                            "non-conformant plans become errors")
    serve.add_argument("--trace", metavar="FILE", default=None,
                       help="write a span trace (JSONL) of every serve, "
                            "worker-process solve spans included")
    serve.add_argument("--metrics-file", metavar="FILE", default=None,
                       help="write the planner+pool metrics snapshot as "
                            "JSON (render with `teccl obs metrics`)")
    serve.add_argument("--responses-file", metavar="FILE", default=None,
                       help="write every PlanResponse (JSON list, explain "
                            "records included; render one with "
                            "`teccl explain --response`)")
    serve.add_argument("--flight-dir", default=None,
                       help="flight-recorder directory: enables auto "
                            "dumps on failure and `teccl explain --last`")

    explain = sub.add_parser(
        "explain",
        help="render a plan's provenance record (where the schedule came "
             "from and what each stage cost)")
    explain_src = explain.add_mutually_exclusive_group(required=True)
    explain_src.add_argument("--last", action="store_true",
                             help="the most recent successful serve's "
                                  "record (needs a flight dir: --flight-dir "
                                  "or $TECCL_FLIGHT_DIR)")
    explain_src.add_argument("--response", metavar="FILE",
                             help="a PlanResponse JSON document "
                                  "(see `serve-batch --responses-file`)")
    explain.add_argument("--flight-dir", default=None,
                         help="flight-recorder directory holding "
                              "last_explain.json (default: "
                              "$TECCL_FLIGHT_DIR)")
    explain.add_argument("--json", dest="as_json", action="store_true",
                         help="emit the raw record as JSON")

    cache = sub.add_parser(
        "cache", help="inspect or purge an on-disk schedule cache")
    cache.add_argument("--dir", dest="cache_dir", required=True)
    cache.add_argument("--action", choices=["stats", "list", "purge"],
                       default="stats")

    bench_sweep = sub.add_parser(
        "bench-sweep",
        help="hccl_demo-style message-size sweep: algbw/busbw per 2^k size")
    bench_sweep.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                             required=True)
    bench_sweep.add_argument("--chassis", type=int, default=1)
    bench_sweep.add_argument("--collective",
                             choices=["allgather", "alltoall", "allreduce"],
                             default="allgather")
    bench_sweep.add_argument("--min-size", type=float, default=4096,
                             help="smallest buffer in bytes (rounded up to "
                                  "a power of two)")
    bench_sweep.add_argument("--max-size", type=float, default=4194304,
                             help="largest buffer in bytes")
    bench_sweep.add_argument("--mip-gap", type=float, default=0.1)
    bench_sweep.add_argument("--time-limit", type=float, default=30.0)
    bench_sweep.add_argument("--output", default=None,
                             help="JSON results file (default: "
                                  "benchmarks/results/BENCH_fleet_sweep"
                                  ".json when run from the repo root)")

    fleet = sub.add_parser(
        "fleet", help="fleet control plane: telemetry-driven adaptation")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser(
        "run", help="run the adaptation daemon over a seeded scenario")
    fleet_run.add_argument("--topology", choices=sorted(_TOPOLOGIES),
                           required=True)
    fleet_run.add_argument("--chassis", type=int, default=1)
    fleet_run.add_argument("--jobs", default="alltoall",
                           help="comma-separated collectives, one fleet "
                                "job each (e.g. alltoall,allgather)")
    fleet_run.add_argument("--chunks", type=int, default=1)
    fleet_run.add_argument("--chunk-size", type=float, default=1e6)
    fleet_run.add_argument("--steps", type=int, default=8,
                           help="telemetry polls to run")
    fleet_run.add_argument("--seed", type=int, default=0)
    fleet_run.add_argument("--drift", type=float, default=0.0,
                           help="random-walk capacity drift sigma "
                                "(0 = stable fabric)")
    fleet_run.add_argument("--degrade", action="append", default=[],
                           metavar="SRC,DST,FACTOR,AT",
                           help="scripted degradation, repeatable "
                                "(e.g. 0,1,0.5,2)")
    fleet_run.add_argument("--fail", action="append", default=[],
                           metavar="SRC,DST,AT",
                           help="scripted link failure, repeatable")
    fleet_run.add_argument("--pool", dest="pool_kind", default="inline",
                           choices=["process", "thread", "inline"])
    fleet_run.add_argument("--mip-gap", type=float, default=0.1)
    fleet_run.add_argument("--time-limit", type=float, default=30.0)
    fleet_run.add_argument("--status-file", default=None,
                           help="write the final fleet status as JSON "
                                "(readable with `teccl fleet status`)")
    fleet_run.add_argument("--wal", metavar="FILE", default=None,
                           help="write-ahead log: every lifecycle "
                                "transition is durably journaled before "
                                "it applies (see repro.fleet.wal)")
    fleet_run.add_argument("--recover", action="store_true",
                           help="rehydrate the control plane from --wal "
                                "before running (crash recovery); "
                                "recovered schedules are re-vetted "
                                "through the conformance oracle")
    fleet_run.add_argument("--takeover", action="store_true",
                           help="fence a previous daemon generation and "
                                "take the --wal lease even if its holder "
                                "is still alive")
    fleet_run.add_argument("--trace", metavar="FILE", default=None,
                           help="write a span trace (JSONL) of the run: "
                                "poll/estimate/gate/replan per step")
    fleet_run.add_argument("--flight-dir", default=None,
                           help="flight-recorder directory: rollbacks, "
                                "recovery drops, firing alerts and SIGUSR2 "
                                "each dump the recent-event ring there")

    fleet_status = fleet_sub.add_parser(
        "status", help="render a status file written by `teccl fleet run`")
    fleet_status.add_argument("--status-file", required=True)

    obs = sub.add_parser(
        "obs", help="observability: inspect traces and metrics snapshots")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_summary = obs_sub.add_parser(
        "summary",
        help="per-phase totals, self time, and leaf coverage of a trace")
    obs_summary.add_argument("--trace", metavar="FILE", required=True,
                             help="JSONL trace (see `synth --trace`)")
    obs_summary.add_argument("--top", type=int, default=20,
                             help="phases to show (by total time)")

    obs_export = obs_sub.add_parser(
        "export-trace",
        help="convert a JSONL trace to Chrome trace-event JSON "
             "(loadable in chrome://tracing or https://ui.perfetto.dev)")
    obs_export.add_argument("--trace", metavar="FILE", required=True)
    obs_export.add_argument("--output", metavar="FILE", required=True)

    obs_metrics = obs_sub.add_parser(
        "metrics",
        help="render a metrics snapshot (see `serve-batch --metrics-file`)")
    obs_metrics.add_argument("--file", metavar="FILE", required=True,
                             help="metrics snapshot JSON")
    obs_metrics.add_argument("--format", dest="metrics_format",
                             choices=["table", "prometheus", "json"],
                             default="table")

    obs_dump = obs_sub.add_parser(
        "dump",
        help="flight recorder: render a dump file, or dump this "
             "process's ring on demand")
    obs_dump.add_argument("--file", metavar="FILE", default=None,
                          help="an existing flight dump (JSONL) to render")
    obs_dump.add_argument("--output", metavar="FILE", default=None,
                          help="dump the in-process recorder ring here "
                               "(then render it)")
    obs_dump.add_argument("--limit", type=int, default=None,
                          help="show only the newest N events")
    obs_dump.add_argument("--json", dest="as_json", action="store_true",
                          help="emit raw event records as JSON lines")

    obs_alerts = obs_sub.add_parser(
        "alerts",
        help="evaluate SLO alert rules against a metrics snapshot, or "
             "render the alerts a fleet status file recorded")
    alerts_src = obs_alerts.add_mutually_exclusive_group(required=True)
    alerts_src.add_argument("--metrics-file", metavar="FILE",
                            help="metrics snapshot JSON (see "
                                 "`serve-batch --metrics-file`)")
    alerts_src.add_argument("--status-file", metavar="FILE",
                            help="fleet status JSON: render the alerts "
                                 "its last evaluation recorded")
    obs_alerts.add_argument("--rules", metavar="FILE", default=None,
                            help="JSON list of alert-rule dicts to use "
                                 "instead of the built-in SLO set")
    obs_alerts.add_argument("--json", dest="as_json", action="store_true",
                            help="emit firing alerts as JSON")
    return parser


def _cmd_topologies() -> int:
    for name, builder in sorted(_TOPOLOGIES.items()):
        topo = builder(2) if name != "dgx1" else builder(1)
        print(f"{name:<10} e.g. {topo!r}")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    if not args.trace:
        return _run_synth(args)
    from repro import obs

    obs.configure(args.trace)
    try:
        code = _run_synth(args)
    finally:
        obs.disable()
    summary = obs.summarize(obs.read_events(args.trace))
    print(f"trace        : {args.trace} ({summary['num_spans']} spans, "
          f"leaf coverage {100 * summary['coverage']:.1f}%)")
    return code


def _run_synth(args: argparse.Namespace) -> int:
    from repro.solver import SolverOptions

    builder = _TOPOLOGIES[args.topology]
    topo = builder(args.chassis) if args.topology != "dgx1" else builder(1)
    demand = _COLLECTIVES[args.collective](topo.gpus, args.chunks)
    config = TecclConfig(
        chunk_bytes=args.chunk_size,
        num_epochs=args.epochs,
        epoch_mode=EpochMode(args.epoch_mode),
        switch_model=SwitchModel(args.switch_model),
        solver=SolverOptions(time_limit=args.time_limit,
                             mip_gap=args.mip_gap,
                             symmetry=args.symmetry))
    if getattr(args, "partitions", 0):
        return _run_synth_pop(args, topo, demand, config)
    result = synthesize(topo, demand, config, method=Method(args.method))
    print(f"topology     : {topo!r}")
    print(f"demand       : {demand!r}")
    print(f"method       : {result.method.value}")
    print(f"epoch (tau)  : {result.plan.tau * 1e6:.3f} us")
    print(f"horizon (K)  : {result.plan.num_epochs} epochs")
    print(f"solver time  : {result.solve_time:.3f} s")
    print(f"finish time  : {result.finish_time * 1e6:.3f} us")
    schedule = result.schedule
    print(f"schedule     : {schedule!r}")
    from repro.core.schedule import Schedule as _IntegralSchedule

    if args.events and isinstance(schedule, _IntegralSchedule):
        from repro.simulate import run_events

        report = run_events(schedule, result.topology_used,
                            result.demand_used)
        print(f"event finish : {report.finish_time * 1e6:.3f} us")
    if args.timeline and isinstance(schedule, _IntegralSchedule):
        from repro.analysis.timeline import render_timeline

        print(render_timeline(schedule))
    if args.export:
        from repro.msccl import to_msccl_xml

        work = result.hyper.topology if result.hyper else topo
        xml = to_msccl_xml(schedule, work, demand,
                           name=f"{args.topology}-{args.collective}",
                           collective=args.collective)
        with open(args.export, "w", encoding="utf-8") as handle:
            handle.write(xml)
        print(f"exported     : {args.export}")
    if args.export_json:
        import json

        with open(args.export_json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"exported     : {args.export_json}")
    if args.check:
        from repro.simulate import check_result

        report = check_result(result, config=config)
        _print_conformance(report)
        if not report.ok:
            return 1
    return 0


def _run_synth_pop(args: argparse.Namespace, topo, demand, config) -> int:
    """The `synth --partitions N` route: POP-partitioned LP solving."""
    from repro.core.pop import solve_lp_pop

    outcome = solve_lp_pop(topo, demand, config,
                           num_partitions=args.partitions,
                           parallel=args.parallel, jobs=args.jobs)
    print(f"topology     : {topo!r}")
    print(f"demand       : {demand!r}")
    print(f"method       : pop-lp ({args.partitions} partitions"
          f"{', parallel' if args.parallel else ''})")
    print(f"epoch (tau)  : {outcome.plan.tau * 1e6:.3f} us")
    print(f"horizon (K)  : {outcome.plan.num_epochs} epochs "
          f"({outcome.attempts} attempt(s))")
    print(f"solver time  : {outcome.parallel_solve_time:.3f} s critical "
          f"path ({outcome.serial_solve_time:.3f} s summed)")
    print(f"finish time  : {outcome.finish_time * 1e6:.3f} us")
    print(f"schedule     : {outcome.schedule!r}")
    if args.export_json:
        import json

        with open(args.export_json, "w", encoding="utf-8") as handle:
            json.dump(outcome.schedule.to_dict(), handle, indent=2)
        print(f"exported     : {args.export_json}")
    if args.check:
        from repro.simulate import check_flow

        report = check_flow(outcome.schedule, topo, demand, outcome.plan,
                            config=config)
        _print_conformance(report)
        if not report.ok:
            return 1
    return 0


def _print_conformance(report) -> None:
    """Render a ConformanceReport the way the synth/verify verbs share."""
    verdict = "conformant" if report.ok else "VIOLATIONS"
    print(f"conformance  : {verdict}")
    print(f"replayed     : {report.finish_time * 1e6:.3f} us")
    if report.claimed_finish_time is not None:
        print(f"claimed      : {report.claimed_finish_time * 1e6:.3f} us "
              f"(delta {report.finish_delta * 1e6:+.3f} us)")
    if report.utilization:
        peak = max(report.utilization.items(), key=lambda kv: kv[1])
        print(f"utilization  : peak {100 * peak[1]:.1f}% on link "
              f"{peak[0][0]}->{peak[0][1]}")
    for kind, count in sorted(report.counts_by_kind().items()):
        print(f"  {kind:<12}: {count}")
    for violation in report.violations[:10]:
        print(f"  ! {violation}")
    if len(report.violations) > 10:
        print(f"  ... and {len(report.violations) - 10} more")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import chunk_size_sweep
    from repro.solver import SolverOptions

    builder = _TOPOLOGIES[args.topology]
    topo = builder(args.chassis) if args.topology != "dgx1" else builder(1)
    demand = _COLLECTIVES[args.collective](topo.gpus, 1)
    sizes = [float(s) for s in args.chunk_sizes.split(",") if s.strip()]
    base = TecclConfig(
        chunk_bytes=sizes[0],
        solver=SolverOptions(mip_gap=args.mip_gap,
                             time_limit=args.time_limit))
    result = chunk_size_sweep(topo, demand, base, sizes)
    print(f"{'chunk bytes':>14} {'finish us':>12} {'solve s':>10} {'K':>5}")
    for point in result.points:
        if point.infeasible:
            print(f"{point.value:>14.4g} {'X':>12} {'X':>10} {'X':>5}")
        else:
            print(f"{point.value:>14.4g} {point.finish_time * 1e6:>12.3f} "
                  f"{point.solve_time:>10.3f} {point.num_epochs:>5}")
    best = result.best
    print(f"best chunk size: {best.value:g} bytes "
          f"({best.finish_time * 1e6:.3f} us)")
    return 0


def _build_instance(args: argparse.Namespace):
    """(topology, demand) from the shared --topology/--collective flags."""
    builder = _TOPOLOGIES[args.topology]
    size = getattr(args, "chassis", 1)
    topo = builder(size) if args.topology != "dgx1" else builder(1)
    chunks = getattr(args, "chunks", 1)
    demand = _COLLECTIVES[args.collective](topo.gpus, chunks)
    return topo, demand


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import (blink_allgather, ring_allgather,
                                 shortest_path_schedule, tree_allgather)
    from repro.core.schedule import Schedule as _IntegralSchedule
    from repro.simulate import run_events
    from repro.solver import SolverOptions

    topo, demand = _build_instance(args)
    config = TecclConfig(
        chunk_bytes=args.chunk_size,
        solver=SolverOptions(time_limit=args.time_limit,
                             mip_gap=args.mip_gap))

    rows: list[tuple[str, float]] = []

    def measure(name: str, schedule) -> None:
        try:
            finish = run_events(schedule, topo, demand).finish_time
        except ReproError as exc:
            print(f"{name:<16} failed: {exc}", file=sys.stderr)
            return
        rows.append((name, finish))

    result = synthesize(topo, demand, config)
    if isinstance(result.schedule, _IntegralSchedule) and not result.hyper:
        measure("te-ccl", result.schedule)
    else:
        rows.append(("te-ccl", result.finish_time))

    measure("shortest-path", shortest_path_schedule(topo, demand, config))
    if args.collective == "allgather":
        try:
            measure("ring", ring_allgather(topo, config, args.chunks))
        except TopologyError as exc:
            print(f"{'ring':<16} skipped: {exc}", file=sys.stderr)
        measure("binomial-trees", tree_allgather(topo, config, args.chunks))
        measure("blink-trees", blink_allgather(topo, config, args.chunks))

    rows.sort(key=lambda r: r[1])
    best = rows[0][1]
    print(f"{'scheduler':<16} {'finish us':>12} {'vs best':>9}")
    for name, finish in rows:
        print(f"{name:<16} {finish * 1e6:>12.3f} {finish / best:>8.2f}x")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    if args.schedule is not None:
        return _cmd_verify_schedule(args)
    from repro.errors import ServiceError
    from repro.msccl import verify_program

    if args.topology is None:
        raise ServiceError("--xml verification needs --topology")
    topo, demand = _build_instance(args)
    with open(args.xml, "r", encoding="utf-8") as handle:
        document = handle.read()
    report = verify_program(document, topo, demand,
                            chunk_bytes=args.chunk_size)
    print(f"program      : {args.xml}")
    print(f"instructions : {report.fired}/{report.total} fired")
    print(f"finish time  : {report.finish_time * 1e6:.3f} us")
    print("delivery     : all demanded chunks delivered")
    return 0


def _cmd_verify_schedule(args: argparse.Namespace) -> int:
    """Replay a serialised synthesis result through the conformance engine."""
    import json

    from repro.core.solve import SynthesisResult
    from repro.errors import ModelError
    from repro.simulate import check_result

    with open(args.schedule, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ModelError(
                f"invalid JSON in {args.schedule}: {exc}") from exc
    result = SynthesisResult.from_dict(document)
    report = check_result(result)
    print(f"schedule     : {args.schedule}")
    print(f"method       : {result.method.value}")
    _print_conformance(report)
    return 0 if report.ok else 1


def _cmd_impact(args: argparse.Namespace) -> int:
    from repro.failures import failure_impact
    from repro.solver import SolverOptions

    topo, demand = _build_instance(args)
    config = TecclConfig(
        chunk_bytes=args.chunk_size,
        solver=SolverOptions(time_limit=args.time_limit,
                             mip_gap=args.mip_gap))
    rows = failure_impact(topo, demand, config)
    print(f"{'failed link':<14} {'finish us':>12} {'slowdown':>9} "
          f"{'survivable':>11}")
    for row in rows[:args.top]:
        finish = ("inf" if row.finish_time == float("inf")
                  else f"{row.finish_time * 1e6:.3f}")
        print(f"{row.link[0]}->{row.link[1]:<11} {finish:>12} "
              f"{row.slowdown:>8.2f}x {str(row.survivable):>11}")
    return 0


def _cmd_upgrade(args: argparse.Namespace) -> int:
    from repro.solver import SolverOptions
    from repro.toposearch import rank_link_upgrades

    topo, demand = _build_instance(args)
    config = TecclConfig(
        chunk_bytes=args.chunk_size,
        solver=SolverOptions(time_limit=args.time_limit,
                             mip_gap=args.mip_gap))
    options = rank_link_upgrades(topo, demand, config, factor=args.factor)
    print(f"{'upgraded link':<14} {'finish us':>12} {'improvement':>12}")
    for option in options[:args.top]:
        print(f"{option.link[0]}->{option.link[1]:<11} "
              f"{option.finish_time * 1e6:>12.3f} "
              f"{100 * option.improvement:>11.2f}%")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.collectives import synthesize_workload
    from repro.solver import SolverOptions

    builder = _TOPOLOGIES[args.topology]
    topo = builder(args.chassis) if args.topology != "dgx1" else builder(1)
    job = _WORKLOADS[args.job](topo.gpus)
    config = TecclConfig(
        chunk_bytes=1.0,  # per-call sizes override this
        solver=SolverOptions(mip_gap=args.mip_gap,
                             time_limit=args.time_limit))
    report = synthesize_workload(topo, job, config)
    print(f"{'collective':<18} {'phase':<9} {'MB':>9} {'method':<6} "
          f"{'finish us':>11} {'reused':>7}")
    for item in report.scheduled:
        print(f"{item.call.name:<18} {item.call.phase:<9} "
              f"{item.call.total_bytes / 1e6:>9.2f} "
              f"{item.synthesis.method.value:<6} "
              f"{item.finish_time * 1e6:>11.2f} "
              f"{'yes' if item.reused else 'no':>7}")
    print(f"step total   : {report.total_time * 1e6:.2f} us")
    print(f"solver time  : {report.solve_time:.2f} s "
          f"({100 * report.dedup_ratio:.0f}% of calls reused a synthesis)")
    return 0


def _request_from_spec(spec: dict, index: int):
    """One serve-batch spec → PlanRequest.

    Two dialects: a *full* spec (``topology`` is a dict) is parsed as a
    serialised PlanRequest; a *compact* spec names a built-in topology and
    collective the way ``teccl synth`` flags do.
    """
    from repro.errors import ServiceError
    from repro.service import PlanRequest
    from repro.solver import SolverOptions

    if not isinstance(spec, dict):
        raise ServiceError(f"request #{index}: spec must be an object")
    if isinstance(spec.get("topology"), dict):
        return PlanRequest.from_dict(spec)
    try:
        topo_name = spec["topology"]
        builder = _TOPOLOGIES[topo_name]
    except KeyError:
        raise ServiceError(
            f"request #{index}: unknown topology "
            f"{spec.get('topology')!r}") from None
    topo = builder(int(spec.get("chassis", 1))) if topo_name != "dgx1" \
        else builder(1)
    collective = spec.get("collective", "allgather")
    if collective not in _COLLECTIVES:
        raise ServiceError(
            f"request #{index}: unknown collective {collective!r}")
    demand = _COLLECTIVES[collective](topo.gpus, int(spec.get("chunks", 1)))
    config = TecclConfig(
        chunk_bytes=float(spec.get("chunk_size", 1e6)),
        num_epochs=(None if spec.get("epochs") is None
                    else int(spec["epochs"])),
        epoch_mode=EpochMode(spec.get("epoch_mode",
                                      EpochMode.FASTEST_LINK.value)),
        switch_model=SwitchModel(spec.get("switch_model",
                                          SwitchModel.COPY.value)),
        solver=SolverOptions(
            time_limit=(None if spec.get("time_limit") is None
                        else float(spec["time_limit"])),
            mip_gap=float(spec.get("mip_gap", 0.0))))
    tag = str(spec.get("tag", f"{topo_name}/{collective}#{index}"))
    return PlanRequest(topology=topo, demand=demand, config=config,
                       method=Method(spec.get("method", "auto")), tag=tag)


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError
    from repro.obs import recorder as _flight
    from repro.service import Planner

    if args.flight_dir:
        _flight.set_dump_dir(args.flight_dir)
    try:
        with open(args.requests, "r", encoding="utf-8") as handle:
            specs = json.load(handle)
    except OSError as exc:
        raise ServiceError(f"cannot read --requests file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ServiceError(
            f"invalid JSON in {args.requests}: {exc}") from exc
    if not isinstance(specs, list):
        raise ServiceError("--requests file must hold a JSON list")
    requests = [_request_from_spec(spec, i) for i, spec in enumerate(specs)]
    with Planner(executor=args.pool_kind, max_workers=args.workers,
                 cache_dir=args.cache_dir, timeout=args.timeout,
                 check_conformance=args.check,
                 sink=args.trace) as planner:
        responses = planner.plan_batch(requests)
        stats = planner.stats()
        latency = planner.serve_latency()
        metrics = planner.metrics_snapshot() if args.metrics_file else None
    print(f"{'tag':<28} {'served':<9} {'finish us':>12} {'serve ms':>9}")
    failures = 0
    for response in responses:
        served = ("cache" if response.cache_hit
                  else "coalesce" if response.coalesced else "solve")
        if response.ok:
            finish = f"{response.result.finish_time * 1e6:.3f}"
        else:
            finish, served, failures = "X", "error", failures + 1
        print(f"{response.tag:<28} {served:<9} {finish:>12} "
              f"{response.serve_time * 1e3:>9.2f}")
        if not response.ok:
            print(f"  error: {response.error}", file=sys.stderr)
    print(f"requests     : {stats['requests']}")
    print(f"cache        : {stats['hits']} hits / {stats['misses']} misses")
    print(f"solves       : {stats['solves']} "
          f"({stats['coalesced']} coalesced)")
    if args.check:
        print(f"conformance  : {stats['conformance_checks']} checked / "
              f"{stats['conformance_failures']} failed")
    if latency["count"]:
        print(f"latency      : p50 {latency['p50'] * 1e3:.2f} ms / "
              f"p95 {latency['p95'] * 1e3:.2f} ms / "
              f"p99 {latency['p99'] * 1e3:.2f} ms")
    if metrics is not None:
        try:
            with open(args.metrics_file, "w", encoding="utf-8") as handle:
                json.dump(metrics, handle, indent=2)
        except OSError as exc:
            raise ServiceError(
                f"cannot write --metrics-file: {exc}") from exc
        print(f"metrics      : {args.metrics_file}")
    if args.responses_file:
        try:
            with open(args.responses_file, "w", encoding="utf-8") as handle:
                json.dump([r.to_dict() for r in responses], handle, indent=2)
        except OSError as exc:
            raise ServiceError(
                f"cannot write --responses-file: {exc}") from exc
        print(f"responses    : {args.responses_file}")
    if args.trace:
        print(f"trace        : {args.trace}")
    return 1 if failures else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ServiceError
    from repro.service import ScheduleCache

    # An inspection verb must not invent the directory it is inspecting
    # (ScheduleCache creates missing directories for serving use).
    if not Path(args.cache_dir).expanduser().is_dir():
        raise ServiceError(
            f"cache directory {args.cache_dir!r} does not exist")
    cache = ScheduleCache(directory=args.cache_dir)
    if args.action == "purge":
        print(f"purged       : {cache.purge()} entries")
        return 0
    entries = cache.entries()
    if args.action == "list":
        print(f"{'fingerprint':<16} {'bytes':>10} {'stale':>6}  meta")
        for entry in entries:
            print(f"{entry.fingerprint[:16]:<16} {entry.size_bytes:>10} "
                  f"{str(entry.stale):>6}  {entry.meta}")
        return 0
    total = sum(e.size_bytes for e in entries)
    stale = sum(1 for e in entries if e.stale)
    print(f"directory    : {args.cache_dir}")
    print(f"entries      : {len(entries)} ({stale} stale)")
    print(f"total bytes  : {total}")
    return 0


def _sweep_sizes(min_size: float, max_size: float) -> list[int]:
    """The 2^k buffer sizes between min and max, hccl_demo-style."""
    from repro.errors import ServiceError

    if min_size <= 0 or max_size < min_size:
        raise ServiceError("need 0 < --min-size <= --max-size")
    import math

    low = math.ceil(math.log2(min_size))
    high = math.floor(math.log2(max_size))
    if high < low:
        raise ServiceError(
            "no power-of-two size between --min-size and --max-size")
    return [2 ** k for k in range(low, high + 1)]


def _bench_sweep_config(topo, chunk_bytes: float, args) -> TecclConfig:
    """Per-size config with an α-guard epoch multiplier.

    Same guard idea as the benches' ``auto_epoch_multiplier`` (coarsen the
    grid when α would span more than ~10 epochs), computed on the raw
    fabric because the sweep solves under the COPY switch model — no
    hyper-edge rewrite is involved here.
    """
    from repro.solver import SolverOptions

    base_tau = chunk_bytes / topo.max_capacity
    alpha = topo.max_alpha
    multiplier = 1.0 if alpha <= 10 * base_tau else alpha / (10 * base_tau)
    return TecclConfig(
        chunk_bytes=chunk_bytes, epoch_multiplier=multiplier,
        solver=SolverOptions(mip_gap=args.mip_gap,
                             time_limit=args.time_limit))


def _cmd_bench_sweep(args: argparse.Namespace) -> int:
    """Message-size sweep reporting algbw/busbw per size (hccl_demo-style).

    algbw = buffer/finish; busbw applies the collective's traffic factor
    ((N−1)/N for allgather/alltoall, 2(N−1)/N for allreduce) so numbers
    are comparable across GPU counts — the convention NCCL/hccl_demo use.
    """
    import json
    import pathlib

    from repro.collectives import (allgather_plan, alltoall_plan,
                                   synthesize_allreduce)

    builder = _TOPOLOGIES[args.topology]
    topo = builder(args.chassis) if args.topology != "dgx1" else builder(1)
    n = topo.num_gpus
    rows = []
    print(f"{'size':>12} {'finish us':>12} {'algbw GB/s':>11} "
          f"{'busbw GB/s':>11} {'solve s':>8}")
    for size in _sweep_sizes(args.min_size, args.max_size):
        if args.collective == "allreduce":
            config = _bench_sweep_config(topo, size / n, args)
            outcome = synthesize_allreduce(topo, config)
            finish, solve = outcome.finish_time, outcome.solve_time
            busbw = outcome.bus_bandwidth(n, size)
        else:
            plan = (allgather_plan(n, size)
                    if args.collective == "allgather"
                    else alltoall_plan(n, size))
            demand = _COLLECTIVES[args.collective](topo.gpus, 1)
            config = _bench_sweep_config(topo, plan.chunk_bytes, args)
            result = synthesize(topo, demand, config)
            finish, solve = result.finish_time, result.solve_time
            busbw = (size / finish) * (n - 1) / n
        algbw = size / finish
        rows.append({"size_bytes": size, "finish_time": finish,
                     "algbw": algbw, "busbw": busbw, "solve_time": solve})
        print(f"{size:>12} {finish * 1e6:>12.3f} {algbw / 1e9:>11.3f} "
              f"{busbw / 1e9:>11.3f} {solve:>8.2f}")
    output = args.output
    if output is None:
        output = str(pathlib.Path("benchmarks") / "results"
                     / "BENCH_fleet_sweep.json")
    from repro.errors import ServiceError

    path = pathlib.Path(output)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "topology": topo.name, "gpus": n,
            "collective": args.collective, "rows": rows,
            "note": "hccl_demo-style sweep: algbw = buffer/finish, busbw "
                    "applies the collective's traffic factor",
        }, indent=2) + "\n", encoding="utf-8")
    except OSError as exc:
        raise ServiceError(f"cannot write --output: {exc}") from exc
    print(f"published    : {path}")
    return 0


def _parse_fleet_events(args: argparse.Namespace):
    """--degrade/--fail flags → scripted telemetry events."""
    from repro.errors import ServiceError
    from repro.fleet import LinkEvent

    events = []
    for spec in args.degrade:
        parts = spec.split(",")
        if len(parts) != 4:
            raise ServiceError(
                f"--degrade wants SRC,DST,FACTOR,AT, got {spec!r}")
        src, dst, factor, at = parts
        try:
            events.append(LinkEvent(at=float(at),
                                    link=(int(src), int(dst)),
                                    factor=float(factor)))
        except ValueError as exc:
            raise ServiceError(f"bad --degrade {spec!r}: {exc}") from exc
    for spec in args.fail:
        parts = spec.split(",")
        if len(parts) != 3:
            raise ServiceError(f"--fail wants SRC,DST,AT, got {spec!r}")
        src, dst, at = parts
        try:
            events.append(LinkEvent(at=float(at),
                                    link=(int(src), int(dst)), down=True))
        except ValueError as exc:
            raise ServiceError(f"bad --fail {spec!r}: {exc}") from exc
    return events


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.fleet import (FleetJob, FleetOrchestrator, SyntheticTelemetry,
                             WriteAheadLog, atomic_write_json)
    from repro.obs import recorder as _flight
    from repro.service import Planner
    from repro.simulate import DriftModel
    from repro.solver import SolverOptions

    if args.recover and not args.wal:
        raise ServiceError("--recover needs --wal (nothing to recover from)")
    if args.flight_dir:
        _flight.set_dump_dir(args.flight_dir)
        if _flight.install_signal_dump():
            print(f"flight       : {args.flight_dir} "
                  "(SIGUSR2 dumps the ring)")
        else:
            print(f"flight       : {args.flight_dir}")
    builder = _TOPOLOGIES[args.topology]
    topo = builder(args.chassis) if args.topology != "dgx1" else builder(1)
    events = _parse_fleet_events(args)
    job_names = [name.strip() for name in args.jobs.split(",")
                 if name.strip()]
    for name in job_names:
        if name not in _COLLECTIVES:
            raise ServiceError(f"unknown collective {name!r} in --jobs")
    source = SyntheticTelemetry(
        topo, events=events, seed=args.seed,
        drift=DriftModel(sigma=args.drift) if args.drift > 0 else None)
    config = TecclConfig(
        chunk_bytes=args.chunk_size,
        solver=SolverOptions(mip_gap=args.mip_gap,
                             time_limit=args.time_limit))
    wal = None
    if args.wal:
        wal = WriteAheadLog(args.wal)
        generation = wal.attach_lease(takeover=args.takeover)
        print(f"wal          : {args.wal} (generation {generation})")
    with Planner(executor=args.pool_kind, sink=args.trace) as planner:
        fleet = FleetOrchestrator(topo, source, planner, wal=wal)
        if args.recover:
            if wal.has_state():
                provenance = fleet.recover()
                print(f"recovered    : {provenance['entries_recovered']} "
                      f"schedule(s), {len(provenance['entries_dropped'])} "
                      f"dropped, {provenance['steps_completed']} steps "
                      "already completed")
            else:
                print("recovered    : nothing durable on disk; "
                      "starting fresh")
        recovered_jobs = set(fleet.controller.registry.active_jobs())
        admitted_jobs = set(fleet.controller.jobs)
        for index, name in enumerate(job_names):
            job_name = f"{name}#{index}"
            if job_name in recovered_jobs:
                entry = fleet.controller.registry.active(job_name)
                print(f"resumed      : {job_name} "
                      f"(finish {entry.result.finish_time * 1e6:.3f} us, "
                      "recovered from WAL)")
                continue
            if job_name in admitted_jobs:
                # recovered, but the incumbent was dropped at conformance
                # re-vetting: the job is already admitted (re-admission
                # would refuse), so plan it fresh instead
                entry = fleet.plan_missing([job_name])[job_name]
                print(f"replanned    : {job_name} "
                      f"(finish {entry.result.finish_time * 1e6:.3f} us, "
                      "recovered incumbent dropped)")
                continue
            job = FleetJob(name=job_name,
                           demand=_COLLECTIVES[name](topo.gpus, args.chunks),
                           config=config)
            entry = fleet.admit(job)
            print(f"admitted     : {job.name} "
                  f"(finish {entry.result.finish_time * 1e6:.3f} us, "
                  f"method {entry.result.method.value})")
        # recovered jobs outside --jobs whose incumbent was dropped would
        # otherwise stay scheduleless forever (the adaptation loop only
        # replans incumbents)
        for job_name, entry in sorted(fleet.plan_missing().items()):
            print(f"replanned    : {job_name} "
                  f"(finish {entry.result.finish_time * 1e6:.3f} us, "
                  "recovered incumbent dropped)")
        for _ in range(args.steps):
            for decision in fleet.step():
                print(f"  {decision}")
        status = fleet.status()
        stats = status["stats"]
    if wal is not None:
        wal.close()
    fabric = status["fabric"]
    print(f"fabric       : {fabric['health']['healthy']} healthy / "
          f"{fabric['health']['degraded']} degraded / "
          f"{fabric['health']['down']} down")
    print(f"transitions  : {stats['transitions']}")
    print(f"adaptations  : {stats['replans']} replans, {stats['kept']} "
          f"kept, {stats['rollbacks']} rollbacks, {stats['failed']} failed")
    print(f"solve budget : {stats['adaptation_solve_time']:.3f} s "
          "spent adapting")
    for doc in status.get("alerts", []):
        print(f"  alert      : [{doc.get('severity', '?')}] "
              f"{doc.get('name')}: {doc.get('metric')} = "
              f"{doc.get('value', 0.0):.6g} {doc.get('op')} "
              f"{doc.get('threshold', 0.0):g}")
    if args.trace:
        print(f"trace        : {args.trace}")
    if args.status_file:
        try:
            # atomic: a concurrent `teccl fleet status` (or a crash
            # mid-dump) sees the previous complete file, never half a one
            atomic_write_json(args.status_file, status)
        except OSError as exc:
            raise ServiceError(
                f"cannot write --status-file: {exc}") from exc
        print(f"status       : {args.status_file}")
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError

    try:
        with open(args.status_file, "r", encoding="utf-8") as handle:
            status = json.load(handle)
    except OSError as exc:
        raise ServiceError(f"cannot read status file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ServiceError(
            f"invalid JSON in {args.status_file}: {exc}") from exc
    recovery = status.get("recovery")
    if recovery:
        dropped = recovery.get("entries_dropped", [])
        print(f"recovery     : generation {recovery.get('generation')}, "
              f"{recovery.get('entries_recovered', 0)} schedule(s) "
              f"rehydrated, {recovery.get('steps_completed', 0)} steps "
              "resumed"
              + (" (from snapshot)" if recovery.get("snapshot") else ""))
        for drop in dropped:
            print(f"  dropped    : {drop.get('job')} seq "
                  f"{drop.get('seq')} ({drop.get('reason')})")
    wal = status.get("wal")
    if wal:
        print(f"wal          : {wal.get('path')} "
              f"(generation {wal.get('generation')}, "
              f"{wal.get('records_written', 0)} records, "
              f"{wal.get('compactions', 0)} compactions"
              + (", FENCED" if wal.get("fenced") else "") + ")")
    fabric = status.get("fabric", {})
    health = fabric.get("health", {})
    print(f"fabric       : {fabric.get('topology')} "
          f"({fabric.get('links')} links)")
    print(f"health       : {health.get('healthy', 0)} healthy / "
          f"{health.get('degraded', 0)} degraded / "
          f"{health.get('down', 0)} down")
    for link, factor in sorted(fabric.get("degraded", {}).items()):
        print(f"  degraded   : {link} at {100 * factor:.0f}% capacity")
    for link in fabric.get("down", []):
        print(f"  down       : {link}")
    active = status.get("registry", {}).get("active", {})
    print(f"{'job':<20} {'status':<8} {'finish us':>12} {'conformant':>11}")
    for name, entry in sorted(active.items()):
        print(f"{name:<20} {entry['status']:<8} "
              f"{entry['finish_time'] * 1e6:>12.3f} "
              f"{str(entry['conformance_ok']):>11}")
    stats = status.get("stats", {})
    print(f"adaptations  : {stats.get('replans', 0)} replans, "
          f"{stats.get('kept', 0)} kept, "
          f"{stats.get('rollbacks', 0)} rollbacks")
    alerts = status.get("alerts", [])
    if alerts:
        print(f"alerts       : {len(alerts)} firing")
        for doc in alerts:
            print(f"  [{doc.get('severity', '?'):<8}] {doc.get('name')}: "
                  f"{doc.get('metric')} = {doc.get('value', 0.0):.6g} "
                  f"{doc.get('op')} {doc.get('threshold', 0.0):g}")
    latency = status.get("serve_latency", {})
    if latency.get("count"):
        print(f"serve latency: p50 {latency['p50'] * 1e3:.2f} ms / "
              f"p95 {latency['p95'] * 1e3:.2f} ms / "
              f"p99 {latency['p99'] * 1e3:.2f} ms "
              f"({latency['count']} serves)")
    for line in status.get("decisions", []):
        print(f"  {line}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.errors import ObservabilityError

    if args.obs_command == "summary":
        summary = obs.summarize(obs.read_events(args.trace))
        print(obs.format_summary(summary, top=args.top))
        return 0
    if args.obs_command == "export-trace":
        events = obs.read_events(args.trace)
        path = obs.write_chrome_trace(events, args.output)
        spans = sum(1 for e in events if e.get("kind") == "span")
        print(f"exported     : {path} ({spans} spans; load in "
              "chrome://tracing or https://ui.perfetto.dev)")
        return 0
    if args.obs_command == "dump":
        return _cmd_obs_dump(args)
    if args.obs_command == "alerts":
        return _cmd_obs_alerts(args)
    # metrics: render a snapshot written by `serve-batch --metrics-file`
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read metrics file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"invalid JSON in {args.file}: {exc}") from exc
    if not isinstance(snapshot, dict):
        raise ObservabilityError(
            "metrics file must hold a JSON object (registry snapshot)")
    if args.metrics_format == "json":
        print(json.dumps(snapshot, indent=2))
    elif args.metrics_format == "prometheus":
        print(obs.prometheus_from_snapshot(snapshot), end="")
    else:
        print(f"{'metric':<44} {'type':<10} value")
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry.get("type", "?")
            if kind == "histogram":
                value = (f"count {entry.get('count', 0)} "
                         f"p50 {entry.get('p50', 0.0):.6g} "
                         f"p95 {entry.get('p95', 0.0):.6g} "
                         f"p99 {entry.get('p99', 0.0):.6g}")
            else:
                value = f"{entry.get('value', 0.0):g}"
            print(f"{name:<44} {kind:<10} {value}")
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.errors import ObservabilityError

    if (args.file is None) == (args.output is None):
        raise ObservabilityError(
            "obs dump needs exactly one of --file (render an existing "
            "dump) or --output (dump this process's ring)")
    if args.output is not None:
        path = obs.get_recorder().dump(args.output, reason="manual")
        print(f"dumped       : {path}")
        events = obs.read_dump(path)
    else:
        events = obs.read_dump(args.file)
    if args.as_json:
        for event in events[-args.limit:] if args.limit else events:
            print(json.dumps(event, sort_keys=True))
    else:
        print(obs.format_flight(events, limit=args.limit))
    return 0


def _load_json(path: str, what: str) -> object:
    import json

    from repro.errors import ObservabilityError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise ObservabilityError(f"cannot read {what}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"invalid JSON in {path}: {exc}") from exc


def _cmd_obs_alerts(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ObservabilityError
    from repro.obs.alerts import AlertEngine, AlertRule

    if args.status_file is not None:
        status = _load_json(args.status_file, "status file")
        if not isinstance(status, dict):
            raise ObservabilityError("status file must hold a JSON object")
        firing = status.get("alerts", [])
        if args.as_json:
            print(json.dumps(firing, indent=2))
        elif not firing:
            print("alerts       : none firing")
        else:
            for doc in firing:
                print(f"  [{doc.get('severity', '?'):<8}] "
                      f"{doc.get('name')}: {doc.get('metric')} = "
                      f"{doc.get('value', 0.0):.6g} {doc.get('op')} "
                      f"{doc.get('threshold', 0.0):g}")
        return 1 if firing else 0
    snapshot = _load_json(args.metrics_file, "metrics file")
    if not isinstance(snapshot, dict):
        raise ObservabilityError(
            "metrics file must hold a JSON object (registry snapshot)")
    rules = None
    if args.rules:
        docs = _load_json(args.rules, "rules file")
        if not isinstance(docs, list):
            raise ObservabilityError("--rules file must hold a JSON list")
        rules = [AlertRule.from_dict(doc) for doc in docs]
    engine = AlertEngine(rules)
    firing = engine.evaluate(snapshot)
    if args.as_json:
        print(json.dumps([alert.to_dict() for alert in firing], indent=2))
    else:
        print(f"rules        : {len(engine.rules)} evaluated, "
              f"{len(firing)} firing")
        for alert in firing:
            print(f"  {alert.render()}")
    return 1 if firing else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.errors import ObservabilityError
    from repro.obs.explain import ExplainRecord

    if args.last:
        docs = [obs.load_last_explain(args.flight_dir)]
    else:
        loaded = _load_json(args.response, "response file")
        # accept a bare explain record, one PlanResponse document, or the
        # JSON list `serve-batch --responses-file` writes
        responses = loaded if isinstance(loaded, list) else [loaded]
        docs = []
        for response in responses:
            if not isinstance(response, dict):
                raise ObservabilityError(
                    "response file must hold PlanResponse JSON objects")
            doc = response.get("explain", response)
            if doc is None:
                raise ObservabilityError(
                    "response carries no explain record (served by an "
                    "older planner?)")
            docs.append(doc)
    records = [ExplainRecord.from_dict(doc) for doc in docs]
    if args.as_json:
        print(json.dumps([record.to_dict() for record in records],
                         indent=2))
    else:
        print("\n".join(record.render() for record in records))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "topologies": lambda: _cmd_topologies(),
        "synth": lambda: _cmd_synth(args),
        "sweep": lambda: _cmd_sweep(args),
        "compare": lambda: _cmd_compare(args),
        "verify": lambda: _cmd_verify(args),
        "impact": lambda: _cmd_impact(args),
        "upgrade": lambda: _cmd_upgrade(args),
        "workload": lambda: _cmd_workload(args),
        "serve-batch": lambda: _cmd_serve_batch(args),
        "cache": lambda: _cmd_cache(args),
        "bench-sweep": lambda: _cmd_bench_sweep(args),
        "fleet": lambda: (_cmd_fleet_run(args)
                          if args.fleet_command == "run"
                          else _cmd_fleet_status(args)),
        "obs": lambda: _cmd_obs(args),
        "explain": lambda: _cmd_explain(args),
    }
    try:
        return handlers[args.command]()
    except ReproError as exc:
        # post-incident context: when a flight dir is configured the ring
        # around the failure lands on disk (quiet no-op otherwise)
        from repro.obs import recorder as _flight
        _flight.auto_dump("error")
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `teccl obs summary | head`);
        # park stdout on devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
