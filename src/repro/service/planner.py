"""The ``Planner``: cache → coalesce → pool → ``synthesize``, as one API.

This is the serving layer the ROADMAP's north star asks for. A caller hands
over a :class:`~repro.service.schema.PlanRequest`; the planner

1. **fingerprints** it (canonical form, §fingerprint) so equivalent
   requests are recognised regardless of how their objects were built;
2. serves **cache hits** without touching a solver — the paper's
   amortisation (one synthesis, millions of iterations) as a lookup;
3. **coalesces** concurrent identical misses onto one in-flight solve;
4. dispatches distinct misses to the **solve pool**, which runs them in
   parallel, and archives every fresh result in the cache on the way out.

``plan()`` raises on failure; ``plan_batch()`` captures per-request errors
in the responses so one infeasible instance cannot sink a batch; ``warm()``
is ``plan_batch`` for pre-populating the cache before traffic arrives.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.core.solve import SynthesisResult
from repro.errors import ReproError, ServiceError
from repro.obs import recorder as _flight
from repro.obs import trace as _obs
from repro.obs.explain import ExplainRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import get_registry as _default_registry
from repro.service.cache import ScheduleCache
from repro.service.fingerprint import (fingerprint_request,
                                       near_fingerprint_request)
from repro.service.pool import SolvePool
from repro.service.schema import PlanRequest, PlanResponse


class PlannerStats:
    """Aggregated serving counters (cumulative since construction).

    The counters live on a per-planner
    :class:`~repro.obs.metrics.MetricsRegistry`; plain attribute reads
    and writes (``stats.requests += 1``) still work, and :meth:`to_dict`
    keeps the exact pre-registry key set, so nothing upstream notices
    the move.

    Fields: ``requests``, ``timeouts``, ``conformance_checks``,
    ``conformance_failures``, ``warm_donors`` (fresh solves seeded by a
    near-fingerprint cache donor), ``replans`` (fresh solves seeded by
    an explicit prior result — the fleet controller's replan path),
    ``symmetry_collapses`` (requests rewritten onto a canonical demand
    under a topology automorphism, so symmetric variants share one cache
    entry).
    """

    _FIELDS = ("requests", "timeouts", "conformance_checks",
               "conformance_failures", "warm_donors", "replans",
               "symmetry_collapses")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(
                f"planner_{name}_total",
                f"planner {name.replace('_', ' ')} (cumulative)")
            for name in self._FIELDS}

    def to_dict(self) -> dict:
        return {name: int(c.value) for name, c in self._counters.items()}


def _stat_property(field_name: str) -> property:
    """Attribute facade over a registry counter (legacy ``+=`` support)."""
    def _get(self):
        return int(self._counters[field_name].value)

    def _set(self, value):
        self._counters[field_name].set_total(value)

    return property(_get, _set)


for _field in PlannerStats._FIELDS:
    setattr(PlannerStats, _field, _stat_property(_field))
del _field


class Planner:
    """Schedule-planning service over the synthesis facade.

    Args:
        executor: solve-pool kind — ``"process"`` (default), ``"thread"``,
            or ``"inline"``; see :class:`~repro.service.pool.SolvePool`.
        max_workers: pool width.
        cache_dir: enables the on-disk cache tier when set.
        cache_capacity: in-memory LRU size.
        timeout: default per-request wall-clock budget in seconds
            (``None`` = wait forever); overridable per call.
        check_conformance: replay every served schedule through the
            conformance engine (:func:`repro.simulate.check_result`) before
            handing it out; a non-conformant result becomes a failed
            response instead of reaching the caller. Covers cache hits too
            (a stale or corrupted cache entry is exactly what the oracle
            exists to catch).
        cache / pool: inject pre-built components (tests, shared caches).
        sink: enable process-wide tracing into this sink (a path makes a
            JSONL file) for the planner's lifetime — spans from every
            layer under it (solver phases, pool workers) land there too.
        symmetry: ``"auto"``/``"on"`` rewrite each request onto the
            lexicographically minimal relabeling of its demand under the
            topology's automorphism group before fingerprinting, so
            symmetric requests collapse to one cache entry (and their
            near-donor lookups cross symmetric variants); results are
            relabeled back before being returned. ``"off"`` disables the
            rewrite. Requests with priorities, a capacity hook, or the
            hyper-edge switch model are never rewritten.
    """

    def __init__(self, *, executor: str = "process",
                 max_workers: int | None = None,
                 cache_dir: str | Path | None = None,
                 cache_capacity: int = 128,
                 timeout: float | None = None,
                 check_conformance: bool = False,
                 cache: ScheduleCache | None = None,
                 pool: SolvePool | None = None,
                 sink: str | Path | _obs.Sink | None = None,
                 symmetry: str = "auto") -> None:
        if symmetry not in ("auto", "on", "off"):
            raise ServiceError(f"unknown symmetry mode {symmetry!r}")
        self.symmetry = symmetry
        self.cache = cache if cache is not None else ScheduleCache(
            capacity=cache_capacity, directory=cache_dir)
        # An injected pool may be shared with other planners or with
        # library-level fan-out (repro.service.pool.shared_pool); only a
        # pool this planner created is shut down by close().
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else SolvePool(
            max_workers=max_workers, executor=executor)
        self.default_timeout = timeout
        self.check_conformance = check_conformance
        self._stats = PlannerStats()
        self.registry = self._stats.registry
        self._serve_latency = self.registry.histogram(
            "planner_serve_latency_seconds",
            "end-to-end serve latency per request")
        self._owns_tracer = sink is not None
        if sink is not None:
            _obs.configure(sink)
        # Guards the cache-probe → pool-submit step and the archive callback
        # as one atomic unit (RLock: the inline executor archives on the
        # submitting thread, re-entering while _start still holds the lock).
        self._lock = threading.RLock()
        # One lock for every mutable stats counter: the fleet daemon thread
        # bumps them concurrently with pool callbacks and caller threads.
        self._stats_lock = threading.Lock()

    def _bump(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to the named stats counters."""
        with self._stats_lock:
            for field_name, delta in deltas.items():
                setattr(self._stats, field_name,
                        getattr(self._stats, field_name) + delta)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def plan(self, request: PlanRequest, *,
             timeout: float | None = None,
             warm_from: SynthesisResult | None = None) -> PlanResponse:
        """Serve one request; raises :class:`ReproError` on failure.

        ``warm_from`` seeds a fresh solve from an explicit prior result —
        the fleet controller's replan path, where the caller *knows* the
        best donor (the schedule currently active for this job) and should
        not rely on the near-fingerprint index finding it. Cache hits still
        win: a seed only matters when the request actually solves.
        """
        request, inverse = self._canonical_request(request)
        fingerprint, pending = self._start(request, warm_from=warm_from)
        response = self._finish(request, fingerprint, pending,
                                timeout=self._budget(timeout),
                                raise_errors=True)
        return self._relabel_response(response, inverse)

    def plan_batch(self, requests: list[PlanRequest], *,
                   timeout: float | None = None,
                   warm_from: list[SynthesisResult | None] | None = None,
                   ) -> list[PlanResponse]:
        """Serve many requests; errors land in ``response.error``.

        All misses are submitted before any result is awaited, so distinct
        instances overlap across the pool and identical ones coalesce.
        ``warm_from``, when given, aligns with ``requests`` and seeds each
        fresh solve from its prior result (the fleet fan-out path).
        """
        if warm_from is not None and len(warm_from) != len(requests):
            raise ServiceError(
                f"warm_from has {len(warm_from)} entries for "
                f"{len(requests)} requests")
        budget = self._budget(timeout)
        deadline = None if budget is None else time.perf_counter() + budget
        canonical = [self._canonical_request(request)
                     for request in requests]
        started = [self._start(request,
                               warm_from=None if warm_from is None
                               else warm_from[i])
                   for i, (request, _) in enumerate(canonical)]
        responses = []
        for (request, inverse), (fingerprint, pending) in zip(canonical,
                                                              started):
            remaining = None if deadline is None \
                else max(0.0, deadline - time.perf_counter())
            response = self._finish(request, fingerprint, pending,
                                    timeout=remaining,
                                    raise_errors=False)
            responses.append(self._relabel_response(response, inverse))
        return responses

    def warm(self, requests: list[PlanRequest], *,
             timeout: float | None = None) -> int:
        """Pre-populate the cache; returns the number of fresh solves."""
        responses = self.plan_batch(requests, timeout=timeout)
        return sum(1 for r in responses if r.ok and not r.cache_hit
                   and not r.coalesced)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _budget(self, timeout: float | None) -> float | None:
        return self.default_timeout if timeout is None else timeout

    def _canonical_request(self, request: PlanRequest):
        """Rewrite a request onto its symmetry-canonical demand.

        Returns ``(request, inverse)`` where ``inverse`` is the node
        permutation mapping results on the canonical instance back to the
        caller's node ids (``None`` when the request was left alone). The
        rewrite is an exact relabeling under a *verified* topology
        automorphism, so the canonical instance has the same optimum; a
        truncated canonicalization search can only miss a cache collapse,
        never produce a wrong equivalence.
        """
        if self.symmetry == "off":
            return request, None
        config = request.config
        from repro.core.config import SwitchModel

        if (config.priorities or config.capacity_fn is not None
                or config.switch_model is SwitchModel.HYPER_EDGE):
            return request, None
        from dataclasses import replace as _replace

        from repro.core import symmetry as _symmetry

        with _obs.rspan("planner.canonicalize"):
            demand, sigma = _symmetry.canonicalize_demand(
                request.topology, request.demand)
        if demand is request.demand:
            return request, None
        self._bump(symmetry_collapses=1)
        return (_replace(request, demand=demand),
                _symmetry.invert_permutation(sigma))

    @staticmethod
    def _relabel_response(response: PlanResponse,
                          inverse) -> PlanResponse:
        """Map a canonical-space result back to the caller's node ids."""
        if inverse is not None and response.result is not None:
            response.result = response.result.relabeled(inverse)
        if inverse is not None and response.explain is not None:
            response.explain.symmetry_collapsed = True
        return response

    def _start(self, request: PlanRequest,
               warm_from: SynthesisResult | None = None):
        """Fingerprint + cache probe + (on miss) pool submission.

        Returns ``(fingerprint, pending)`` where pending is either a ready
        :class:`PlanResponse` (cache hit) or ``(future, coalesced, t0,
        warm_donor, explain)``.

        A miss also probes the cache's *near* index: a schedule solved for
        the same fabric shape and demand under a different horizon or
        capacity scale rides along as the solve's warm-start seed. An
        explicit ``warm_from`` result outranks the near index — the caller
        knows its donor is fresher than anything the cache can offer.
        """
        explain = ExplainRecord(tag=request.tag)
        with _flight.collect_phases() as phases:
            fingerprint, pending = self._start_inner(request, warm_from,
                                                     explain)
        explain.phases.update(phases)
        return fingerprint, pending

    def _start_inner(self, request: PlanRequest,
                     warm_from: SynthesisResult | None,
                     explain: ExplainRecord):
        t0 = time.perf_counter()
        self._bump(requests=1)
        with _obs.rspan("planner.fingerprint"):
            fingerprint = fingerprint_request(
                request.topology, request.demand, request.config,
                method=request.method, astar_config=request.astar_config,
                minimize_epochs=request.minimize_epochs)
        explain.fingerprint = fingerprint
        with _obs.rspan("planner.cache_lookup") as lookup_sp, self._lock:
            payload = self.cache.get(fingerprint)
            lookup_sp.set_attr(hit=payload is not None)
            if payload is not None:
                explain.source = "cache"
                explain.cache_hit = True
                response = PlanResponse(
                    fingerprint=fingerprint,
                    result=SynthesisResult.from_dict(payload),
                    cache_hit=True, tag=request.tag,
                    serve_time=time.perf_counter() - t0,
                    explain=explain)
                response.explain.solve = response.result.explain
                return fingerprint, response
        # Misses only, and outside the lock: the near key is a second
        # canonicalisation and to_dict() serialises the whole request —
        # pure CPU work that must neither tax the cache-hit hot path nor
        # stall concurrent requests on self._lock.
        with _obs.rspan("planner.near_donor"):
            near = near_fingerprint_request(
                request.topology, request.demand, request.config,
                method=request.method, astar_config=request.astar_config,
                minimize_epochs=request.minimize_epochs)
            request_dict = request.to_dict()
        with _obs.rspan("planner.submit") as submit_sp, self._lock:
            # re-probe: the solve of an identical request may have been
            # archived while we were canonicalising (peek, not get: the
            # miss was already counted once above)
            payload = self.cache.peek(fingerprint)
            if payload is not None:
                explain.source = "cache"
                explain.cache_hit = True
                response = PlanResponse(
                    fingerprint=fingerprint,
                    result=SynthesisResult.from_dict(payload),
                    cache_hit=True, tag=request.tag,
                    serve_time=time.perf_counter() - t0,
                    explain=explain)
                response.explain.solve = response.result.explain
                return fingerprint, response
            explicit_seed = warm_from is not None
            if explicit_seed:
                request_dict["_warm_from"] = warm_from.to_dict()
            else:
                donor = self.cache.get_near(near)
                if donor is not None:
                    request_dict["_warm_from"] = donor
                    explain.warm_donor = near
            ctx = _obs.current_context()
            if ctx is not None:
                request_dict["_obs"] = ctx
            # the worker labels its flight-recorder records with this, so
            # a dump correlates pool-side spans with the serving request
            request_dict["_fingerprint"] = fingerprint
            # Atomic with the probe above: the pool either coalesces onto an
            # in-flight solve or starts one; _archive (which runs before the
            # pool retires the fingerprint) also serialises on self._lock, so
            # no request can fall between "not cached" and "not in flight".
            future, coalesced = self.pool.submit(
                fingerprint, request_dict,
                on_complete=lambda fp, fut: self._archive(fp, fut, near))
            # A coalesced join discarded request_dict — the in-flight solve
            # was submitted by someone else and may not carry the seed.
            seeded = "_warm_from" in request_dict and not coalesced
            warm_donor = seeded and not explicit_seed
            submit_sp.set_attr(coalesced=coalesced, seeded=seeded)
        explain.source = "coalesced" if coalesced else "solve"
        explain.coalesced = coalesced
        explain.replan_seed = seeded and explicit_seed
        if not warm_donor:
            explain.warm_donor = None
        if warm_donor:
            self._bump(warm_donors=1)
        if seeded and explicit_seed:
            self._bump(replans=1)
        return fingerprint, (future, coalesced, t0, seeded, explain)

    def _observe(self, response: PlanResponse) -> PlanResponse:
        """Record the response's end-to-end latency in the histogram."""
        if response.serve_time is not None:
            self._serve_latency.observe(response.serve_time)
        return response

    def _archive(self, fingerprint: str, future,
                 near: str | None = None) -> None:
        """Store a completed solve in the cache (runs on the pool's thread)."""
        if future.cancelled() or future.exception() is not None:
            return
        with self._lock:
            self.cache.put(fingerprint, future.result(),
                           meta=None if near is None else {"near": near})

    def _post_check(self, request: PlanRequest, response: PlanResponse,
                    raise_errors: bool) -> PlanResponse:
        """Optional post-solve conformance replay (``check_conformance``)."""
        if not self.check_conformance or response.result is None:
            return response
        from repro.simulate import check_result

        report = check_result(response.result, config=request.config)
        response.conformance = report.to_dict()
        self._bump(conformance_checks=1,
                   conformance_failures=0 if report.ok else 1)
        if not report.ok:
            response.error = (
                "schedule failed conformance replay: "
                + "; ".join(str(v) for v in report.violations[:3]))
            if raise_errors:
                raise ServiceError(response.error)
        return response

    def _finish(self, request: PlanRequest, fingerprint: str, pending,
                *, timeout: float | None,
                raise_errors: bool) -> PlanResponse:
        # every record inside carries the request fingerprint as its
        # correlation label, so a flight dump reconstructs this serve
        with _flight.context(fingerprint):
            with _flight.collect_phases() as phases:
                try:
                    response = self._finish_inner(request, fingerprint,
                                                  pending, timeout=timeout,
                                                  raise_errors=raise_errors)
                except ReproError as exc:
                    # raise_errors path: the caller sees the exception, the
                    # flight recorder keeps the full story (decision event
                    # with the explain record, then an incident dump)
                    self._record_failure(fingerprint, pending, exc, phases)
                    raise
            if response.explain is not None:
                response.explain.phases.update(phases)
                response.explain.serve_time = response.serve_time
                response.explain.conformance = self._verdict(response)
                if response.error is not None:
                    response.explain.source = "error"
                    response.explain.error = response.error
                    _obs.event("planner.serve_failed",
                               explain=response.explain.to_dict())
                    _flight.auto_dump("planner-failure")
                else:
                    _flight.save_last_explain(response.explain.to_dict())
        return response

    @staticmethod
    def _verdict(response: PlanResponse) -> str:
        if response.conformance is None:
            return "unchecked"
        return "ok" if response.conformant else "failed"

    def _record_failure(self, fingerprint: str, pending, exc,
                        phases: dict) -> None:
        """Flight-record a serve failure that is about to raise."""
        explain = pending[4] if isinstance(pending, tuple) \
            and len(pending) >= 5 else (
                pending.explain if isinstance(pending, PlanResponse)
                else None)
        if explain is None:
            explain = ExplainRecord(fingerprint=fingerprint)
        explain.source = "error"
        explain.error = str(exc)
        explain.phases.update(phases)
        _obs.event("planner.serve_failed", explain=explain.to_dict())
        _flight.auto_dump("planner-failure")

    def _finish_inner(self, request: PlanRequest, fingerprint: str,
                      pending, *, timeout: float | None,
                      raise_errors: bool) -> PlanResponse:
        if isinstance(pending, PlanResponse):
            checked = self._post_check(request, pending, raise_errors=False)
            if checked.ok:
                return self._observe(checked)
            # A *cached* schedule failed its replay: the entry is poisoned
            # (bit-rot, a stale format, a buggy producer of an earlier
            # version). Expel it and fall through to a fresh solve rather
            # than failing this fingerprint forever (and solve cold: a
            # poisoned class should not seed its own replacement).
            _obs.event("planner.cache_poisoned", fingerprint=fingerprint)
            t0 = time.perf_counter()
            request_dict = request.to_dict()
            ctx = _obs.current_context()
            if ctx is not None:
                request_dict["_obs"] = ctx
            request_dict["_fingerprint"] = fingerprint
            with self._lock:
                self.cache.evict(fingerprint)
                future, coalesced = self.pool.submit(
                    fingerprint, request_dict,
                    on_complete=self._archive)
            pending = (future, coalesced, t0, False,
                       ExplainRecord(fingerprint=fingerprint,
                                     tag=request.tag))
        future, coalesced, t0, warm_donor, explain = pending
        try:
            payload = self.pool.wait(future, timeout)
        except ServiceError as exc:  # timeout
            self._bump(timeouts=1)
            if raise_errors:
                raise
            return self._observe(PlanResponse(
                fingerprint=fingerprint, error=str(exc),
                coalesced=coalesced, tag=request.tag,
                warm_donor=warm_donor,
                serve_time=time.perf_counter() - t0, explain=explain))
        except ReproError as exc:  # solver-side failure (infeasible, ...)
            if raise_errors:
                raise
            return self._observe(PlanResponse(
                fingerprint=fingerprint, error=str(exc),
                coalesced=coalesced, tag=request.tag,
                warm_donor=warm_donor,
                serve_time=time.perf_counter() - t0, explain=explain))
        response = PlanResponse(
            fingerprint=fingerprint,
            result=SynthesisResult.from_dict(payload),
            coalesced=coalesced, tag=request.tag, warm_donor=warm_donor,
            serve_time=time.perf_counter() - t0, explain=explain)
        response.explain.solve = response.result.explain
        return self._observe(self._post_check(request, response,
                                              raise_errors))

    # ------------------------------------------------------------------
    # introspection & lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One dict with the planner, cache, and pool counters (a snapshot)."""
        cache = self.cache.stats
        pool = self.pool.stats
        with self._stats_lock:
            planner_stats = self._stats.to_dict()
        return {
            **planner_stats,
            "hits": cache.hits,
            "misses": cache.misses,
            "solves": pool.solves,
            "coalesced": pool.coalesced,
            "cache": cache.to_dict(),
            "pool": pool.to_dict(),
        }

    def metrics_snapshot(self) -> dict:
        """JSON-ready dump of every planner *and* pool instrument.

        The planner and its pool keep separate registry scopes (metric
        name prefixes keep them collision-free); this merges both for
        persistence — ``teccl serve-batch --metrics-file`` writes it,
        ``teccl obs metrics`` renders it.
        """
        return {**self.registry.snapshot(),
                **self.pool.stats.registry.snapshot()}

    def serve_latency(self) -> dict:
        """Serve-latency summary: ``{count, sum, p50, p95, p99}``.

        Kept out of :meth:`stats` on purpose — that dict's shape is
        pinned by downstream consumers and regression tests.
        """
        return self._serve_latency.summary()

    def alert_snapshot(self) -> dict:
        """The merged snapshot the SLO alert engine evaluates.

        Planner + pool registries, the process default registry (symmetry
        reduction/fallback counters live there — core code has no planner
        handle), and the cache's hit/miss counters lifted into metric-
        shaped entries so ratio rules can reach them.
        """
        snapshot = {**self.metrics_snapshot(),
                    **_default_registry().snapshot()}
        cache = self.cache.stats
        snapshot["cache_hits_total"] = {"type": "counter",
                                        "value": cache.hits}
        snapshot["cache_misses_total"] = {"type": "counter",
                                          "value": cache.misses}
        return snapshot

    def close(self) -> None:
        if self._owns_pool:
            self.pool.shutdown()
        if self._owns_tracer:
            _obs.disable()

    def __enter__(self) -> "Planner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
