"""The solve pool: concurrent synthesis with request coalescing.

Distinct instances solve in parallel across a ``ProcessPoolExecutor``
(TE-CCL solves are CPU-bound MILP/LP runs — separate processes sidestep the
GIL and isolate solver memory); *identical* concurrent requests coalesce
onto one in-flight future, so a thundering herd of equivalent requests costs
exactly one solve. That pairing — coalesce the identical, parallelise the
distinct — is what lets one planner serve many tenants whose training jobs
all start at the same time.

Work crosses the process boundary as plain dicts (``PlanRequest.to_dict`` /
``SynthesisResult.to_dict``), never as live solver objects: dicts are
trivially picklable and are exactly what the schedule cache stores, so the
pool's output can be archived without another conversion.

Three executor kinds are supported:

* ``"process"`` — the production default, true parallelism;
* ``"thread"``  — cheaper startup; fine for tests and for I/O-dominated
  mixes (scipy's HiGHS calls release the GIL for long stretches);
* ``"inline"``  — no concurrency, solves on the calling thread; useful for
  debugging and deterministic tests.
"""

from __future__ import annotations

import concurrent.futures as _futures
import threading

from repro.errors import ServiceError
from repro.obs import recorder as _flight
from repro.obs import trace as _obs
from repro.obs.metrics import MetricsRegistry

_EXECUTOR_KINDS = ("process", "thread", "inline")


def solve_request(request_dict: dict) -> dict:
    """Solve one serialised request; module-level so workers can pickle it.

    ``request_dict["_warm_from"]`` (a serialised
    :class:`~repro.core.solve.SynthesisResult`, attached by the planner's
    near-fingerprint donor lookup) seeds the solve: the prior schedule's
    achieved finish informs the horizon estimate, so the re-solve builds a
    much smaller model than the cold path bound. The seed crosses the
    process boundary as the same plain dict the cache stores.

    ``request_dict["_obs"]`` is the submitting request's trace carrier:
    activating it stitches this solve's spans (which may run in another
    process) back under the submitting trace, appending to the same
    JSONL sink. ``request_dict["_fingerprint"]`` labels this worker's
    flight-recorder records so a post-incident dump correlates them with
    the serving request.
    """
    from repro.core.solve import SynthesisResult, synthesize
    from repro.service.schema import PlanRequest

    warm_doc = request_dict.get("_warm_from")
    warm_from = (SynthesisResult.from_dict(warm_doc)
                 if warm_doc is not None else None)
    request = PlanRequest.from_dict(request_dict)
    with _obs.activate(request_dict.get("_obs")), \
            _flight.context(request_dict.get("_fingerprint")):
        with _obs.rspan("pool.solve", method=request.method.value,
                        warm=warm_from is not None):
            result = synthesize(request.topology, request.demand,
                                request.config,
                                method=request.method,
                                astar_config=request.astar_config,
                                minimize_epochs=request.minimize_epochs,
                                warm_from=warm_from)
    return result.to_dict()


class PoolStats:
    """Counters for one pool instance (cumulative since construction).

    Backed by a per-pool :class:`~repro.obs.metrics.MetricsRegistry`;
    the attribute surface (``submitted``, ``coalesced``, ``completed``,
    ``errors``, the derived ``solves``) and the :meth:`to_dict` shape
    are unchanged from the pre-registry dataclass.
    """

    _FIELDS = ("submitted", "coalesced", "completed", "errors")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(
                f"pool_{name}_total", f"pool {name} requests (cumulative)")
            for name in self._FIELDS}

    @property
    def solves(self) -> int:
        """Underlying solver invocations (submissions, not coalesced joins)."""
        return self.submitted

    def to_dict(self) -> dict:
        return {
            "solves": self.solves,
            "coalesced": self.coalesced,
            "completed": self.completed,
            "errors": self.errors,
        }


def _pool_stat_property(field_name: str) -> property:
    """Attribute facade over a registry counter (legacy ``+=`` support)."""
    def _get(self):
        return int(self._counters[field_name].value)

    def _set(self, value):
        self._counters[field_name].set_total(value)

    return property(_get, _set)


for _field in PoolStats._FIELDS:
    setattr(PoolStats, _field, _pool_stat_property(_field))
del _field


class SolvePool:
    """A bounded executor with per-fingerprint request coalescing.

    Args:
        max_workers: executor width (ignored for ``"inline"``).
        executor: one of ``"process"``, ``"thread"``, ``"inline"``.
        solve_fn: the worker function; overridable for tests. Must be
            picklable (module-level) when ``executor="process"``.
    """

    def __init__(self, max_workers: int | None = None,
                 executor: str = "process",
                 solve_fn=solve_request) -> None:
        if executor not in _EXECUTOR_KINDS:
            raise ServiceError(
                f"unknown executor kind {executor!r}; "
                f"expected one of {_EXECUTOR_KINDS}")
        self.executor_kind = executor
        self._solve_fn = solve_fn
        self._lock = threading.Lock()
        self._inflight: dict[str, _futures.Future] = {}
        self.stats = PoolStats()
        if executor == "process":
            self._executor: _futures.Executor | None = \
                _futures.ProcessPoolExecutor(max_workers=max_workers)
        elif executor == "thread":
            self._executor = _futures.ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix="teccl-solve")
        else:
            self._executor = None

    # ------------------------------------------------------------------
    def submit(self, fingerprint: str, request_dict: dict,
               on_complete=None, *,
               solve_fn=None) -> tuple[_futures.Future, bool]:
        """Submit a solve, or join the identical one already in flight.

        Returns ``(future, coalesced)``: the future resolves to the
        serialised :class:`~repro.core.solve.SynthesisResult` dict, and
        ``coalesced`` is True when the request piggybacked on an in-flight
        solve instead of starting its own.

        ``solve_fn`` overrides the pool's worker function for this request
        only — how library code (e.g. POP's cold partition fan-out) runs
        its own work kind on a shared pool. It must be module-level
        picklable for process executors, and a coalesced join ignores it:
        the already-in-flight solve, whatever function it runs, wins.

        ``on_complete(fingerprint, future)``, if given, runs *before* the
        fingerprint leaves the in-flight registry. The planner archives the
        result there: because archival strictly precedes deregistration, a
        concurrent identical request always finds the solve either still in
        flight (coalesces) or already in the cache — never neither.
        """
        fn = solve_fn if solve_fn is not None else self._solve_fn
        with self._lock:
            existing = self._inflight.get(fingerprint)
            if existing is not None:
                self.stats.coalesced += 1
                return existing, True
            self.stats.submitted += 1
            if self._executor is None:
                future: _futures.Future = _futures.Future()
            else:
                future = self._executor.submit(fn, request_dict)
            self._inflight[fingerprint] = future
        if self._executor is None:
            # Inline: solve on the calling thread. The future is already
            # registered, so re-entrant submits from a solve_fn still coalesce.
            try:
                future.set_result(fn(request_dict))
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                future.set_exception(exc)
        # Done-callbacks fire in registration order (immediately, in this
        # thread, when the future already completed) — archive, then retire.
        if on_complete is not None:
            future.add_done_callback(
                lambda f, fp=fingerprint: on_complete(fp, f))
        future.add_done_callback(
            lambda f, fp=fingerprint: self._on_done(fp, f))
        return future, False

    def _on_done(self, fingerprint: str, future: _futures.Future) -> None:
        with self._lock:
            if self._inflight.get(fingerprint) is future:
                del self._inflight[fingerprint]
            if future.cancelled() or future.exception() is not None:
                self.stats.errors += 1
            else:
                self.stats.completed += 1

    # ------------------------------------------------------------------
    @staticmethod
    def wait(future: _futures.Future, timeout: float | None = None) -> dict:
        """Block for a result; maps executor timeouts onto ServiceError.

        The underlying solve is *not* cancelled on timeout — it may be
        shared with coalesced waiters, and its result still warms the cache.
        """
        try:
            return future.result(timeout=timeout)
        except _futures.TimeoutError:
            raise ServiceError(
                f"solve did not finish within {timeout} s "
                "(the solve keeps running and will populate the cache)"
            ) from None

    @property
    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)

    def __enter__(self) -> "SolvePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# the process-wide shared pool (library-code reuse)
# ----------------------------------------------------------------------
_shared_pool: SolvePool | None = None
_shared_lock = threading.Lock()


def shared_pool(max_workers: int | None = None,
                executor: str = "process") -> SolvePool:
    """The lazily created process-wide pool for library-level fan-out.

    Callers outside the planner (e.g. ``solve_lp_pop(..., pool=...)``)
    share one pool instead of each paying process startup; the first call
    fixes the configuration, later calls return the same instance. A
    :class:`~repro.service.planner.Planner` handed this pool will not shut
    it down on ``close()`` — only pools the planner created itself are
    owned by it.
    """
    global _shared_pool
    with _shared_lock:
        if _shared_pool is None:
            _shared_pool = SolvePool(max_workers=max_workers,
                                     executor=executor)
        return _shared_pool


def reset_shared_pool() -> None:
    """Shut down and forget the shared pool (tests, interpreter teardown)."""
    global _shared_pool
    with _shared_lock:
        pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.shutdown()
