"""Canonical serialisation and SHA-256 fingerprints for plan requests.

The planner service's whole premise (amortisation, §1 and §6 of the paper:
synthesise once, reuse across millions of iterations) rests on recognising
that two requests are *the same instance*. Python object identity is useless
for that — two ``Topology`` objects built by different code paths, or the
same edge list inserted in a different order, must hash identically.

This module defines the canonical form: a pure-JSON document with

* **sorted collections** — links by ``(src, dst)``, demand triples and
  priority entries lexicographically, switches ascending — so insertion
  order never leaks into the hash;
* **normalised numbers** — every numeric field passes through ``float()``
  so ``TecclConfig(chunk_bytes=1)`` and ``chunk_bytes=1.0`` agree
  (``json.dumps`` renders ``1`` and ``1.0`` differently); NaN/inf are
  rejected because they do not round-trip;
* **a version salt** — :data:`FINGERPRINT_VERSION` is hashed into every
  fingerprint, so changing the canonical form (or solver semantics that the
  form cannot see) invalidates every old fingerprint at once.

Topology *names* are deliberately excluded: a fabric renamed is the same
fabric, and cache keys must not fragment on labels.
"""

from __future__ import annotations

import hashlib
import json
import math

from repro.collectives.demand import Demand
from repro.core.config import AStarConfig, TecclConfig
from repro.core.solve import Method
from repro.errors import ServiceError
from repro.topology.topology import Topology

#: Bump when the canonical form changes or when solver semantics change in a
#: way that makes previously cached schedules stale. Hashed into every
#: fingerprint, so a bump invalidates all existing cache entries.
#: v2: the solver ``symmetry`` knob left the canonical form (it cannot
#: change the solution) and the planner began canonicalizing demands by
#: topology automorphism, collapsing symmetric requests to one entry.
FINGERPRINT_VERSION = 2


def _normalize(value, path: str):
    """Recursively normalise a ``to_dict()`` document for hashing.

    Every number (bool excepted) becomes a finite float, so documents
    that differ only in int-vs-float representation hash identically;
    containers are normalised element-wise. The ``path`` names the field
    in error messages.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        out = float(value)
        if not math.isfinite(out):
            raise ServiceError(f"{path} is not finite ({value!r}); "
                               "the request cannot be fingerprinted")
        return out
    if isinstance(value, dict):
        return {k: _normalize(v, f"{path}.{k}") for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(v, f"{path}[{i}]") for i, v in enumerate(value)]
    raise ServiceError(
        f"{path} has unhashable type {type(value).__name__}")


def canonical_topology(topology: Topology) -> dict:
    """Order-insensitive, name-free canonical form of a topology.

    Derived from :meth:`Topology.to_dict` (links already sorted there)
    rather than a hand-kept field list, so a field added to the
    serialisation automatically reaches the fingerprint too.
    """
    document = topology.to_dict()
    del document["name"]  # a renamed fabric is the same fabric
    return _normalize(document, "topology")


def canonical_demand(demand: Demand) -> dict:
    """Order-insensitive canonical form of a demand matrix."""
    return _normalize(demand.to_dict(), "demand")


def canonical_config(config: TecclConfig) -> dict:
    """Canonical form of a config; rejects non-serialisable hooks."""
    if config.capacity_fn is not None:
        raise ServiceError(
            "configs with a capacity_fn hook cannot be fingerprinted "
            "(a Python callable has no canonical form); solve such "
            "instances directly via synthesize()")
    document = config.to_dict()
    # log verbosity cannot change the solution; keep it out of the key
    del document["solver"]["verbose"]
    # symmetry reduction is conformance-vetted with cold fallback, so the
    # knob affects speed only — keep it out of the key too
    document["solver"].pop("symmetry", None)
    return _normalize(document, "config")


def canonical_request(topology: Topology, demand: Demand,
                      config: TecclConfig, *,
                      method: Method = Method.AUTO,
                      astar_config: AStarConfig | None = None,
                      minimize_epochs: bool = False) -> dict:
    """The full canonical document for one ``synthesize()`` invocation."""
    return {
        "version": FINGERPRINT_VERSION,
        "topology": canonical_topology(topology),
        "demand": canonical_demand(demand),
        "config": canonical_config(config),
        "method": method.value,
        "astar": (None if astar_config is None
                  else _normalize(astar_config.to_dict(), "astar")),
        "minimize_epochs": bool(minimize_epochs),
    }


def fingerprint_canonical(document: dict) -> str:
    """SHA-256 hex digest of a canonical document."""
    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_request(topology: Topology, demand: Demand,
                        config: TecclConfig, *,
                        method: Method = Method.AUTO,
                        astar_config: AStarConfig | None = None,
                        minimize_epochs: bool = False) -> str:
    """Stable fingerprint: equivalent requests hash identically."""
    return fingerprint_canonical(canonical_request(
        topology, demand, config, method=method, astar_config=astar_config,
        minimize_epochs=minimize_epochs))


def canonical_near_request(topology: Topology, demand: Demand,
                           config: TecclConfig, *,
                           method: Method = Method.AUTO,
                           astar_config: AStarConfig | None = None,
                           minimize_epochs: bool = False) -> dict:
    """The canonical document with horizon/capacity *scalars* factored out.

    Two requests share a near-fingerprint when they describe the same
    fabric shape, demand and model variant but differ in the knobs a warm
    start tolerates: the horizon ``num_epochs`` (dropped from the document)
    and a uniform rescaling of link capacities (normalised by the fastest
    link — a renegotiated-bandwidth fabric keeps its class). A prior
    schedule for one member of the class is a sound *seed* for any other —
    it informs horizon estimates, never the optimum within them — which is
    exactly what the planner's donor lookup needs on a cache miss.
    """
    document = canonical_request(
        topology, demand, config, method=method, astar_config=astar_config,
        minimize_epochs=minimize_epochs)
    document["near"] = True  # never collides with an exact fingerprint
    document["config"]["num_epochs"] = None
    links = document["topology"]["links"]
    scale = max((link["capacity"] for link in links), default=0.0)
    if scale > 0:
        for link in links:
            # round the quotient: (0.1*s)/(1.0*s) must hash like 0.1/1.0
            # for every scale s, not only the bit-exact ones
            link["capacity"] = round(link["capacity"] / scale, 12)
    return document


def near_fingerprint_request(topology: Topology, demand: Demand,
                             config: TecclConfig, *,
                             method: Method = Method.AUTO,
                             astar_config: AStarConfig | None = None,
                             minimize_epochs: bool = False) -> str:
    """Fingerprint of the :func:`canonical_near_request` equivalence class."""
    return fingerprint_canonical(canonical_near_request(
        topology, demand, config, method=method, astar_config=astar_config,
        minimize_epochs=minimize_epochs))
