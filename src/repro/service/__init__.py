"""The planner service: fingerprint → cache → coalesce → solve pool.

Turns the one-shot :func:`repro.core.solve.synthesize` facade into a serving
layer (the paper's amortisation story made operational): equivalent requests
are recognised by canonical SHA-256 fingerprints, solved schedules are kept
in a two-tier cache, concurrent identical requests share one in-flight
solve, and distinct instances solve in parallel across a process pool.

Quickstart::

    from repro import collectives, topology
    from repro.core import TecclConfig
    from repro.service import Planner, PlanRequest

    topo = topology.dgx1()
    request = PlanRequest(topology=topo,
                          demand=collectives.allgather(topo.gpus, 1),
                          config=TecclConfig(chunk_bytes=25e3, num_epochs=10))
    with Planner(executor="thread", cache_dir="~/.cache/teccl") as planner:
        first = planner.plan(request)    # cold: solves, archives
        again = planner.plan(request)    # hit: served from cache
        assert again.cache_hit and planner.stats()["hits"] == 1
"""

from repro.service.cache import (CACHE_FORMAT_VERSION, CacheEntryInfo,
                                 CacheStats, ScheduleCache)
from repro.service.fingerprint import (FINGERPRINT_VERSION,
                                       canonical_near_request,
                                       canonical_request,
                                       fingerprint_request,
                                       near_fingerprint_request)
from repro.service.planner import Planner, PlannerStats
from repro.service.pool import (PoolStats, SolvePool, reset_shared_pool,
                                shared_pool, solve_request)
from repro.service.schema import PlanRequest, PlanResponse

__all__ = [
    "Planner", "PlannerStats", "PlanRequest", "PlanResponse",
    "ScheduleCache", "CacheStats", "CacheEntryInfo", "CACHE_FORMAT_VERSION",
    "SolvePool", "PoolStats", "solve_request",
    "shared_pool", "reset_shared_pool",
    "canonical_request", "fingerprint_request", "FINGERPRINT_VERSION",
    "canonical_near_request", "near_fingerprint_request",
]
