"""Two-tier schedule cache: in-memory LRU over an on-disk JSON store.

The paper amortises a one-off synthesis over millions of training iterations
(§6.2: hours of solver time, reused for weeks); TACCL ships the same idea as
offline-generated algorithm files. The cache makes that amortisation a
property of the serving layer instead of the caller's discipline:

* **memory tier** — a bounded LRU of deserialised payload dicts, for the
  steady state where one planner process serves a hot working set;
* **disk tier** — one ``<fingerprint>.json`` envelope per entry (the same
  "plain JSON document" dialect as :mod:`repro.topology.io`), so schedules
  survive process restarts and can be shipped between machines.

Every envelope records the cache-format version and the package version that
produced it; a mismatch on either is treated as a miss and the stale file is
deleted (solver semantics may have changed under the entry).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections import OrderedDict
from pathlib import Path

from repro import __version__ as _package_version
from repro.errors import ServiceError

#: Bump when the envelope layout or payload schema changes.
CACHE_FORMAT_VERSION = 1

_FINGERPRINT_CHARS = set("0123456789abcdef")


def make_envelope(fingerprint: str, payload: dict,
                  meta: dict | None = None) -> dict:
    """Wrap one schedule payload in the versioned disk envelope.

    The same envelope serves both durable stores: the schedule cache's
    per-fingerprint files and the fleet WAL's compaction snapshots
    (:meth:`repro.fleet.wal.WriteAheadLog.compact`), so a payload written
    under an older cache format or package version is invalidated by one
    rule everywhere.
    """
    return {
        "version": CACHE_FORMAT_VERSION,
        "package": _package_version,
        "fingerprint": fingerprint,
        "meta": meta or {},
        "payload": payload,
    }


def open_envelope(envelope: dict) -> dict | None:
    """Unwrap an envelope; ``None`` when malformed or version-stale."""
    try:
        version = envelope["version"]
        package = envelope["package"]
        payload = envelope["payload"]
    except (KeyError, TypeError):
        return None
    if version != CACHE_FORMAT_VERSION or package != _package_version:
        return None
    return payload if isinstance(payload, dict) else None


@dataclass
class CacheStats:
    """Counters for one cache instance (cumulative since construction)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0
    near_hits: int = 0
    near_misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "near_hits": self.near_hits,
            "near_misses": self.near_misses,
        }


@dataclass
class CacheEntryInfo:
    """Metadata for one on-disk entry (``teccl cache --action list``)."""

    fingerprint: str
    size_bytes: int
    version: int
    package: str
    stale: bool = False
    meta: dict = field(default_factory=dict)


class ScheduleCache:
    """Bounded LRU of solved-schedule payloads, optionally disk-backed.

    Args:
        capacity: max entries held in memory (≥ 1). The disk tier is
            unbounded — schedules are kilobytes and disk is the archival
            tier by design.
        directory: where envelopes live; ``None`` disables the disk tier.
    """

    def __init__(self, capacity: int = 128,
                 directory: str | Path | None = None) -> None:
        if capacity < 1:
            raise ServiceError("cache capacity must be at least 1")
        self.capacity = capacity
        self.directory = (Path(directory).expanduser()
                          if directory is not None else None)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, dict] = OrderedDict()
        # near-fingerprint -> fingerprints sharing it, in store order (the
        # warm-start donor index; see fingerprint.canonical_near_request)
        self._near_index: dict[str, OrderedDict[str, None]] = {}
        # the disk tier's envelopes are folded into the index at most once
        self._near_disk_loaded = self.directory is None
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> dict | None:
        """Look a fingerprint up; promotes disk hits into the memory tier."""
        self._check_fingerprint(fingerprint)
        if fingerprint in self._memory:
            self._memory.move_to_end(fingerprint)
            self.stats.memory_hits += 1
            return self._memory[fingerprint]
        payload = self._read_disk(fingerprint)
        if payload is not None:
            self.stats.disk_hits += 1
            self._insert_memory(fingerprint, payload)
            return payload
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, payload: dict,
            meta: dict | None = None) -> None:
        """Store a payload in both tiers.

        ``meta["near"]``, when present, must be the request's
        near-fingerprint; the entry is then registered as a warm-start
        donor for its equivalence class (:meth:`get_near`). The near key
        also lands in the disk envelope, so donor lookups survive process
        restarts.
        """
        self._check_fingerprint(fingerprint)
        self._insert_memory(fingerprint, payload)
        near = (meta or {}).get("near")
        if near:
            self._check_fingerprint(near)
            # fold pre-restart disk donors in first, so this store really
            # is the most recent entry of its class
            self._load_disk_near_index()
            index = self._near_index.setdefault(near, OrderedDict())
            index.pop(fingerprint, None)
            index[fingerprint] = None  # most recent donor last
        if self.directory is not None:
            envelope = make_envelope(fingerprint, payload, meta)
            path = self._path(fingerprint)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(envelope), encoding="utf-8")
            tmp.replace(path)  # atomic on POSIX: readers never see half a file
        self.stats.stores += 1

    def get_near(self, near_fingerprint: str) -> dict | None:
        """Fetch a warm-start donor payload for an equivalence class.

        The planner calls this on a cache *miss*: a schedule solved for the
        same fabric shape and demand under a different horizon or a
        uniformly rescaled capacity is a sound seed for the fresh solve.
        Prefers the most recently stored donor. The disk tier's envelopes
        (their ``meta`` records the near key) are folded into the index
        **once**, on the first lookup after a restart — never a per-miss
        directory scan. Returns ``None`` when the class has no usable
        member.
        """
        self._check_fingerprint(near_fingerprint)
        self._load_disk_near_index()
        index = self._near_index.get(near_fingerprint)
        if index:
            for fingerprint in reversed(index):
                payload = self.peek(fingerprint)
                if payload is not None:
                    self.stats.near_hits += 1
                    return payload
        self.stats.near_misses += 1
        return None

    def _load_disk_near_index(self) -> None:
        """Fold the disk tier's near keys into the index (at most once).

        Envelopes are visited oldest-mtime first so the in-memory recency
        order (most recent donor last) survives a restart.
        """
        if self._near_disk_loaded:
            return
        self._near_disk_loaded = True
        infos = [(info, self._path(info.fingerprint))
                 for info in self.entries()
                 if not info.stale and info.meta.get("near")]
        def mtime(item):
            try:
                return item[1].stat().st_mtime
            except OSError:
                return 0.0
        for info, _path in sorted(infos, key=mtime):
            near = info.meta["near"]
            try:
                self._check_fingerprint(info.fingerprint)
                self._check_fingerprint(near)
            except ServiceError:
                continue  # a mangled envelope must not poison the index
            index = self._near_index.setdefault(near, OrderedDict())
            index.setdefault(info.fingerprint, None)

    def peek(self, fingerprint: str) -> dict | None:
        """Tier lookup that touches no hit/miss counters and no LRU order.

        For bookkeeping-sensitive re-probes (the planner's post-
        canonicalisation double-check) and donor validation — ``get`` is
        the serving path.
        """
        if fingerprint in self._memory:
            return self._memory[fingerprint]
        return self._read_disk(fingerprint)

    def contains(self, fingerprint: str) -> bool:
        """Membership test that does not touch hit/miss counters."""
        self._check_fingerprint(fingerprint)
        if fingerprint in self._memory:
            return True
        if self.directory is None:
            return False
        return self._path(fingerprint).exists()

    def evict(self, fingerprint: str) -> bool:
        """Drop one entry from both tiers; True if anything was removed.

        The planner's post-solve conformance gate uses this to expel a
        cached schedule that fails its replay, so the next request for the
        fingerprint re-solves instead of failing forever.
        """
        self._check_fingerprint(fingerprint)
        removed = self._memory.pop(fingerprint, None) is not None
        for index in self._near_index.values():
            index.pop(fingerprint, None)
        if self.directory is not None:
            path = self._path(fingerprint)
            if path.exists():
                path.unlink(missing_ok=True)
                removed = True
        return removed

    def purge(self) -> int:
        """Drop every entry from both tiers; returns *logical* entries
        removed (an entry resident in both tiers counts once)."""
        removed = set(self._memory)
        self._memory.clear()
        self._near_index.clear()
        if self.directory is not None:
            for path in self.directory.glob("*.json"):
                removed.add(path.stem)
                path.unlink(missing_ok=True)
        return len(removed)

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.json"

    @staticmethod
    def _check_fingerprint(fingerprint: str) -> None:
        # Fingerprints become file names; only hex digests are acceptable.
        if not fingerprint or not set(fingerprint) <= _FINGERPRINT_CHARS:
            raise ServiceError(f"not a hex fingerprint: {fingerprint!r}")

    def _read_disk(self, fingerprint: str) -> dict | None:
        if self.directory is None:
            return None
        path = self._path(fingerprint)
        if not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            # Corrupt entry: worth dropping so it stops costing a parse.
            path.unlink(missing_ok=True)
            self.stats.invalidations += 1
            return None
        payload = open_envelope(envelope)
        if payload is None:
            path.unlink(missing_ok=True)
            self.stats.invalidations += 1
            return None
        return payload

    def entries(self) -> list[CacheEntryInfo]:
        """Describe the disk tier without loading payloads into memory."""
        if self.directory is None:
            return []
        out: list[CacheEntryInfo] = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
                info = CacheEntryInfo(
                    fingerprint=envelope["fingerprint"],
                    size_bytes=path.stat().st_size,
                    version=envelope["version"],
                    package=envelope["package"],
                    stale=(envelope["version"] != CACHE_FORMAT_VERSION
                           or envelope["package"] != _package_version),
                    meta=envelope.get("meta", {}))
            except (json.JSONDecodeError, KeyError, TypeError, OSError):
                info = CacheEntryInfo(fingerprint=path.stem, size_bytes=0,
                                      version=-1, package="?", stale=True)
            out.append(info)
        return out

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def _insert_memory(self, fingerprint: str, payload: dict) -> None:
        self._memory[fingerprint] = payload
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            evicted, _ = self._memory.popitem(last=False)
            self.stats.evictions += 1
            if self.directory is None:
                # memory-only cache: the payload is gone for good, so the
                # fingerprint must stop donating (with a disk tier the
                # envelope still backs the index entry)
                for index in self._near_index.values():
                    index.pop(evicted, None)
