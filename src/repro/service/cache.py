"""Two-tier schedule cache: in-memory LRU over an on-disk JSON store.

The paper amortises a one-off synthesis over millions of training iterations
(§6.2: hours of solver time, reused for weeks); TACCL ships the same idea as
offline-generated algorithm files. The cache makes that amortisation a
property of the serving layer instead of the caller's discipline:

* **memory tier** — a bounded LRU of deserialised payload dicts, for the
  steady state where one planner process serves a hot working set;
* **disk tier** — one ``<fingerprint>.json`` envelope per entry (the same
  "plain JSON document" dialect as :mod:`repro.topology.io`), so schedules
  survive process restarts and can be shipped between machines.

Every envelope records the cache-format version and the package version that
produced it; a mismatch on either is treated as a miss and the stale file is
deleted (solver semantics may have changed under the entry).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections import OrderedDict
from pathlib import Path

from repro import __version__ as _package_version
from repro.errors import ServiceError

#: Bump when the envelope layout or payload schema changes.
CACHE_FORMAT_VERSION = 1

_FINGERPRINT_CHARS = set("0123456789abcdef")


@dataclass
class CacheStats:
    """Counters for one cache instance (cumulative since construction)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass
class CacheEntryInfo:
    """Metadata for one on-disk entry (``teccl cache --action list``)."""

    fingerprint: str
    size_bytes: int
    version: int
    package: str
    stale: bool = False
    meta: dict = field(default_factory=dict)


class ScheduleCache:
    """Bounded LRU of solved-schedule payloads, optionally disk-backed.

    Args:
        capacity: max entries held in memory (≥ 1). The disk tier is
            unbounded — schedules are kilobytes and disk is the archival
            tier by design.
        directory: where envelopes live; ``None`` disables the disk tier.
    """

    def __init__(self, capacity: int = 128,
                 directory: str | Path | None = None) -> None:
        if capacity < 1:
            raise ServiceError("cache capacity must be at least 1")
        self.capacity = capacity
        self.directory = (Path(directory).expanduser()
                          if directory is not None else None)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> dict | None:
        """Look a fingerprint up; promotes disk hits into the memory tier."""
        self._check_fingerprint(fingerprint)
        if fingerprint in self._memory:
            self._memory.move_to_end(fingerprint)
            self.stats.memory_hits += 1
            return self._memory[fingerprint]
        payload = self._read_disk(fingerprint)
        if payload is not None:
            self.stats.disk_hits += 1
            self._insert_memory(fingerprint, payload)
            return payload
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, payload: dict,
            meta: dict | None = None) -> None:
        """Store a payload in both tiers."""
        self._check_fingerprint(fingerprint)
        self._insert_memory(fingerprint, payload)
        if self.directory is not None:
            envelope = {
                "version": CACHE_FORMAT_VERSION,
                "package": _package_version,
                "fingerprint": fingerprint,
                "meta": meta or {},
                "payload": payload,
            }
            path = self._path(fingerprint)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(envelope), encoding="utf-8")
            tmp.replace(path)  # atomic on POSIX: readers never see half a file
        self.stats.stores += 1

    def contains(self, fingerprint: str) -> bool:
        """Membership test that does not touch hit/miss counters."""
        self._check_fingerprint(fingerprint)
        if fingerprint in self._memory:
            return True
        if self.directory is None:
            return False
        return self._path(fingerprint).exists()

    def evict(self, fingerprint: str) -> bool:
        """Drop one entry from both tiers; True if anything was removed.

        The planner's post-solve conformance gate uses this to expel a
        cached schedule that fails its replay, so the next request for the
        fingerprint re-solves instead of failing forever.
        """
        self._check_fingerprint(fingerprint)
        removed = self._memory.pop(fingerprint, None) is not None
        if self.directory is not None:
            path = self._path(fingerprint)
            if path.exists():
                path.unlink(missing_ok=True)
                removed = True
        return removed

    def purge(self) -> int:
        """Drop every entry from both tiers; returns *logical* entries
        removed (an entry resident in both tiers counts once)."""
        removed = set(self._memory)
        self._memory.clear()
        if self.directory is not None:
            for path in self.directory.glob("*.json"):
                removed.add(path.stem)
                path.unlink(missing_ok=True)
        return len(removed)

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.json"

    @staticmethod
    def _check_fingerprint(fingerprint: str) -> None:
        # Fingerprints become file names; only hex digests are acceptable.
        if not fingerprint or not set(fingerprint) <= _FINGERPRINT_CHARS:
            raise ServiceError(f"not a hex fingerprint: {fingerprint!r}")

    def _read_disk(self, fingerprint: str) -> dict | None:
        if self.directory is None:
            return None
        path = self._path(fingerprint)
        if not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            version = envelope["version"]
            package = envelope["package"]
            payload = envelope["payload"]
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            # Corrupt entry: worth dropping so it stops costing a parse.
            path.unlink(missing_ok=True)
            self.stats.invalidations += 1
            return None
        if version != CACHE_FORMAT_VERSION or package != _package_version:
            path.unlink(missing_ok=True)
            self.stats.invalidations += 1
            return None
        return payload

    def entries(self) -> list[CacheEntryInfo]:
        """Describe the disk tier without loading payloads into memory."""
        if self.directory is None:
            return []
        out: list[CacheEntryInfo] = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
                info = CacheEntryInfo(
                    fingerprint=envelope["fingerprint"],
                    size_bytes=path.stat().st_size,
                    version=envelope["version"],
                    package=envelope["package"],
                    stale=(envelope["version"] != CACHE_FORMAT_VERSION
                           or envelope["package"] != _package_version),
                    meta=envelope.get("meta", {}))
            except (json.JSONDecodeError, KeyError, TypeError, OSError):
                info = CacheEntryInfo(fingerprint=path.stem, size_bytes=0,
                                      version=-1, package="?", stale=True)
            out.append(info)
        return out

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def _insert_memory(self, fingerprint: str, payload: dict) -> None:
        self._memory[fingerprint] = payload
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
