"""The planner service's wire schema: ``PlanRequest`` / ``PlanResponse``.

A request is exactly the argument list of :func:`repro.core.solve.synthesize`
frozen into data; a response carries the result plus the serving metadata
callers need to reason about amortisation (was it a cache hit? coalesced
onto another request's in-flight solve? how long did serving take versus
solving?). Both round-trip through plain JSON dicts so they can cross
process boundaries (the solve pool) and land in the on-disk cache unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.demand import Demand
from repro.core.config import AStarConfig, TecclConfig
from repro.core.solve import Method, SynthesisResult
from repro.errors import ServiceError
from repro.obs.explain import ExplainRecord
from repro.topology.topology import Topology


@dataclass(frozen=True)
class PlanRequest:
    """One schedule-synthesis request, as data."""

    topology: Topology
    demand: Demand
    config: TecclConfig
    method: Method = Method.AUTO
    astar_config: AStarConfig | None = None
    minimize_epochs: bool = False
    #: free-form caller tag echoed in the response (batch bookkeeping);
    #: never part of the fingerprint.
    tag: str = ""

    def to_dict(self) -> dict:
        return {
            "topology": self.topology.to_dict(),
            "demand": self.demand.to_dict(),
            "config": self.config.to_dict(),
            "method": self.method.value,
            "astar_config": (None if self.astar_config is None
                             else self.astar_config.to_dict()),
            "minimize_epochs": self.minimize_epochs,
            "tag": self.tag,
        }

    @staticmethod
    def from_dict(data: dict) -> "PlanRequest":
        try:
            return PlanRequest(
                topology=Topology.from_dict(data["topology"]),
                demand=Demand.from_dict(data["demand"]),
                config=TecclConfig.from_dict(data["config"]),
                method=Method(data.get("method", Method.AUTO.value)),
                astar_config=(
                    None if data.get("astar_config") is None
                    else AStarConfig.from_dict(data["astar_config"])),
                minimize_epochs=bool(data.get("minimize_epochs", False)),
                tag=str(data.get("tag", "")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed plan request: {exc}") from exc


@dataclass
class PlanResponse:
    """One served plan: the result plus how it was served.

    Exactly one of ``result`` / ``error`` is set; a failed solve reports the
    error message instead of raising so ``plan_batch`` can keep going.
    """

    fingerprint: str
    result: SynthesisResult | None = None
    error: str | None = None
    #: served straight from the schedule cache (no solver involvement)
    cache_hit: bool = False
    #: piggybacked on another caller's identical in-flight solve
    coalesced: bool = False
    #: wall-clock seconds from plan() entry to response (serving latency;
    #: solver time lives in result.solve_time)
    serve_time: float = 0.0
    tag: str = ""
    #: the fresh solve was seeded by a prior schedule — a near-fingerprint
    #: cache donor (same fabric shape under different scalars) or an
    #: explicit ``warm_from=`` prior (the fleet replan path)
    warm_donor: bool = False
    #: post-solve conformance replay summary (a
    #: :meth:`repro.simulate.ConformanceReport.to_dict` document); only set
    #: when the planner runs with ``check_conformance=True``.
    conformance: dict | None = None
    #: plan provenance — where this schedule came from and what each stage
    #: cost (:class:`repro.obs.explain.ExplainRecord`); assembled by the
    #: planner on every serve, rendered by ``teccl explain``.
    explain: ExplainRecord | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def conformant(self) -> bool | None:
        """Whether the replay was clean (``None`` when no check ran)."""
        if self.conformance is None:
            return None
        return bool(self.conformance.get("ok"))

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "result": None if self.result is None else self.result.to_dict(),
            "error": self.error,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "serve_time": self.serve_time,
            "tag": self.tag,
            "warm_donor": self.warm_donor,
            "conformance": self.conformance,
            "explain": (None if self.explain is None
                        else self.explain.to_dict()),
        }

    @staticmethod
    def from_dict(data: dict) -> "PlanResponse":
        try:
            return PlanResponse(
                fingerprint=str(data["fingerprint"]),
                result=(None if data.get("result") is None
                        else SynthesisResult.from_dict(data["result"])),
                error=(None if data.get("error") is None
                       else str(data["error"])),
                cache_hit=bool(data.get("cache_hit", False)),
                coalesced=bool(data.get("coalesced", False)),
                serve_time=float(data.get("serve_time", 0.0)),
                tag=str(data.get("tag", "")),
                warm_donor=bool(data.get("warm_donor", False)),
                conformance=data.get("conformance"),
                explain=(None if data.get("explain") is None
                         else ExplainRecord.from_dict(data["explain"])))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed plan response: {exc}") from exc


# ----------------------------------------------------------------------
# registry-state snapshots (the fleet WAL's compaction document)
# ----------------------------------------------------------------------

#: bump when the registry-state snapshot layout changes incompatibly
REGISTRY_STATE_VERSION = 1

#: required top-level fields and the types a reader may rely on
_REGISTRY_STATE_FIELDS: dict[str, type | tuple[type, ...]] = {
    "registry_state_version": int,
    "now": (int, float),
    "steps_completed": int,
    "entry_seq": int,
    "jobs": dict,
    "entries": list,
    "active": dict,
    "estimator": dict,
    "decisions": list,
}


def check_registry_state(doc: dict) -> dict:
    """Validate a registry-state snapshot document (round-trip contract).

    The fleet WAL writes this document on compaction and trusts it again
    on recovery; both directions funnel through this check so a snapshot
    that would not rehydrate is refused at *write* time, not discovered
    after the crash it was supposed to survive. Returns the document.
    """
    if not isinstance(doc, dict):
        raise ServiceError(
            f"registry state must be a dict, got {type(doc).__name__}")
    version = doc.get("registry_state_version")
    if version != REGISTRY_STATE_VERSION:
        raise ServiceError(
            f"registry state version {version!r} is not "
            f"{REGISTRY_STATE_VERSION} (stale snapshot?)")
    for key, expected in _REGISTRY_STATE_FIELDS.items():
        if key not in doc:
            raise ServiceError(f"registry state is missing {key!r}")
        if not isinstance(doc[key], expected) or isinstance(doc[key], bool):
            raise ServiceError(
                f"registry state field {key!r} has type "
                f"{type(doc[key]).__name__}")
    for job, seq in doc["active"].items():
        if not isinstance(job, str) or isinstance(seq, bool) \
                or not isinstance(seq, int):
            raise ServiceError(
                f"registry state active map entry {job!r}: {seq!r} is not "
                "job-name -> entry seq")
    return doc
